"""NIC descriptor wire formats.

A generic descriptor-ring protocol standing in for the Broadcom
BCM57711's proprietary firmware interface (see DESIGN.md §6): the
subset the paper's FPGA NIC controller exercises — send descriptors
with a separate header buffer, large-send offload (LSO) with an MSS,
and receive descriptors with optional header/payload split [39].
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import ProtocolError

SEND_DESC_SIZE = 32
RECV_DESC_SIZE = 32
RECV_CMPL_SIZE = 32

_SEND_FMT = "<HHQH2xQI4x"   # flags, mss, hdr_addr, hdr_len, payload_addr, payload_len
_RECV_FMT = "<QQI12x"       # hdr_addr, payload_addr, buf_len
_CMPL_FMT = "<HIH24x"       # hdr_len, payload_len, desc_index

FLAG_LSO = 0x0001


@dataclass(frozen=True)
class SendDescriptor:
    """One transmit request: a header template plus a payload buffer.

    ``hdr_addr`` points at a serialized 54-byte Ethernet/IPv4/TCP header
    template; the NIC replicates and fixes it up per segment when
    ``lso`` is set (sequence numbers, lengths, checksums).
    """

    hdr_addr: int
    hdr_len: int
    payload_addr: int
    payload_len: int
    lso: bool = False
    mss: int = 1460

    def pack(self) -> bytes:
        flags = FLAG_LSO if self.lso else 0
        return struct.pack(_SEND_FMT, flags, self.mss, self.hdr_addr,
                           self.hdr_len, self.payload_addr, self.payload_len)

    @classmethod
    def unpack(cls, data: bytes) -> "SendDescriptor":
        if len(data) != SEND_DESC_SIZE:
            raise ProtocolError(
                f"send descriptor must be {SEND_DESC_SIZE} bytes, "
                f"got {len(data)}")
        flags, mss, hdr_addr, hdr_len, payload_addr, payload_len = (
            struct.unpack(_SEND_FMT, data))
        return cls(hdr_addr=hdr_addr, hdr_len=hdr_len,
                   payload_addr=payload_addr, payload_len=payload_len,
                   lso=bool(flags & FLAG_LSO), mss=mss)


@dataclass(frozen=True)
class RecvDescriptor:
    """One posted receive buffer.

    With ``hdr_addr != 0`` the NIC performs header-data split: the
    54-byte headers land at ``hdr_addr`` and only the payload at
    ``payload_addr`` — the feature that lets received data flow into
    contiguous engine memory without CPU repacking.
    """

    payload_addr: int
    buf_len: int
    hdr_addr: int = 0

    def pack(self) -> bytes:
        return struct.pack(_RECV_FMT, self.hdr_addr, self.payload_addr,
                           self.buf_len)

    @classmethod
    def unpack(cls, data: bytes) -> "RecvDescriptor":
        if len(data) != RECV_DESC_SIZE:
            raise ProtocolError(
                f"recv descriptor must be {RECV_DESC_SIZE} bytes, "
                f"got {len(data)}")
        hdr_addr, payload_addr, buf_len = struct.unpack(_RECV_FMT, data)
        return cls(payload_addr=payload_addr, buf_len=buf_len,
                   hdr_addr=hdr_addr)


@dataclass(frozen=True)
class RecvCompletion:
    """NIC-written record of one received frame."""

    hdr_len: int
    payload_len: int
    desc_index: int

    def pack(self) -> bytes:
        return struct.pack(_CMPL_FMT, self.hdr_len, self.payload_len,
                           self.desc_index)

    @classmethod
    def unpack(cls, data: bytes) -> "RecvCompletion":
        if len(data) != RECV_CMPL_SIZE:
            raise ProtocolError(
                f"recv completion must be {RECV_CMPL_SIZE} bytes, "
                f"got {len(data)}")
        hdr_len, payload_len, desc_index = struct.unpack(_CMPL_FMT, data)
        return cls(hdr_len=hdr_len, payload_len=payload_len,
                   desc_index=desc_index)
