"""Submitter-side views of the NIC's descriptor rings.

Both the host NIC driver and the HDC Engine's NIC controller drive the
device through these: write descriptors into ring memory (theirs to
place — host DRAM or engine BRAM), ring a doorbell, and watch a
NIC-written status block for progress.  Status indices are free-running
32-bit counters, so no phase bits are needed.
"""

from __future__ import annotations

from typing import Optional

from repro.devices.nic.descriptors import (RECV_CMPL_SIZE, RECV_DESC_SIZE,
                                           SEND_DESC_SIZE, RecvCompletion,
                                           RecvDescriptor, SendDescriptor)
from repro.errors import ProtocolError
from repro.pcie.switch import Fabric


class SendRing:
    """Submitter-side transmit ring."""

    def __init__(self, fabric: Fabric, ring_addr: int, depth: int,
                 status_addr: int, doorbell: int, channel: int = 0):
        self.fabric = fabric
        self.ring_addr = ring_addr
        self.depth = depth
        self.status_addr = status_addr
        self.doorbell = doorbell
        self.channel = channel
        self.tail = 0            # producer index (free-running)
        self._consumed_seen = 0

    def slots_free(self) -> int:
        consumer = self.consumer_index()
        return self.depth - (self.tail - consumer)

    def push(self, desc: SendDescriptor) -> int:
        """Write one descriptor into ring memory; returns its index."""
        if self.slots_free() == 0:
            raise ProtocolError("send ring full")
        slot = self.tail % self.depth
        self.fabric.address_map.write(
            self.ring_addr + slot * SEND_DESC_SIZE, desc.pack())
        index = self.tail
        self.tail += 1
        return index

    def ring(self, initiator: str):
        """Process: ring the send doorbell with the new tail."""
        return self.fabric.mmio_write(
            initiator, self.doorbell,
            (self.tail & 0xFFFFFFFF).to_bytes(4, "little"))

    def consumer_index(self) -> int:
        """The NIC's progress counter from the status block (functional)."""
        raw = self.fabric.address_map.read(self.status_addr, 4)
        low = int.from_bytes(raw, "little")
        # Recover the free-running value from the 32-bit on-wire counter.
        high = self._consumed_seen & ~0xFFFFFFFF
        value = high | low
        if value < self._consumed_seen:
            value += 1 << 32
        self._consumed_seen = value
        return value


class RecvRing:
    """Submitter-side receive ring + completion ring."""

    def __init__(self, fabric: Fabric, desc_addr: int, cmpl_addr: int,
                 depth: int, status_addr: int, doorbell: int,
                 channel: int = 0):
        self.fabric = fabric
        self.channel = channel
        self.desc_addr = desc_addr
        self.cmpl_addr = cmpl_addr
        self.depth = depth
        self.status_addr = status_addr
        self.doorbell = doorbell
        self.tail = 0            # producer index of posted buffers
        self.cmpl_head = 0       # next completion we will consume
        self._produced_seen = 0

    def slots_free(self) -> int:
        return self.depth - (self.tail - self.cmpl_head)

    def post(self, desc: RecvDescriptor) -> int:
        """Post one receive buffer; returns its index."""
        if self.slots_free() == 0:
            raise ProtocolError("recv ring full")
        slot = self.tail % self.depth
        self.fabric.address_map.write(
            self.desc_addr + slot * RECV_DESC_SIZE, desc.pack())
        index = self.tail
        self.tail += 1
        return index

    def ring(self, initiator: str):
        """Process: tell the NIC about newly posted buffers."""
        return self.fabric.mmio_write(
            initiator, self.doorbell,
            (self.tail & 0xFFFFFFFF).to_bytes(4, "little"))

    def producer_index(self) -> int:
        """How many completions the NIC has written (functional read)."""
        raw = self.fabric.address_map.read(self.status_addr, 4)
        low = int.from_bytes(raw, "little")
        high = self._produced_seen & ~0xFFFFFFFF
        value = high | low
        if value < self._produced_seen:
            value += 1 << 32
        self._produced_seen = value
        return value

    def poll_completion(self) -> Optional[RecvCompletion]:
        """Consume the next completion if the NIC has produced one."""
        if self.cmpl_head >= self.producer_index():
            return None
        slot = self.cmpl_head % self.depth
        raw = self.fabric.address_map.read(
            self.cmpl_addr + slot * RECV_CMPL_SIZE, RECV_CMPL_SIZE)
        self.cmpl_head += 1
        return RecvCompletion.unpack(raw)
