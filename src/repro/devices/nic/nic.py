"""The 10-GbE NIC device model (multi-queue, LSO, header-split).

Transmit: fetch descriptor → DMA header template + payload from
wherever they live (host DRAM for the kernel path, engine DDR3 for
DCS-ctrl's P2P path) → LSO segmentation with per-segment header fix-up
→ serialize onto the wire.  Receive: steer the frame to a channel
(flow-steering table), take that channel's next posted buffer,
optionally split headers from payload, DMA both out, write a
completion, bump the status block, optionally interrupt.

Multi-queue matters here: the paper "extend[s] existing Linux generic
NVMe and Broadcom NIC device drivers to dedicate device queue pairs in
HDC Engine" (§IV-B) — the host driver and the engine's NIC controller
each own their own TX/RX channel of the same off-the-shelf device, and
offloaded connections are steered to the engine's channel.

The NIC itself exposes no bulk memory window (the BCM57711 does not let
peers DMA into its packet buffers [41]) — the other half of why direct
SSD↔NIC needs staging memory somewhere else.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.devices.base import PcieDevice
from repro.devices.nic.descriptors import (RECV_CMPL_SIZE, RECV_DESC_SIZE,
                                           SEND_DESC_SIZE, RecvCompletion,
                                           RecvDescriptor, SendDescriptor)
from repro.devices.nic.rings import RecvRing, SendRing
from repro.errors import DeviceError, ProtocolError
from repro.net.packet import (HEADER_LEN, MTU, build_frame, parse_frame,
                              segment_payload)
from repro.net.headers import EthernetHeader, Ipv4Header, TcpHeader
from repro.net.wire import Wire
from repro.pcie.link import LINK_GEN2_X8, LinkConfig
from repro.pcie.switch import Fabric
from repro.sim.kernel import Simulator
from repro.sim.resources import Store
from repro.sim.stats import Meter
from repro.units import KIB, nsec


@dataclass(frozen=True)
class NicConfig:
    """Static NIC parameters."""

    model: str
    link: LinkConfig
    max_lso: int = 64 * KIB           # largest single send descriptor
    max_channels: int = 4             # TX/RX queue pairs
    desc_overhead: int = nsec(400)    # descriptor fetch/decode engine time
    frame_overhead: int = nsec(250)   # per-frame receive engine time


BCM57711 = NicConfig(model="Broadcom NetXtreme II BCM57711",
                     link=LINK_GEN2_X8)

# Doorbell layout: one 16-byte stride per channel.
_CHANNEL_STRIDE = 0x10
_SEND_DB = 0x00
_RECV_DB = 0x08

SteerKey = Tuple[str, int, int]  # (src ip, src port, dst port)


@dataclass
class _TxChannel:
    ring_addr: int
    depth: int
    status_addr: int
    interrupt: bool
    head: int = 0       # next descriptor the NIC will fetch (free-running)
    tail: int = 0       # latest doorbell value (free-running, recovered)
    consumed: int = 0
    wake: object = None
    m_occ: Optional[object] = None  # nic.tx_ring_occupancy instrument


@dataclass
class _RxChannel:
    desc_addr: int
    cmpl_addr: int
    depth: int
    status_addr: int
    interrupt: bool
    fetched: int = 0    # descriptors fetched from ring memory
    tail: int = 0       # latest doorbell value
    produced: int = 0   # completions written
    fetch_busy: bool = False
    buffers: Deque[Tuple[int, RecvDescriptor]] = field(default_factory=deque)
    buffer_wake: object = None
    prev_done: object = None   # ordering chain for completion posting
    m_buf: Optional[object] = None  # nic.rx_buffers instrument


class Nic(PcieDevice):
    """A multi-queue descriptor-ring NIC attached to fabric and wire."""

    def __init__(self, sim: Simulator, fabric: Fabric, name: str,
                 bar_base: int, config: NicConfig = BCM57711):
        super().__init__(sim, fabric, name, config.link)
        self.config = config
        self._regs = self.add_region("regs", bar_base, 4 * KIB)
        self._regs.on_mmio_write = self._on_doorbell
        self._tx_channels: List[_TxChannel] = []
        self._rx_channels: List[_RxChannel] = []
        self._steering: Dict[SteerKey, int] = {}
        self._wire: Optional[Wire] = None
        # MAC egress FIFO: descriptors are "consumed" once their frames
        # are handed to the MAC; serialization continues from here.
        self._egress = Store(sim, capacity=32)
        self.frames_sent = 0
        self.frames_received = 0
        self.frames_dropped = 0
        self.frames_lost = 0       # injected wire losses (nic.wire_drop)
        self.tx_faults = 0         # descriptors abandoned on link faults
        self.tx_processes: List[object] = []
        self.rx_process = None
        # Wire-byte accounting reads through the metrics registry when a
        # session is installed (Meter.register is a no-op otherwise).
        self.wire_meter = Meter(sim).register(
            "nic.wire_tx_bytes", node=fabric.name, dev=name)
        metrics = sim.metrics
        if metrics is not None:
            metrics.polled("nic.frames_lost", lambda: self.frames_lost,
                           node=fabric.name, dev=name)
        sim.process(self._egress_loop())

    # -- wiring ------------------------------------------------------------

    def connect(self, wire: Wire) -> None:
        """Attach to a wire and start receiving."""
        if self._wire is not None:
            raise DeviceError(f"{self.name} already connected")
        self._wire = wire
        # Endpoint keys must be unique per wire even when two nodes use
        # the same local device name ("nic" on node0 and node1); the
        # fabric (host) name disambiguates and, unlike id(), is stable
        # across runs.
        self._wire_key = f"{self.fabric.name}/{self.name}"
        ingress = wire.attach(self._wire_key)
        self.rx_process = self.sim.process(self._rx_loop(ingress))

    # -- configuration -------------------------------------------------------

    def configure_tx(self, ring_addr: int, depth: int, status_addr: int,
                     interrupt: bool = False) -> SendRing:
        """Set up one transmit channel; returns the submitter-side view."""
        if len(self._tx_channels) >= self.config.max_channels:
            raise DeviceError(f"{self.name} is out of TX channels")
        channel = _TxChannel(ring_addr=ring_addr, depth=depth,
                             status_addr=status_addr, interrupt=interrupt,
                             wake=self.sim.event())
        self._tx_channels.append(channel)
        index = len(self._tx_channels) - 1
        metrics = self.sim.metrics
        if metrics is not None:
            channel.m_occ = metrics.timegauge(
                "nic.tx_ring_occupancy", node=self.fabric.name,
                dev=self.name, channel=index)
        self.tx_processes.append(self.sim.process(self._tx_loop(channel,
                                                                index)))
        doorbell = self._regs.base + index * _CHANNEL_STRIDE + _SEND_DB
        return SendRing(self.fabric, ring_addr, depth, status_addr,
                        doorbell=doorbell, channel=index)

    def configure_rx(self, desc_addr: int, cmpl_addr: int, depth: int,
                     status_addr: int, interrupt: bool = False) -> RecvRing:
        """Set up one receive channel; returns the submitter-side view."""
        if len(self._rx_channels) >= self.config.max_channels:
            raise DeviceError(f"{self.name} is out of RX channels")
        channel = _RxChannel(desc_addr=desc_addr, cmpl_addr=cmpl_addr,
                             depth=depth, status_addr=status_addr,
                             interrupt=interrupt,
                             buffer_wake=self.sim.event())
        self._rx_channels.append(channel)
        index = len(self._rx_channels) - 1
        metrics = self.sim.metrics
        if metrics is not None:
            channel.m_buf = metrics.timegauge(
                "nic.rx_buffers", node=self.fabric.name,
                dev=self.name, channel=index)
        doorbell = self._regs.base + index * _CHANNEL_STRIDE + _RECV_DB
        return RecvRing(self.fabric, desc_addr, cmpl_addr, depth,
                        status_addr, doorbell=doorbell, channel=index)

    def steer_flow(self, src_ip: str, src_port: int, dst_port: int,
                   rx_channel: int) -> None:
        """Program the flow-steering table: matching frames go to
        ``rx_channel`` instead of channel 0."""
        if not 0 <= rx_channel < len(self._rx_channels):
            raise DeviceError(f"no RX channel {rx_channel}")
        self._steering[(src_ip, src_port, dst_port)] = rx_channel

    # -- doorbells ---------------------------------------------------------

    def _on_doorbell(self, offset: int, data: bytes) -> None:
        value = int.from_bytes(data[:4], "little")
        index, reg = divmod(offset, _CHANNEL_STRIDE)
        tracer = self.sim.tracer
        if tracer is not None and reg in (_SEND_DB, _RECV_DB):
            kind = "tx" if reg == _SEND_DB else "rx"
            tracer.instant("nic.doorbell", track=f"dev:{self.name}",
                           name=f"{kind}{index} tail={value}",
                           channel=index, kind=kind, tail=value)
        if reg == _SEND_DB:
            if index >= len(self._tx_channels):
                raise ProtocolError(f"send doorbell for channel {index} "
                                    "before TX configuration")
            channel = self._tx_channels[index]
            channel.tail = self._unwrap(channel.tail, value)
            if channel.m_occ is not None:
                channel.m_occ.set(channel.tail - channel.consumed)
            wake, channel.wake = channel.wake, self.sim.event()
            wake.succeed()
        elif reg == _RECV_DB:
            if index >= len(self._rx_channels):
                raise ProtocolError(f"recv doorbell for channel {index} "
                                    "before RX configuration")
            channel = self._rx_channels[index]
            channel.tail = self._unwrap(channel.tail, value)
            if not channel.fetch_busy:
                channel.fetch_busy = True
                self.sim.process(self._fetch_rx_descriptors(channel))
        # other registers: configuration writes, ignored

    @staticmethod
    def _unwrap(previous: int, low32: int) -> int:
        """Recover a free-running counter from its 32-bit doorbell value."""
        value = (previous & ~0xFFFFFFFF) | low32
        if value < previous:
            value += 1 << 32
        return value

    # -- transmit ------------------------------------------------------------

    def _tx_loop(self, tx: _TxChannel, index: int):
        while True:
            if tx.head == tx.tail:
                yield tx.wake
                continue
            slot = tx.head % tx.depth
            tx.head += 1
            try:
                raw = yield from self.dma_read(
                    tx.ring_addr + slot * SEND_DESC_SIZE, SEND_DESC_SIZE)
            except DeviceError:
                # Descriptor fetch lost to a link fault: abandon the
                # descriptor; the submitter's deadline recovers it.
                self.tx_faults += 1
                continue
            desc = SendDescriptor.unpack(raw)
            tracer = self.sim.tracer
            span = None if tracer is None else tracer.begin(
                "nic.tx", track=f"dev:{self.name}",
                name=f"tx{index} {desc.payload_len}B",
                channel=index, size=desc.payload_len, lso=bool(desc.lso))
            yield from self._transmit(desc)
            if span is not None:
                span.end()
            tx.consumed += 1
            if tx.m_occ is not None:
                tx.m_occ.set(tx.tail - tx.consumed)
            try:
                yield from self.dma_write(
                    tx.status_addr,
                    (tx.consumed & 0xFFFFFFFF).to_bytes(4, "little"))
                if tx.interrupt:
                    yield from self.msi(vector=2 * index)
            except DeviceError:
                # Lost status/interrupt write: the next one carries the
                # cumulative count; meanwhile deadlines cover the gap.
                self.tx_faults += 1

    _FETCH_CHUNK = 8 * KIB  # payload DMA granularity of the TX engine

    def _transmit(self, desc: SendDescriptor):
        """Stream one descriptor onto the wire.

        Payload DMA is pipelined with transmission the way real TX
        engines work: an internal fetch process pulls ~8 KiB chunks
        from source memory while earlier segments are already being
        serialized, so a 64 KiB LSO send is not gated on fetching all
        64 KiB first.
        """
        if self._wire is None:
            raise DeviceError(f"{self.name} has no wire attached")
        if desc.payload_len > self.config.max_lso:
            raise ProtocolError(
                f"descriptor payload {desc.payload_len} exceeds max LSO "
                f"{self.config.max_lso}")
        if not desc.lso and desc.payload_len > MTU - 40:
            raise ProtocolError(
                f"non-LSO payload of {desc.payload_len} exceeds MTU")
        yield self.sim.timeout(self.config.desc_overhead)
        header = yield from self.dma_read(desc.hdr_addr, desc.hdr_len)
        if len(header) != HEADER_LEN:
            raise ProtocolError(
                f"header template must be {HEADER_LEN} bytes, "
                f"got {len(header)}")
        eth = EthernetHeader.unpack(header)
        ip = Ipv4Header.unpack(header[14:])
        tcp = TcpHeader.unpack(header[34:])
        mss = desc.mss if desc.lso else MTU - 40
        if desc.payload_len == 0:
            frame = segment_payload(eth, ip.src_ip, ip.dst_ip, tcp, b"")[0]
            yield self._egress.put(frame)
            return
        chunks = Store(self.sim, capacity=4)
        self.sim.process(self._fetch_payload(desc, chunks))
        buffer = bytearray()
        sent = 0
        while sent < desc.payload_len:
            need = min(mss, desc.payload_len - sent)
            while len(buffer) < need:
                chunk = yield chunks.get()
                buffer.extend(chunk)
            segment = bytes(buffer[:need])
            del buffer[:need]
            seg_tcp = TcpHeader(src_port=tcp.src_port, dst_port=tcp.dst_port,
                                seq=tcp.seq + sent, ack=tcp.ack,
                                flags=tcp.flags, window=tcp.window)
            frame = build_frame(eth, ip.src_ip, ip.dst_ip, seg_tcp, segment)
            # Hand the frame to the MAC egress FIFO; the descriptor is
            # consumed once everything is fetched, while serialization
            # continues in the background (real TX-reclaim semantics).
            yield self._egress.put(frame)
            sent += need

    def _fetch_payload(self, desc: SendDescriptor, chunks):
        offset = 0
        while offset < desc.payload_len:
            take = min(self._FETCH_CHUNK, desc.payload_len - offset)
            try:
                data = yield from self.dma_read(desc.payload_addr + offset,
                                                take)
            except DeviceError:
                # Fetch faulted mid-stream: pad with zeros so the TX
                # engine can drain the descriptor instead of hanging on
                # an empty chunk store; deadlines catch the damage.
                data = bytes(take)
            yield chunks.put(data)
            offset += take

    def _egress_loop(self):
        """Serialize MAC-FIFO frames onto the wire, strictly in order."""
        while True:
            frame = yield self._egress.get()
            faults = self.sim.faults
            if faults is not None and faults.fires(
                    "nic.wire_drop", device=self.name, size=len(frame)):
                # The frame dies on the wire (FCS corruption en route):
                # serialization time was already paid by the MAC model,
                # the receiver simply never sees it.
                self.frames_lost += 1
                continue
            yield from self._wire.transmit(self._wire_key, frame)
            self.frames_sent += 1
            self.wire_meter.add(len(frame))

    # -- receive -------------------------------------------------------------

    def _fetch_rx_descriptors(self, rx: _RxChannel):
        """DMA newly posted receive descriptors into device-local state.

        At most one fetch process per channel (doorbells that land while
        it runs are covered by re-checking the tail each pass).
        """
        try:
            while rx.fetched < rx.tail:
                slot = rx.fetched % rx.depth
                raw = yield from self.dma_read(
                    rx.desc_addr + slot * RECV_DESC_SIZE, RECV_DESC_SIZE)
                rx.buffers.append((rx.fetched, RecvDescriptor.unpack(raw)))
                rx.fetched += 1
                if rx.m_buf is not None:
                    rx.m_buf.set(len(rx.buffers))
                wake, rx.buffer_wake = rx.buffer_wake, self.sim.event()
                wake.succeed()
        finally:
            rx.fetch_busy = False

    def _steer(self, raw_frame: bytes) -> int:
        """Pick the RX channel for a frame (flow-steering table)."""
        # The steering engine looks only at the fixed header fields.
        ip = Ipv4Header.unpack(raw_frame[14:34])
        tcp = TcpHeader.unpack(raw_frame[34:54])
        return self._steering.get((ip.src_ip, tcp.src_port, tcp.dst_port), 0)

    def _rx_loop(self, ingress):
        # Per-frame DMA pipelines with wire reception: each frame's
        # processing runs as its own process, chained per channel so
        # completions are posted strictly in arrival order.
        while True:
            raw_frame = yield ingress.get()
            if not self._rx_channels:
                raise ProtocolError(f"{self.name} received a frame before "
                                    "RX configuration")
            rx = self._rx_channels[self._steer(raw_frame)]
            while not rx.buffers:
                yield rx.buffer_wake
            index, desc = rx.buffers.popleft()
            if rx.m_buf is not None:
                rx.m_buf.set(len(rx.buffers))
            done = self.sim.event()
            self.sim.process(self._receive(rx, raw_frame, index, desc,
                                           rx.prev_done, done))
            rx.prev_done = done

    def _receive(self, rx: _RxChannel, raw_frame: bytes, index: int,
                 desc: RecvDescriptor, prev_done, done):
        tracer = self.sim.tracer
        span = None if tracer is None else tracer.begin(
            "nic.rx", track=f"dev:{self.name}",
            name=f"rx frame {len(raw_frame)}B", size=len(raw_frame),
            desc_index=index)
        yield self.sim.timeout(self.config.frame_overhead)
        try:
            parse_frame(raw_frame)  # MAC validation (headers + checksums)
        except ProtocolError:
            # Real NICs drop bad-FCS/bad-checksum frames and count them;
            # the buffer goes back to the pool and no completion posts.
            self.frames_dropped += 1
            rx.buffers.appendleft((index, desc))
            if rx.m_buf is not None:
                rx.m_buf.set(len(rx.buffers))
            if prev_done is not None and not prev_done.processed:
                yield prev_done
            if span is not None:
                span.end(dropped=True)
            done.succeed()
            return
        try:
            if desc.hdr_addr:
                header = raw_frame[:HEADER_LEN]
                payload = raw_frame[HEADER_LEN:]
                if len(payload) > desc.buf_len:
                    raise ProtocolError(
                        f"payload of {len(payload)} overruns posted buffer "
                        f"of {desc.buf_len}")
                yield from self.dma_write(desc.hdr_addr, header)
                if payload:
                    yield from self.dma_write(desc.payload_addr, payload)
                cmpl = RecvCompletion(hdr_len=HEADER_LEN,
                                      payload_len=len(payload),
                                      desc_index=index % rx.depth)
            else:
                if len(raw_frame) > desc.buf_len:
                    raise ProtocolError(
                        f"frame of {len(raw_frame)} overruns posted buffer "
                        f"of {desc.buf_len}")
                yield from self.dma_write(desc.payload_addr, raw_frame)
                cmpl = RecvCompletion(hdr_len=0, payload_len=len(raw_frame),
                                      desc_index=index % rx.depth)
        except DeviceError:
            # Buffer DMA lost to a link fault: count a drop, recycle
            # the buffer, keep the ordering chain alive.
            self.frames_dropped += 1
            rx.buffers.appendleft((index, desc))
            if rx.m_buf is not None:
                rx.m_buf.set(len(rx.buffers))
            if prev_done is not None and not prev_done.processed:
                yield prev_done
            if span is not None:
                span.end(dropped=True)
            done.succeed()
            return
        if prev_done is not None and not prev_done.processed:
            yield prev_done  # keep completion order == arrival order
        slot = rx.produced % rx.depth
        try:
            yield from self.dma_write(
                rx.cmpl_addr + slot * RECV_CMPL_SIZE, cmpl.pack())
            rx.produced += 1
            yield from self.dma_write(
                rx.status_addr,
                (rx.produced & 0xFFFFFFFF).to_bytes(4, "little"))
        except DeviceError:
            # Completion delivery lost; the consumer's deadline (or the
            # next frame's cumulative status write) recovers it.
            pass
        self.frames_received += 1
        if span is not None:
            span.end()
        done.succeed()
        if rx.interrupt:
            channel_index = self._rx_channels.index(rx)
            try:
                yield from self.msi(vector=2 * channel_index + 1)
            except DeviceError:
                pass  # lost interrupt: the host driver's deadline recovers