"""10-GbE NIC model: descriptor rings, LSO, header-split receive."""

from repro.devices.nic.descriptors import (RECV_CMPL_SIZE, RECV_DESC_SIZE,
                                           SEND_DESC_SIZE, RecvCompletion,
                                           RecvDescriptor, SendDescriptor)
from repro.devices.nic.rings import RecvRing, SendRing
from repro.devices.nic.nic import BCM57711, Nic, NicConfig

__all__ = [
    "BCM57711",
    "Nic",
    "NicConfig",
    "RECV_CMPL_SIZE",
    "RECV_DESC_SIZE",
    "RecvCompletion",
    "RecvDescriptor",
    "RecvRing",
    "SEND_DESC_SIZE",
    "SendDescriptor",
    "SendRing",
]
