"""Device models: NVMe SSD, 10-GbE NIC, GPU.

Each device is a :class:`~repro.devices.base.PcieDevice` attached to the
fabric.  Devices are *controller-agnostic*: they speak their native
queue/doorbell protocols against whatever memory their rings live in —
host DRAM when the host kernel drives them, engine BRAM when the HDC
Engine's standard device controllers drive them.  That symmetry is the
paper's flexibility argument: the engine controls *off-the-shelf*
devices with no device modifications.
"""

from repro.devices.base import PcieDevice
from repro.devices.nvme.ssd import INTEL_750_400GB, NvmeSsd, SsdConfig
from repro.devices.nic.nic import BCM57711, Nic, NicConfig
from repro.devices.gpu.gpu import TESLA_K20M, Gpu, GpuConfig

__all__ = [
    "BCM57711",
    "Gpu",
    "GpuConfig",
    "INTEL_750_400GB",
    "Nic",
    "NicConfig",
    "NvmeSsd",
    "PcieDevice",
    "SsdConfig",
    "TESLA_K20M",
]
