"""Submission/completion queue rings as seen by a *submitter*.

A :class:`QueuePair` is the submitter-side view of one NVMe I/O queue
pair: it writes SQEs into the SQ ring memory (wherever that memory is —
host DRAM for the kernel driver, engine BRAM for the HDC NVMe
controller), rings the SQ tail doorbell, and consumes CQEs by phase
bit.  The SSD device model holds its own independent head/tail state;
the two sides only communicate through ring memory and doorbells,
exactly like real hardware.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ProtocolError
from repro.devices.nvme.commands import (CQE_SIZE, SQE_SIZE, Completion,
                                         NvmeCommand)
from repro.pcie.switch import Fabric


class QueuePair:
    """Submitter-side state of one NVMe I/O queue pair."""

    def __init__(self, fabric: Fabric, owner_port: str, qid: int,
                 sq_addr: int, cq_addr: int, depth: int,
                 sq_doorbell: int, cq_doorbell: int):
        if depth < 2:
            raise ProtocolError(f"queue depth must be >= 2, got {depth}")
        self.fabric = fabric
        self.owner_port = owner_port
        self.qid = qid
        self.sq_addr = sq_addr
        self.cq_addr = cq_addr
        self.depth = depth
        self.sq_doorbell = sq_doorbell
        self.cq_doorbell = cq_doorbell
        self.sq_tail = 0
        self.sq_head = 0          # last head the device reported via CQEs
        self.cq_head = 0
        self.cq_phase = 1         # expected phase of the next valid CQE
        self._next_cid = 0

    # -- submission -------------------------------------------------------

    def slots_free(self) -> int:
        """SQ slots available (one slot is sacrificed to full/empty telling)."""
        used = (self.sq_tail - self.sq_head) % self.depth
        return self.depth - 1 - used

    def allocate_cid(self) -> int:
        """A fresh command identifier."""
        cid = self._next_cid
        self._next_cid = (self._next_cid + 1) & 0xFFFF
        return cid

    def push(self, command: NvmeCommand) -> None:
        """Write one SQE into ring memory (functional; CPU cost is the
        submitter's business)."""
        if self.slots_free() == 0:
            raise ProtocolError(f"submission queue {self.qid} full")
        slot_addr = self.sq_addr + self.sq_tail * SQE_SIZE
        self.fabric.address_map.write(slot_addr, command.pack())
        self.sq_tail = (self.sq_tail + 1) % self.depth

    def ring_sq(self, initiator: str):
        """Process: ring the SQ tail doorbell as ``initiator``."""
        data = self.sq_tail.to_bytes(4, "little")
        return self.fabric.mmio_write(initiator, self.sq_doorbell, data)

    # -- completion -------------------------------------------------------

    def poll_completion(self) -> Optional[Completion]:
        """Check ring memory for the next CQE (no timing).

        Returns the completion and advances the head, or None if the
        phase bit says the slot is stale.
        """
        slot_addr = self.cq_addr + self.cq_head * CQE_SIZE
        raw = self.fabric.address_map.read(slot_addr, CQE_SIZE)
        cqe = Completion.unpack(raw)
        if cqe.phase != self.cq_phase:
            return None
        self.cq_head += 1
        if self.cq_head == self.depth:
            self.cq_head = 0
            self.cq_phase ^= 1
        self.sq_head = cqe.sq_head
        return cqe

    def ring_cq(self, initiator: str):
        """Process: acknowledge consumed CQEs via the CQ head doorbell."""
        data = self.cq_head.to_bytes(4, "little")
        return self.fabric.mmio_write(initiator, self.cq_doorbell, data)


class CompletionPoller:
    """Hardware-style completion polling loop.

    The HDC Engine's NVMe controller does not take interrupts; it polls
    its BRAM-resident CQ at a fixed cadence (one FPGA polling FSM).
    ``wait(cid)`` parks until the CQE for that command shows up.
    """

    def __init__(self, sim, queue_pair: QueuePair, initiator: str,
                 poll_interval: int = 200):
        self.sim = sim
        self.qp = queue_pair
        self.initiator = initiator
        self.poll_interval = poll_interval

    def wait(self, cid: int):
        """Process: poll until the completion for ``cid`` arrives.

        Completions for other commands observed while polling raise —
        callers that interleave commands must drain in order.
        """
        while True:
            cqe = self.qp.poll_completion()
            if cqe is not None:
                if cqe.cid != cid:
                    raise ProtocolError(
                        f"expected completion for cid {cid}, got {cqe.cid}")
                yield from self.qp.ring_cq(self.initiator)
                return cqe
            yield self.sim.timeout(self.poll_interval)
