"""NVMe SSD model: command structures, queue rings, flash store, device."""

from repro.devices.nvme.commands import (CQE_SIZE, OP_FLUSH, OP_READ, OP_WRITE,
                                         SQE_SIZE, Completion, NvmeCommand,
                                         prp_pages)
from repro.devices.nvme.queues import CompletionPoller, QueuePair
from repro.devices.nvme.flash import FlashStore, FlashTiming
from repro.devices.nvme.ssd import INTEL_750_400GB, NvmeSsd, SsdConfig

__all__ = [
    "CQE_SIZE",
    "Completion",
    "CompletionPoller",
    "FlashStore",
    "FlashTiming",
    "INTEL_750_400GB",
    "NvmeCommand",
    "NvmeSsd",
    "OP_FLUSH",
    "OP_READ",
    "OP_WRITE",
    "QueuePair",
    "SQE_SIZE",
    "prp_pages",
]
