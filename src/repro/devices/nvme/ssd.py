"""The NVMe SSD device model.

Faithful to the parts of NVMe the paper exercises:

* I/O queue pairs whose rings live in *any* fabric-addressable memory —
  host DRAM (normal driver) or HDC Engine BRAM (the paper's §IV-B
  "dedicate device queue pairs ... in HDC Engine");
* SQE fetch by DMA from ring memory, PRP walking (including PRP lists
  for multi-page transfers, §IV-C), data DMA straight to the PRP
  addresses — which is what makes SSD→engine P2P work unchanged;
* CQE posting with phase bits, CQ head doorbells, optional MSI.

Admin-queue bring-up is folded into :meth:`create_io_queue` (a
functional shortcut; queue creation is in none of the paper's
measurements).

The device never allows peers to address its internal buffers — the
paper notes the Intel 750 exposes no controller memory buffer, which is
why SSD↔NIC needs either host staging or the engine's DDR3.  We model
that by simply not mapping any SSD data window into the fabric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.devices.base import PcieDevice
from repro.devices.nvme.commands import (CQE_SIZE, SQE_SIZE, Completion,
                                         NvmeCommand, OP_FLUSH, OP_READ,
                                         OP_WRITE, prp_pages, unpack_prp_list)
from repro.devices.nvme.flash import (FlashStore, FlashTiming,
                                      INTEL_750_TIMING)
from repro.devices.nvme.queues import QueuePair
from repro.errors import DeviceError, ProtocolError
from repro.pcie.link import LINK_GEN2_X4, LinkConfig
from repro.pcie.switch import Fabric
from repro.sim.kernel import Simulator
from repro.sim.resources import Resource
from repro.units import KIB, PAGE, gib, usec


@dataclass(frozen=True)
class SsdConfig:
    """Static parameters of an SSD model."""

    model: str
    capacity_bytes: int
    timing: FlashTiming
    link: LinkConfig
    channels: int = 8            # concurrent flash operations
    max_transfer: int = 128 * KIB
    command_overhead: int = usec(1)  # controller firmware per command


INTEL_750_400GB = SsdConfig(
    model="Intel SSD 750 400GB",
    capacity_bytes=gib(400),
    timing=INTEL_750_TIMING,
    link=LINK_GEN2_X4,
)

_DOORBELL_BASE = 0x1000
_DOORBELL_STRIDE = 4


@dataclass
class _QueueState:
    """Device-side state of one I/O queue."""

    qid: int
    sq_addr: int
    cq_addr: int
    depth: int
    interrupt: bool
    sq_head: int = 0
    sq_tail: int = 0            # latest tail written through the doorbell
    cq_head: int = 0            # latest CQ head doorbell from the consumer
    cq_tail: int = 0
    cq_phase: int = 1
    wake: Optional[object] = None  # Event set when the doorbell moves
    inflight: int = 0
    completed: int = 0
    post_lock: Optional[Resource] = None
    # Metric instruments; None unless a MetricsSession is installed.
    m_sq: Optional[object] = None
    m_cq: Optional[object] = None
    m_inflight: Optional[object] = None

    def sq_depth(self) -> int:
        return (self.sq_tail - self.sq_head) % self.depth

    def cq_depth(self) -> int:
        return (self.cq_tail - self.cq_head) % self.depth


class NvmeSsd(PcieDevice):
    """An NVMe SSD attached to the fabric."""

    def __init__(self, sim: Simulator, fabric: Fabric, name: str,
                 bar_base: int, config: SsdConfig = INTEL_750_400GB):
        super().__init__(sim, fabric, name, config.link)
        self.config = config
        self.flash = FlashStore(config.capacity_bytes, sim=sim, owner=name)
        self._regs = self.add_region("regs", bar_base, 64 * KIB)
        self._regs.on_mmio_write = self._on_doorbell
        self._queues: Dict[int, _QueueState] = {}
        self._channels = Resource(sim, capacity=config.channels)
        # Media bandwidth is shared: access latencies overlap across
        # channels, but the array's aggregate transfer rate (the
        # datasheet's 17.2/7.2 Gbps) is one pipe.
        self._media = Resource(sim, capacity=1)
        self.commands_processed = 0
        self.cqes_dropped = 0
        metrics = sim.metrics
        if metrics is not None:
            labels = dict(node=fabric.name, dev=name)
            metrics.polled("nvme.commands",
                           lambda: self.commands_processed, **labels)
            metrics.polled("nvme.cqes_dropped",
                           lambda: self.cqes_dropped, **labels)

    # -- setup -------------------------------------------------------------

    def create_io_queue(self, qid: int, sq_addr: int, cq_addr: int,
                        depth: int, interrupt: bool = False) -> QueuePair:
        """Create an I/O queue pair (admin bring-up, functional).

        ``sq_addr``/``cq_addr`` may live in any mapped memory — host
        DRAM or engine BRAM.  Returns the submitter-side
        :class:`QueuePair` view.  With ``interrupt=False`` the device
        posts CQEs silently for a polling consumer (the engine).
        """
        if qid in self._queues:
            raise DeviceError(f"queue {qid} already exists on {self.name}")
        if qid <= 0:
            raise DeviceError("I/O queue ids start at 1")
        state = _QueueState(qid=qid, sq_addr=sq_addr, cq_addr=cq_addr,
                            depth=depth, interrupt=interrupt)
        state.post_lock = Resource(self.sim, capacity=1)
        state.wake = self.sim.event()
        metrics = self.sim.metrics
        if metrics is not None:
            labels = dict(node=self.fabric.name, dev=self.name, qid=qid)
            state.m_sq = metrics.timegauge("nvme.sq_depth", **labels)
            state.m_cq = metrics.timegauge("nvme.cq_depth", **labels)
            state.m_inflight = metrics.timegauge("nvme.inflight", **labels)
        self._queues[qid] = state
        self.sim.process(self._queue_loop(state))
        return QueuePair(
            self.fabric, owner_port=self.name, qid=qid,
            sq_addr=sq_addr, cq_addr=cq_addr, depth=depth,
            sq_doorbell=self._sq_doorbell_addr(qid),
            cq_doorbell=self._cq_doorbell_addr(qid))

    def _sq_doorbell_addr(self, qid: int) -> int:
        return (self._regs.base + _DOORBELL_BASE
                + (2 * qid) * _DOORBELL_STRIDE)

    def _cq_doorbell_addr(self, qid: int) -> int:
        return (self._regs.base + _DOORBELL_BASE
                + (2 * qid + 1) * _DOORBELL_STRIDE)

    # -- doorbells ---------------------------------------------------------

    def _on_doorbell(self, offset: int, data: bytes) -> None:
        if offset < _DOORBELL_BASE:
            return  # controller configuration registers: ignored
        index = (offset - _DOORBELL_BASE) // _DOORBELL_STRIDE
        qid, is_cq = divmod(index, 2)
        state = self._queues.get(qid)
        if state is None:
            raise ProtocolError(f"doorbell for unknown queue {qid}")
        value = int.from_bytes(data[:4], "little")
        if value >= state.depth:
            raise ProtocolError(
                f"doorbell value {value} out of range for depth {state.depth}")
        if is_cq:
            # CQ overrun is not modeled, but the head doorbell still
            # feeds the nvme.cq_depth occupancy metric.
            state.cq_head = value
            if state.m_cq is not None:
                state.m_cq.set(state.cq_depth())
            return
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.instant("nvme.doorbell", track=f"dev:{self.name}",
                           name=f"sq{qid} tail={value}", qid=qid,
                           tail=value)
        state.sq_tail = value
        if state.m_sq is not None:
            state.m_sq.set(state.sq_depth())
        wake, state.wake = state.wake, self.sim.event()
        wake.succeed()

    # -- command processing --------------------------------------------------

    def _queue_loop(self, state: _QueueState):
        while True:
            if state.sq_head == state.sq_tail:
                yield state.wake
                continue
            slot = state.sq_head
            state.sq_head = (state.sq_head + 1) % state.depth
            if state.m_sq is not None:
                state.m_sq.set(state.sq_depth())
            try:
                raw = yield from self.dma_read(
                    state.sq_addr + slot * SQE_SIZE, SQE_SIZE)
            except DeviceError:
                # SQE fetch lost to a link fault: the command is gone;
                # the submitter's deadline recovers it.  Keep fetching.
                continue
            command = NvmeCommand.unpack(raw)
            state.inflight += 1
            if state.m_inflight is not None:
                state.m_inflight.set(state.inflight)
            self.sim.process(self._execute(state, command))

    _OPCODE_NAMES = {OP_READ: "read", OP_WRITE: "write", OP_FLUSH: "flush"}

    def _execute(self, state: _QueueState, command: NvmeCommand):
        tracer = self.sim.tracer
        span = None if tracer is None else tracer.begin(
            "nvme.command", track=f"dev:{self.name}",
            name=f"{self._OPCODE_NAMES.get(command.opcode, 'op')} "
                 f"{command.byte_length}B",
            qid=state.qid, cid=command.cid, opcode=command.opcode,
            slba=command.slba, size=command.byte_length)
        with self._channels.request() as channel:
            yield channel
            yield self.sim.timeout(self.config.command_overhead)
            status = 0
            try:
                if command.opcode == OP_READ:
                    yield from self._do_read(command)
                elif command.opcode == OP_WRITE:
                    yield from self._do_write(command)
                elif command.opcode == OP_FLUSH:
                    yield self.sim.timeout(self.config.timing.write_base)
                else:
                    status = 1  # invalid opcode
            except (DeviceError, ProtocolError):
                status = 2  # internal error surfaced as failed status
        yield from self._post_completion(state, command, status)
        if span is not None:
            span.end(status=status)

    def _transfer_addresses(self, command: NvmeCommand):
        """Process: resolve the command's PRPs into (addr, length) spans."""
        length = command.byte_length
        if length > self.config.max_transfer:
            raise ProtocolError(
                f"transfer of {length} exceeds MDTS {self.config.max_transfer}")
        pages = prp_pages(command.prp1, length)
        if len(pages) <= 2:
            addrs = pages if len(pages) == 1 else [command.prp1, command.prp2]
        else:
            # PRP list: fetch it from wherever the submitter built it.
            list_len = (len(pages) - 1) * 8
            raw = yield from self.dma_read(command.prp2, list_len)
            addrs = [command.prp1] + unpack_prp_list(raw)
            if len(addrs) != len(pages):
                raise ProtocolError(
                    f"PRP list has {len(addrs) - 1} entries, need "
                    f"{len(pages) - 1}")
        spans = []
        remaining = length
        for i, addr in enumerate(addrs):
            span = (PAGE - addr % PAGE) if i == 0 else PAGE
            span = min(span, remaining)
            # The DMA engine coalesces physically contiguous PRP
            # entries into one burst (every real controller does).
            if spans and spans[-1][0] + spans[-1][1] == addr:
                spans[-1] = (spans[-1][0], spans[-1][1] + span)
            else:
                spans.append((addr, span))
            remaining -= span
        return spans

    def _media_transfer(self, duration: int):
        with self._media.request() as pipe:
            yield pipe
            yield self.sim.timeout(duration)

    def _do_read(self, command: NvmeCommand):
        spans = yield from self._transfer_addresses(command)
        yield self.sim.timeout(self.config.timing.read_base)
        yield from self._media_transfer(
            self.config.timing.read_rate.duration(command.byte_length))
        data = self.flash.read_blocks(command.slba, command.nlb + 1)
        offset = 0
        for addr, span in spans:
            yield from self.dma_write(addr, data[offset:offset + span])
            offset += span

    def _do_write(self, command: NvmeCommand):
        spans = yield from self._transfer_addresses(command)
        chunks = []
        for addr, span in spans:
            chunk = yield from self.dma_read(addr, span)
            chunks.append(chunk)
        data = b"".join(chunks)
        yield self.sim.timeout(self.config.timing.write_base)
        yield from self._media_transfer(
            self.config.timing.write_rate.duration(command.byte_length))
        self.flash.write_blocks(command.slba, data)

    def _post_completion(self, state: _QueueState, command: NvmeCommand,
                         status: int):
        # The completion message can be lost on its way out — injected
        # (nvme.cqe_drop) or because a link fault ate the CQE write.
        # Either way the data moved but no CQE/MSI reaches the
        # submitter, whose watchdog must act.
        faults = self.sim.faults
        dropped = faults is not None and faults.fires(
            "nvme.cqe_drop", device=self.name, qid=state.qid,
            cid=command.cid)
        if not dropped:
            # CQE posting serializes per queue to keep tail/phase
            # coherent.
            with state.post_lock.request() as lock:
                yield lock
                cqe = Completion(cid=command.cid, sq_head=state.sq_head,
                                 status=status, phase=state.cq_phase,
                                 sq_id=state.qid)
                addr = state.cq_addr + state.cq_tail * CQE_SIZE
                state.cq_tail += 1
                if state.cq_tail == state.depth:
                    state.cq_tail = 0
                    state.cq_phase ^= 1
                if state.m_cq is not None:
                    state.m_cq.set(state.cq_depth())
                try:
                    yield from self.dma_write(addr, cqe.pack())
                except DeviceError:
                    dropped = True
        if not dropped:
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.instant("nvme.cqe", track=f"dev:{self.name}",
                               name=f"cqe q{state.qid} cid={command.cid}",
                               qid=state.qid, cid=command.cid, status=status)
        state.inflight -= 1
        if state.m_inflight is not None:
            state.m_inflight.set(state.inflight)
        state.completed += 1
        self.commands_processed += 1
        if dropped:
            self.cqes_dropped += 1
            return
        if state.interrupt:
            try:
                yield from self.msi(vector=state.qid)
            except DeviceError:
                pass  # lost interrupt: the host driver's deadline recovers
