"""NVMe command and completion wire formats, and PRP arithmetic.

Layouts follow the NVM Express 1.2 specification [40] for the fields
this reproduction exercises: 64-byte submission entries with opcode,
command identifier, namespace, PRP1/PRP2, starting LBA and block count;
16-byte completion entries with the phase-tagged status word.  Whoever
builds these bytes — the host NVMe driver or the HDC Engine's NVMe
controller — the SSD model decodes the same format, which is precisely
what lets an FPGA drive an off-the-shelf SSD.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import ProtocolError
from repro.units import PAGE

SQE_SIZE = 64
CQE_SIZE = 16

OP_FLUSH = 0x00
OP_WRITE = 0x01
OP_READ = 0x02

LBA_SIZE = 4096  # the 4 KiB-formatted namespace the paper uses

_SQE_FMT = "<BBH I 16x Q Q Q H 14x"     # opcode, fuse, cid, nsid, prp1, prp2, slba, nlb
_CQE_FMT = "<I 4x H H H H"              # result, sq_head, sq_id, cid, status|phase


@dataclass(frozen=True)
class NvmeCommand:
    """A decoded submission-queue entry."""

    opcode: int
    cid: int
    nsid: int
    prp1: int
    prp2: int
    slba: int
    nlb: int  # zero-based: 0 means one block

    @property
    def byte_length(self) -> int:
        """Transfer length implied by the block count."""
        return (self.nlb + 1) * LBA_SIZE

    def pack(self) -> bytes:
        """Serialize to the 64-byte SQE format."""
        if not 0 <= self.nlb <= 0xFFFF:
            raise ProtocolError(f"nlb out of range: {self.nlb}")
        return struct.pack(_SQE_FMT, self.opcode, 0, self.cid, self.nsid,
                           self.prp1, self.prp2, self.slba, self.nlb)

    @classmethod
    def unpack(cls, data: bytes) -> "NvmeCommand":
        if len(data) != SQE_SIZE:
            raise ProtocolError(f"SQE must be {SQE_SIZE} bytes, got {len(data)}")
        opcode, _fuse, cid, nsid, prp1, prp2, slba, nlb = struct.unpack(
            _SQE_FMT, data)
        return cls(opcode=opcode, cid=cid, nsid=nsid, prp1=prp1, prp2=prp2,
                   slba=slba, nlb=nlb)


@dataclass(frozen=True)
class Completion:
    """A decoded completion-queue entry."""

    cid: int
    sq_head: int
    status: int
    phase: int
    result: int = 0
    sq_id: int = 0

    @property
    def ok(self) -> bool:
        return self.status == 0

    def pack(self) -> bytes:
        """Serialize to the 16-byte CQE format (phase in status bit 0)."""
        status_field = (self.status << 1) | (self.phase & 1)
        return struct.pack(_CQE_FMT, self.result, self.sq_head, self.sq_id,
                           self.cid, status_field)

    @classmethod
    def unpack(cls, data: bytes) -> "Completion":
        if len(data) != CQE_SIZE:
            raise ProtocolError(f"CQE must be {CQE_SIZE} bytes, got {len(data)}")
        result, sq_head, sq_id, cid, status_field = struct.unpack(_CQE_FMT, data)
        return cls(cid=cid, sq_head=sq_head, status=status_field >> 1,
                   phase=status_field & 1, result=result, sq_id=sq_id)


def prp_pages(buffer_addr: int, length: int,
              page_size: int = PAGE) -> List[int]:
    """The page-aligned PRP entries covering [buffer_addr, +length).

    The first entry may carry an in-page offset (NVMe allows it); all
    subsequent entries must be page-aligned, which holds by construction.
    """
    if length <= 0:
        raise ProtocolError(f"transfer length must be positive: {length}")
    pages = [buffer_addr]
    first_page_bytes = page_size - (buffer_addr % page_size)
    covered = min(first_page_bytes, length)
    next_page = buffer_addr + first_page_bytes
    while covered < length:
        pages.append(next_page)
        covered += min(page_size, length - covered)
        next_page += page_size
    return pages


def prp_fields(pages: List[int],
               page_size: int = PAGE) -> Tuple[int, int, bytes]:
    """Derive (prp1, prp2, prp_list_bytes) for a page list.

    * one page  → prp2 = 0, no list;
    * two pages → prp2 = second page, no list;
    * more      → prp2 points at a PRP list; the caller must write the
      returned list bytes at a page it allocates and patch prp2 to that
      address (we return ``prp2 = 0`` as the placeholder in that case).
    """
    if not pages:
        raise ProtocolError("empty PRP page list")
    if len(pages) == 1:
        return pages[0], 0, b""
    if len(pages) == 2:
        return pages[0], pages[1], b""
    list_bytes = b"".join(struct.pack("<Q", p) for p in pages[1:])
    if len(list_bytes) > page_size:
        raise ProtocolError(
            f"PRP list of {len(pages) - 1} entries exceeds one page")
    return pages[0], 0, list_bytes


def unpack_prp_list(data: bytes) -> List[int]:
    """Decode a PRP list page into entry addresses (zero-terminated)."""
    if len(data) % 8:
        raise ProtocolError(f"PRP list length {len(data)} not multiple of 8")
    entries = []
    for (addr,) in struct.iter_unpack("<Q", data):
        if addr == 0:
            break
        entries.append(addr)
    return entries
