"""The SSD's backing flash array: functional store + access timing."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DeviceError, MediaError
from repro.memory.region import SparseBytes
from repro.devices.nvme.commands import LBA_SIZE
from repro.units import Rate, gbps, usec


@dataclass(frozen=True)
class FlashTiming:
    """Media-side timing of the flash array behind the controller.

    ``read_rate``/``write_rate`` are the sustained internal array
    bandwidths; the paper quotes the Intel 750's 17.2 Gbps read and
    7.2 Gbps write (Table V).  Base latencies cover lookup, ECC and the
    NAND access itself for the first page.
    """

    read_base: int
    write_base: int
    read_rate: Rate
    write_rate: Rate

    def read_duration(self, size: int) -> int:
        return self.read_base + self.read_rate.duration(size)

    def write_duration(self, size: int) -> int:
        return self.write_base + self.write_rate.duration(size)


INTEL_750_TIMING = FlashTiming(
    read_base=usec(8),
    write_base=usec(13),
    read_rate=gbps(17.2),
    write_rate=gbps(7.2),
)


class FlashStore:
    """LBA-addressed functional storage (sparse, zero-filled)."""

    def __init__(self, capacity_bytes: int, lba_size: int = LBA_SIZE,
                 sim=None, owner: str = "flash"):
        if capacity_bytes % lba_size:
            raise DeviceError("capacity must be a multiple of the LBA size")
        self.lba_size = lba_size
        self.capacity_blocks = capacity_bytes // lba_size
        self._store = SparseBytes(capacity_bytes)
        # Fault-injection plumbing: when the owning SSD passes its sim,
        # reads consult the installed plan (one branch when none is).
        self.sim = sim
        self.owner = owner
        self.media_errors = 0

    def _check(self, slba: int, nblocks: int) -> None:
        if slba < 0 or nblocks <= 0 or slba + nblocks > self.capacity_blocks:
            raise DeviceError(
                f"LBA range [{slba}, {slba + nblocks}) outside device of "
                f"{self.capacity_blocks} blocks")

    def read_blocks(self, slba: int, nblocks: int) -> bytes:
        """Read ``nblocks`` logical blocks starting at ``slba``."""
        self._check(slba, nblocks)
        faults = None if self.sim is None else self.sim.faults
        if faults is not None and faults.fires(
                "flash.read", key=(self.owner, slba),
                owner=self.owner, slba=slba, nblocks=nblocks):
            self.media_errors += 1
            raise MediaError(
                f"{self.owner}: uncorrectable media error reading "
                f"LBA {slba} (+{nblocks})")
        return self._store.read(slba * self.lba_size, nblocks * self.lba_size)

    def write_blocks(self, slba: int, data: bytes) -> None:
        """Write whole blocks starting at ``slba``."""
        if len(data) % self.lba_size:
            raise DeviceError(
                f"write of {len(data)} bytes is not block-aligned")
        self._check(slba, len(data) // self.lba_size)
        self._store.write(slba * self.lba_size, data)
