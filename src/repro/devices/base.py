"""Base class for PCIe-attached device models."""

from __future__ import annotations

from repro.memory.region import MemoryRegion
from repro.pcie.link import LinkConfig
from repro.pcie.switch import Fabric
from repro.sim.kernel import Simulator


class PcieDevice:
    """A device attached to one fabric port.

    Subclasses register BAR windows with :meth:`add_region` and initiate
    traffic through the thin DMA wrappers, which fix the initiator to
    this device's port.
    """

    def __init__(self, sim: Simulator, fabric: Fabric, name: str,
                 link: LinkConfig):
        self.sim = sim
        self.fabric = fabric
        self.name = name
        fabric.add_port(name, link)

    def add_region(self, suffix: str, base: int, size: int,
                   sparse: bool = False) -> MemoryRegion:
        """Register an addressable window owned by this device."""
        region = MemoryRegion(f"{self.name}-{suffix}", base=base, size=size,
                              port=self.name, sparse=sparse)
        return self.fabric.add_region(region)

    # -- DMA wrappers (generators; drive with ``yield from``) -------------

    def dma_read(self, addr: int, length: int):
        """Read ``length`` bytes at ``addr`` as this device (timed)."""
        return self.fabric.dma_read(self.name, addr, length)

    def dma_write(self, addr: int, data: bytes):
        """Write ``data`` at ``addr`` as this device (timed)."""
        return self.fabric.dma_write(self.name, addr, data)

    def mmio_write(self, addr: int, data: bytes):
        """Small register write as this device (timed)."""
        return self.fabric.mmio_write(self.name, addr, data)

    def msi(self, vector: int = 0):
        """Raise a message-signalled interrupt toward the host."""
        return self.fabric.msi(self.name, vector=vector)
