"""The GPU device model (Tesla K20m-class).

The baselines in the paper use the GPU exactly one way: as a bump in
the wire for intermediate processing — copy data in (or let a peer DMA
it in, GPUDirect-style), launch a checksum/encryption kernel, copy the
result out.  The model therefore provides a copy engine, a kernel
execution engine with launch overhead, and a fabric-addressable device
memory window (the GPUDirect/DirectGMA BAR) so that SSDs can P2P-DMA
into GPU memory in the software-controlled-P2P scheme.

Kernel *results* are computed functionally with the same from-scratch
algorithm implementations the NDP units use (:mod:`repro.algos`), so a
GPU-computed MD5 and an NDP-computed MD5 agree bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.algos import crc32_digest, md5_digest, sha1_digest, sha256_digest
from repro.devices.base import PcieDevice
from repro.errors import DeviceError
from repro.pcie.link import LINK_GEN2_X16, LinkConfig
from repro.pcie.switch import Fabric
from repro.sim.kernel import Simulator
from repro.sim.resources import Resource
from repro.units import MIB, Rate, gbps, usec


@dataclass(frozen=True)
class KernelSpec:
    """One offload kernel: functional result + streaming throughput."""

    name: str
    fn: Callable[[bytes], bytes]
    rate: Rate


# Throughputs are single-stream effective rates on a K20m-class part:
# hashing is latency-bound and far below peak FLOPs; CRC is table lookups.
_KERNELS: Dict[str, KernelSpec] = {
    "md5": KernelSpec("md5", md5_digest, gbps(20)),
    "sha1": KernelSpec("sha1", sha1_digest, gbps(18)),
    "sha256": KernelSpec("sha256", sha256_digest, gbps(14)),
    "crc32": KernelSpec("crc32", crc32_digest, gbps(45)),
}


@dataclass(frozen=True)
class GpuConfig:
    """Static GPU parameters."""

    model: str
    link: LinkConfig
    memory_bytes: int = 512 * MIB
    launch_overhead: int = usec(7)   # device-side pipeline setup per launch
    copy_engines: int = 2


TESLA_K20M = GpuConfig(model="NVIDIA Tesla K20m", link=LINK_GEN2_X16)


class Gpu(PcieDevice):
    """A GPU with exposed device memory and checksum kernels."""

    def __init__(self, sim: Simulator, fabric: Fabric, name: str,
                 bar_base: int, config: GpuConfig = TESLA_K20M):
        super().__init__(sim, fabric, name, config.link)
        self.config = config
        # The GPUDirect-exposed device memory window: peers may DMA here.
        self.dram = self.add_region("dram", bar_base, config.memory_bytes,
                                    sparse=True)
        self._copy_engines = Resource(sim, capacity=config.copy_engines)
        self._exec_engine = Resource(sim, capacity=1)
        self.kernels_launched = 0
        metrics = sim.metrics
        if metrics is None:
            self._m_copy = self._m_exec = None
        else:
            self._m_copy = metrics.timegauge(
                "gpu.copy_busy", node=fabric.name, dev=name)
            self._m_exec = metrics.timegauge(
                "gpu.exec_busy", node=fabric.name, dev=name)

    # -- memory helpers ------------------------------------------------------

    def mem_addr(self, offset: int) -> int:
        """Fabric address of ``offset`` within GPU memory."""
        if not 0 <= offset < self.config.memory_bytes:
            raise DeviceError(f"GPU memory offset {offset} out of range")
        return self.dram.base + offset

    # -- copy engine ----------------------------------------------------------

    def copy_in(self, src_addr: int, gpu_offset: int, size: int):
        """Process: H2D (or peer-to-device) copy via the GPU's DMA engine."""
        tracer = self.sim.tracer
        span = None if tracer is None else tracer.begin(
            "gpu.copy", track=f"dev:{self.name}", name=f"copy-in {size}B",
            direction="in", size=size)
        with self._copy_engines.request() as engine:
            yield engine
            if self._m_copy is not None:
                self._m_copy.inc()
            try:
                data = yield from self.dma_read(src_addr, size)
                self.dram.write(self.mem_addr(gpu_offset), data)
            finally:
                if self._m_copy is not None:
                    self._m_copy.dec()
        if span is not None:
            span.end()

    def copy_out(self, gpu_offset: int, dst_addr: int, size: int):
        """Process: D2H (or device-to-peer) copy via the GPU's DMA engine."""
        tracer = self.sim.tracer
        span = None if tracer is None else tracer.begin(
            "gpu.copy", track=f"dev:{self.name}", name=f"copy-out {size}B",
            direction="out", size=size)
        with self._copy_engines.request() as engine:
            yield engine
            if self._m_copy is not None:
                self._m_copy.inc()
            try:
                data = self.dram.read(self.mem_addr(gpu_offset), size)
                yield from self.dma_write(dst_addr, data)
            finally:
                if self._m_copy is not None:
                    self._m_copy.dec()
        if span is not None:
            span.end()

    # -- kernels ---------------------------------------------------------------

    @staticmethod
    def kernel_names() -> list[str]:
        """The offload kernels this model ships."""
        return sorted(_KERNELS)

    def launch(self, kernel: str, in_offset: int, size: int,
               out_offset: int):
        """Process: run ``kernel`` over GPU memory; returns the digest.

        The digest is also written into GPU memory at ``out_offset`` so
        baselines can D2H-copy it back the way real code does.
        """
        spec = _KERNELS.get(kernel)
        if spec is None:
            raise DeviceError(f"unknown GPU kernel {kernel!r}; "
                              f"have {self.kernel_names()}")
        if size <= 0:
            raise DeviceError(f"kernel input size must be positive: {size}")
        tracer = self.sim.tracer
        span = None if tracer is None else tracer.begin(
            "gpu.exec", track=f"dev:{self.name}",
            name=f"{kernel} {size}B", kernel=kernel, size=size)
        with self._exec_engine.request() as engine:
            yield engine
            if self._m_exec is not None:
                self._m_exec.inc()
            try:
                yield self.sim.timeout(self.config.launch_overhead
                                       + spec.rate.duration(size))
                data = self.dram.read(self.mem_addr(in_offset), size)
                digest = spec.fn(data)
                self.dram.write(self.mem_addr(out_offset), digest)
            finally:
                if self._m_exec is not None:
                    self._m_exec.dec()
        self.kernels_launched += 1
        if span is not None:
            span.end()
        return digest
