"""GPU model: copy engine + kernel execution for checksum offload."""

from repro.devices.gpu.gpu import TESLA_K20M, Gpu, GpuConfig, KernelSpec

__all__ = ["Gpu", "GpuConfig", "KernelSpec", "TESLA_K20M"]
