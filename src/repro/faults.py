"""Deterministic fault injection and the recovery policy knobs.

Real drivers own the *unhappy* path — command timeouts, bounded
retries, aborting a multi-device chain when one stage dies.  This
module is the platform half of that story:

* :class:`FaultRule` / :class:`FaultPlan` — a seeded description of
  *what* fails and *when*.  Each rule names an injection site (a
  dotted slug such as ``"flash.read"``), and fires either with a
  probability per occurrence or at explicit occurrence numbers.  All
  randomness comes from a dedicated :class:`~repro.sim.rng.RngHub`
  stream per site (``faults/<site>``), so two runs with the same seed
  inject *identically*.
* :class:`ActiveFaults` — the per-simulator runtime installed by
  :meth:`FaultPlan.install` as ``sim.faults``.  Injection sites guard
  with one ``is not None`` check (mirroring ``sim.tracer``), so the
  fault-free hot path pays a single branch per site.
* :class:`RetryPolicy` — deadline + bounded-retry/backoff parameters
  used by the host NVMe driver, the engine's device controllers and
  the HDC driver's completion watchdog.
* :func:`watchdog` — arm a deadline on a pending event: if the event
  has not triggered when the deadline expires, it *fails* with
  :class:`~repro.errors.DeviceTimeout`.  Implemented as a raw timeout
  callback (not ``any_of``) so the success path's event ordering is
  untouched.

Injection sites in the tree (see ``docs/faults.md``):

===================  =====================================================
site                 effect when it fires
===================  =====================================================
``flash.read``       uncorrectable media error (``MediaError``) on an LBA
                     read; ``permanent=True`` makes the hit LBA sticky
``nvme.cqe_drop``    the SSD executes the command but never posts the CQE
                     (and never raises its MSI)
``nic.wire_drop``    an egress frame is lost on the wire
``pcie.timeout``     a TLP completion timeout on one link traversal
===================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, DeviceTimeout
from repro.units import msec, usec

#: The injection sites wired into the device/fabric models.
FAULT_SITES = ("flash.read", "nvme.cqe_drop", "nic.wire_drop",
               "pcie.timeout")


def fault_site_names() -> frozenset:
    """The closed set of injection-site names.

    Machine-readable export consumed by tooling — in particular the
    ``PLANE003`` rule of :mod:`repro.lint`, which rejects site string
    literals that are not wired into the models.
    """
    return frozenset(FAULT_SITES)


# ---------------------------------------------------------------------------
# Plans and rules
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FaultRule:
    """One injection rule: *where*, *when*, and *how sticky*.

    ``probability`` fires the rule on each occurrence with that chance
    (drawn from the site's dedicated rng stream); ``occurrences`` fires
    it deterministically at those 1-based occurrence numbers of the
    site.  Both may be combined.  ``permanent`` records the occurrence
    *key* (e.g. the LBA) so every later access to the same key fails
    too — a dead block rather than a transient flip.  ``max_fires``
    bounds how many times the rule triggers in total.
    """

    site: str
    probability: float = 0.0
    occurrences: FrozenSet[int] = frozenset()
    permanent: bool = False
    max_fires: Optional[int] = None

    def __post_init__(self):
        if self.site not in FAULT_SITES:
            raise ConfigurationError(
                f"unknown fault site {self.site!r}; choose from "
                f"{', '.join(FAULT_SITES)}")
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError(
                f"fault probability must be in [0, 1]: {self.probability}")
        object.__setattr__(self, "occurrences",
                           frozenset(self.occurrences))

    @property
    def can_fire(self) -> bool:
        return self.probability > 0.0 or bool(self.occurrences)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic description of everything that fails.

    Install onto a simulator (together with its :class:`RngHub`) via
    :meth:`install`; :class:`~repro.schemes.testbed.Testbed` accepts a
    plan directly through its ``faults=`` parameter.
    """

    rules: Tuple[FaultRule, ...] = ()

    def __init__(self, rules: Sequence[FaultRule] = ()):
        object.__setattr__(self, "rules", tuple(rules))

    def install(self, sim, rng_hub) -> "ActiveFaults":
        """Activate this plan on ``sim`` (sets ``sim.faults``)."""
        active = ActiveFaults(self, rng_hub, sim)
        sim.faults = active
        return active


class _SiteState:
    """Runtime state of one injection site."""

    __slots__ = ("rules", "rng", "count", "fired", "sticky")

    def __init__(self, rules: List[FaultRule], rng):
        self.rules = rules
        self.rng = rng
        self.count = 0          # occurrences seen (1-based after increment)
        self.fired = [0] * len(rules)
        self.sticky: set = set()


class ActiveFaults:
    """The runtime the injection sites consult (``sim.faults``).

    ``armed`` is False for a zero-rate plan (no rule can ever fire);
    recovery code uses it to skip arming watchdogs, which keeps a
    zero-rate run's event schedule byte-identical to an uninstrumented
    one.
    """

    def __init__(self, plan: FaultPlan, rng_hub, sim):
        self.sim = sim
        self.plan = plan
        self.injected = 0
        metrics = sim.metrics
        if metrics is not None:
            metrics.polled("faults.injected", lambda: self.injected)
        self._sites: Dict[str, _SiteState] = {}
        for rule in plan.rules:
            state = self._sites.get(rule.site)
            if state is None:
                state = _SiteState([], rng_hub.stream(f"faults/{rule.site}"))
                self._sites[rule.site] = state
            state.rules.append(rule)
            state.fired.append(0)
        self.armed = any(rule.can_fire for rule in plan.rules)

    def occurrences(self, site: str) -> int:
        """How many times ``site`` has been evaluated so far."""
        state = self._sites.get(site)
        return 0 if state is None else state.count

    def fires(self, site: str, key=None, **detail) -> bool:
        """Evaluate the site's rules for this occurrence.

        ``key`` identifies the resource being touched (e.g. an LBA) for
        permanent-fault stickiness.  ``detail`` lands in the emitted
        ``fault.inject`` trace event.
        """
        state = self._sites.get(site)
        if state is None:
            return False
        state.count += 1
        occurrence = state.count
        fired = key is not None and key in state.sticky
        if not fired:
            for index, rule in enumerate(state.rules):
                if (rule.max_fires is not None
                        and state.fired[index] >= rule.max_fires):
                    continue
                hit = occurrence in rule.occurrences
                if not hit and rule.probability > 0.0:
                    hit = state.rng.random() < rule.probability
                if hit:
                    state.fired[index] += 1
                    if rule.permanent and key is not None:
                        state.sticky.add(key)
                    fired = True
                    break
        if fired:
            self.injected += 1
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.instant("fault.inject", track="faults", name=site,
                               site=site, occurrence=occurrence,
                               key=repr(key) if key is not None else None,
                               **detail)
        return fired


def active_faults(sim) -> Optional[ActiveFaults]:
    """``sim.faults`` if an armed plan is installed, else None.

    Recovery machinery (watchdogs, deadlines) gates on this so that a
    run without injectable faults schedules *no* extra events at all.
    """
    faults = sim.faults
    if faults is not None and faults.armed:
        return faults
    return None


# ---------------------------------------------------------------------------
# Recovery: deadlines, bounded retries, watchdogs
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RetryPolicy:
    """Deadline + bounded-retry parameters for one command class.

    ``deadline_for(nbytes)`` scales the base deadline by the transfer
    size; ``backoff(attempt)`` is the exponential pause before retry
    ``attempt`` (1-based).  Defaults are generous relative to the
    simulated devices' microsecond-scale operations, so a deadline only
    trips when a completion was genuinely lost.
    """

    deadline_ns: int
    deadline_per_byte: int = 0
    retries: int = 3
    backoff_ns: int = usec(50)
    backoff_factor: int = 2

    def deadline_for(self, nbytes: int) -> int:
        return self.deadline_ns + self.deadline_per_byte * nbytes

    def backoff(self, attempt: int) -> int:
        return self.backoff_ns * (self.backoff_factor ** max(0, attempt - 1))


#: Host NVMe driver: per-command deadline and bounded re-issue.
HOST_NVME_POLICY = RetryPolicy(deadline_ns=msec(10), deadline_per_byte=4,
                               retries=3, backoff_ns=usec(50))
#: Engine NVMe controller: what the RTL FSM's wait state would time out.
ENGINE_NVME_POLICY = RetryPolicy(deadline_ns=msec(5), deadline_per_byte=4,
                                 retries=3, backoff_ns=usec(20))
#: Engine NIC controller, transmit: deadline only (a TCP stream cannot
#: be blindly re-sent at the descriptor level).
ENGINE_NIC_SEND_POLICY = RetryPolicy(deadline_ns=msec(20),
                                     deadline_per_byte=8, retries=0)
#: Engine NIC controller, receive gather: deadline only.
ENGINE_NIC_RECV_POLICY = RetryPolicy(deadline_ns=msec(50),
                                     deadline_per_byte=8, retries=0)
#: HDC driver's D2D completion watchdog: the last line of defence, so
#: it sits well above every per-device deadline and retry budget.
D2D_WATCHDOG_POLICY = RetryPolicy(deadline_ns=msec(200),
                                  deadline_per_byte=16, retries=0)


def watchdog(sim, event, deadline: int, what: str, **detail) -> None:
    """Fail ``event`` with :class:`DeviceTimeout` after ``deadline`` ns
    unless it has triggered by then.

    The expiry is a plain callback on a :class:`~repro.sim.events.Timeout`
    — no composite event, no extra hop on the success path — so arming
    a watchdog cannot reorder a run in which it never fires.
    """

    def _expire(_timeout) -> None:
        if event.triggered:
            return
        tracer = sim.tracer
        if tracer is not None:
            tracer.instant("recover.timeout", track="faults", name=what,
                           deadline=deadline, **detail)
        event.fail(DeviceTimeout(f"{what}: no completion within "
                                 f"{deadline} ns"))

    sim.timeout(deadline).callbacks.append(_expire)
