"""Exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SimulationError(ReproError):
    """The simulation kernel was used incorrectly or reached a bad state."""


class AddressError(ReproError):
    """An access touched an unmapped or out-of-bounds address."""


class DeviceError(ReproError):
    """A device model rejected a command or reached an illegal state."""


class DeviceTimeout(DeviceError):
    """A command deadline/watchdog expired before the completion arrived."""


class MediaError(DeviceError):
    """An uncorrectable flash media error (injected or modeled)."""


class ProtocolError(ReproError):
    """A protocol-level violation (NVMe, NIC descriptor, TCP framing)."""


class AllocationError(ReproError):
    """A memory or buffer allocation could not be satisfied."""


class ConfigurationError(ReproError):
    """A scheme or experiment was configured inconsistently."""


class TraceError(ReproError):
    """The tracing contract was violated (unknown event type, bad span)."""


class MetricsError(ReproError):
    """The metrics contract was violated (unknown metric, kind mismatch)."""
