"""Session management for the metrics plane.

Mirrors :class:`~repro.trace.tracer.TraceSession`: one
:class:`MetricsSession` covers a whole experiment run and hands a fresh
:class:`~repro.metrics.registry.MetricSet` to every
:class:`~repro.sim.kernel.Simulator` constructed while installed.  With
no session installed, ``Simulator.metrics`` is ``None`` and the whole
plane costs one identity check per instrumentation site and one per
``step()``.

The default sampling interval is 100 µs of simulated time — coarse
enough that app-scale runs stay small (rows are change-compressed on
top), fine enough for a utilization time series; microbenchmark sims
shorter than one interval still export one forced sample per series at
finalize.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import List, Optional

from repro.errors import MetricsError
from repro.metrics.registry import MetricSet

DEFAULT_INTERVAL_NS = 100_000  # 100 µs of simulated time

_ACTIVE_SESSION: Optional["MetricsSession"] = None


class MetricsSession:
    """Collects the metric sets of every simulator built while installed.

    Use as a context manager (preferred) or via
    :meth:`install`/:meth:`uninstall`::

        with MetricsSession(label="fig11") as session:
            run_fig11()
        write_csv("out.csv", session)
        print(render_top(session))
    """

    def __init__(self, label: str = "run",
                 interval_ns: int = DEFAULT_INTERVAL_NS):
        if interval_ns <= 0:
            raise MetricsError(
                f"sampling interval must be positive, got {interval_ns}")
        self.sets: List[MetricSet] = []
        self.interval_ns = interval_ns
        self._label = label
        self._counter = 0

    # -- install ----------------------------------------------------------

    def install(self) -> "MetricsSession":
        global _ACTIVE_SESSION
        if _ACTIVE_SESSION is not None and _ACTIVE_SESSION is not self:
            raise MetricsError("another MetricsSession is already installed")
        _ACTIVE_SESSION = self
        return self

    def uninstall(self) -> None:
        global _ACTIVE_SESSION
        if _ACTIVE_SESSION is self:
            _ACTIVE_SESSION = None

    def __enter__(self) -> "MetricsSession":
        return self.install()

    def __exit__(self, *exc) -> None:
        self.uninstall()
        self.finalize()

    # -- labelling --------------------------------------------------------

    def set_label(self, label: str) -> str:
        """Label simulators created from now on; returns the old label."""
        previous, self._label = self._label, label
        return previous

    # -- metric-set factory -----------------------------------------------

    def metrics_for(self, sim) -> MetricSet:
        metric_set = MetricSet(sim, label=f"{self._label}/sim{self._counter}",
                               interval_ns=self.interval_ns)
        self._counter += 1
        self.sets.append(metric_set)
        return metric_set

    def finalize(self) -> None:
        for metric_set in self.sets:
            metric_set.finalize()


def current_metrics_session() -> Optional[MetricsSession]:
    """The installed session, or None (metrics off)."""
    return _ACTIVE_SESSION


def metrics_for_new_sim(sim) -> Optional[MetricSet]:
    """Called by ``Simulator.__init__``: a metric set when a session is
    installed, else ``None`` (the zero-overhead default)."""
    if _ACTIVE_SESSION is None:
        return None
    return _ACTIVE_SESSION.metrics_for(sim)


@contextmanager
def metrics_section(label: str):
    """Label every simulator built inside the block (no-op when metrics
    are off).  ``repro.trace.trace_section`` labels both planes, so
    experiment runners only need the one call."""
    session = current_metrics_session()
    if session is None:
        yield
        return
    previous = session.set_label(label)
    try:
        yield
    finally:
        session.set_label(previous)
