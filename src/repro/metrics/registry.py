"""Typed metric instruments and the per-simulator registry.

One :class:`MetricSet` rides one :class:`~repro.sim.kernel.Simulator`
(``sim.metrics``), exactly as a :class:`~repro.trace.tracer.Tracer`
does: it is ``None`` unless a
:class:`~repro.metrics.session.MetricsSession` is installed, and every
hot instrumentation site guards with a single ``is not None`` check.

Two registration styles:

* **instruments** — :meth:`MetricSet.counter` / :meth:`~MetricSet.gauge`
  / :meth:`~MetricSet.timegauge` / :meth:`~MetricSet.histogram` return
  an object the component updates at transition points.  Used where the
  quantity is not already tracked (queue depths, bytes in flight, busy
  engines).
* **polled** — :meth:`MetricSet.polled` / :meth:`~MetricSet.polled_map`
  take a callable read at sample time.  Used for quantities the model
  already counts unconditionally (commands processed, allocator bytes,
  fault counters): the hot path pays nothing at all.

Sampling is driven by :meth:`MetricSet.advance`, called from
``Simulator.step()`` whenever simulated time crosses a multiple of the
sampling interval.  Crucially this **schedules no events**: the queue
drains exactly as it would without metrics, so event order — and every
published figure — is byte-identical with the plane enabled.

Determinism: samples land on fixed interval boundaries, series are
sampled in registration order, ``polled_map`` keys are iterated sorted,
and rows are change-compressed (a row is recorded only for the first
sample, a changed value, or the forced final sample) — so a seeded run
exports byte-identical CSV/JSONL every time.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.errors import MetricsError
from repro.metrics.catalog import METRICS

LabelSet = Tuple[Tuple[str, str], ...]

# Values above 2**63 all land in the top bucket; 64 edges cover every
# integer quantity the simulator produces (ns, bytes, entries).
HISTOGRAM_BUCKETS = 64


def _labelset(labels: Mapping[str, Any]) -> LabelSet:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def format_labels(labels: LabelSet) -> str:
    """Canonical ``k=v;k2=v2`` rendering (sorted keys, no quoting)."""
    return ";".join(f"{k}={v}" for k, v in labels)


class Metric:
    """Base class: identity, sampling, and change-compression state."""

    kind = "abstract"

    __slots__ = ("name", "labels", "_sim", "_last_time", "_last_value")

    def __init__(self, name: str, labels: LabelSet, sim):
        self.name = name
        self.labels = labels
        self._sim = sim
        self._last_time: Optional[int] = None
        self._last_value: Optional[float] = None

    def sample_value(self) -> float:
        raise NotImplementedError

    def _close(self, now: int) -> None:
        """Finalize time-dependent state at ``now`` (end of run)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"{type(self).__name__}({self.name}"
                f"{{{format_labels(self.labels)}}})")


class Counter(Metric):
    """A monotonically increasing total."""

    kind = "counter"

    __slots__ = ("value",)

    def __init__(self, name: str, labels: LabelSet, sim):
        super().__init__(name, labels, sim)
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise MetricsError(
                f"counter {self.name} cannot decrease (inc {amount})")
        self.value += amount

    def sample_value(self) -> float:
        return self.value


class Gauge(Metric):
    """An instantaneous level; tracks its peak."""

    kind = "gauge"

    __slots__ = ("value", "peak")

    def __init__(self, name: str, labels: LabelSet, sim):
        super().__init__(name, labels, sim)
        self.value: float = 0
        self.peak: float = 0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.peak:
            self.peak = value

    def inc(self, amount: float = 1) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1) -> None:
        self.set(self.value - amount)

    def sample_value(self) -> float:
        return self.value


class TimeWeightedGauge(Gauge):
    """A gauge that also integrates value × time on the simulated clock,
    so ``mean()`` is the true time-weighted average, not an average of
    samples."""

    kind = "timegauge"

    __slots__ = ("integral", "_since", "_born")

    def __init__(self, name: str, labels: LabelSet, sim):
        super().__init__(name, labels, sim)
        self.integral: float = 0
        self._since: int = sim.now
        self._born: int = sim.now

    def set(self, value: float) -> None:
        now = self._sim.now
        self.integral += self.value * (now - self._since)
        self._since = now
        super().set(value)

    def _close(self, now: int) -> None:
        self.integral += self.value * (now - self._since)
        self._since = now

    def mean(self, end: Optional[int] = None) -> float:
        """Time-weighted mean over the instrument's lifetime."""
        end = self._sim.now if end is None else end
        elapsed = end - self._born
        if elapsed <= 0:
            return 0.0
        tail = self.value * (end - self._since)
        return (self.integral + tail) / elapsed

    def sample_value(self) -> float:
        return self.value


class Histogram(Metric):
    """A distribution over fixed log2 bucket edges.

    Bucket ``i`` counts values whose ``int(value).bit_length() == i``,
    i.e. edge ``i`` covers ``[2**(i-1), 2**i - 1]`` (bucket 0 is exactly
    zero).  Integer bucketing makes the layout deterministic across
    platforms — no float binning.
    """

    kind = "histogram"

    __slots__ = ("buckets", "count", "total")

    def __init__(self, name: str, labels: LabelSet, sim):
        super().__init__(name, labels, sim)
        self.buckets: List[int] = [0] * HISTOGRAM_BUCKETS
        self.count: int = 0
        self.total: float = 0

    def observe(self, value: float) -> None:
        if value < 0:
            raise MetricsError(
                f"histogram {self.name} observed negative value {value}")
        index = min(int(value).bit_length(), HISTOGRAM_BUCKETS - 1)
        self.buckets[index] += 1
        self.count += 1
        self.total += value

    def quantile(self, q: float) -> float:
        """Upper bucket edge at quantile ``q`` in [0, 1]; 0 when empty."""
        if not 0 <= q <= 1:
            raise MetricsError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = max(1, int(q * self.count + 0.5))
        seen = 0
        for index, bucket in enumerate(self.buckets):
            seen += bucket
            if seen >= rank:
                return float(2 ** index - 1) if index else 0.0
        return float(2 ** (HISTOGRAM_BUCKETS - 1))  # pragma: no cover

    def sample_value(self) -> float:
        return self.count


_KIND_CLASSES = {cls.kind: cls
                 for cls in (Counter, Gauge, TimeWeightedGauge, Histogram)}


class _Polled:
    """A catalog metric whose value is read from a callable at sample
    time; presented as a Counter/Gauge series in the export."""

    __slots__ = ("metric", "fn")

    def __init__(self, metric: Metric, fn: Callable[[], float]):
        self.metric = metric
        self.fn = fn

    def sample_items(self) -> List[Tuple[Metric, float]]:
        return [(self.metric, self.fn())]


class _PolledMap:
    """A polled metric over a dynamic key set (e.g. CPU cost categories).

    ``fn`` returns a ``{key: value}`` mapping; each key becomes one
    series with ``key_label=key`` added to the base labels.  Keys are
    iterated sorted and child series are created on first sight, so the
    series set and order are deterministic for a seeded run.
    """

    __slots__ = ("owner", "name", "key_label", "base_labels", "fn",
                 "children")

    def __init__(self, owner: "MetricSet", name: str, key_label: str,
                 base_labels: Mapping[str, Any],
                 fn: Callable[[], Mapping[str, float]]):
        self.owner = owner
        self.name = name
        self.key_label = key_label
        self.base_labels = dict(base_labels)
        self.fn = fn
        self.children: Dict[str, Metric] = {}

    def sample_items(self) -> List[Tuple[Metric, float]]:
        snapshot = self.fn()
        items = []
        for key in sorted(snapshot):
            child = self.children.get(key)
            if child is None:
                labels = dict(self.base_labels)
                labels[self.key_label] = key
                child = self.owner._make(self.name, labels, polled=True)
                self.children[key] = child
            items.append((child, float(snapshot[key])))
        return items


class MetricSet:
    """All metrics of one simulator plus its sampling clock."""

    def __init__(self, sim, label: str, interval_ns: int):
        if interval_ns <= 0:
            raise MetricsError(
                f"sampling interval must be positive, got {interval_ns}")
        self.sim = sim
        self.label = label
        self.interval_ns = interval_ns
        self.rows: List[Tuple[int, Metric, float]] = []
        self._series: Dict[Tuple[str, LabelSet], Metric] = {}
        self._order: List[Any] = []  # instruments, _Polled, _PolledMap
        self._next_sample = interval_ns
        self.finalized_at: Optional[int] = None

    # -- registration -----------------------------------------------------

    def _make(self, name: str, labels: Mapping[str, Any],
              kind: Optional[str] = None, polled: bool = False) -> Metric:
        entry = METRICS.get(name)
        if entry is None:
            raise MetricsError(
                f"metric {name!r} is not in the documented catalog "
                "(repro/metrics/catalog.py); register and document it "
                "before emitting")
        cat_kind = entry[0]
        if kind is not None and kind != cat_kind:
            raise MetricsError(
                f"metric {name!r} is cataloged as {cat_kind!r}, "
                f"requested as {kind!r}")
        if polled and cat_kind not in ("counter", "gauge"):
            raise MetricsError(
                f"polled metrics must be counters or gauges; "
                f"{name!r} is a {cat_kind}")
        key = (name, _labelset(labels))
        existing = self._series.get(key)
        if existing is not None:
            return existing
        metric = _KIND_CLASSES[cat_kind](name, key[1], self.sim)
        self._series[key] = metric
        return metric

    def _instrument(self, name: str, kind: str,
                    labels: Mapping[str, Any]) -> Metric:
        metric = self._make(name, labels, kind=kind)
        if metric not in self._order:
            self._order.append(metric)
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._instrument(name, "counter", labels)  # type: ignore

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._instrument(name, "gauge", labels)  # type: ignore

    def timegauge(self, name: str, **labels: Any) -> TimeWeightedGauge:
        return self._instrument(name, "timegauge", labels)  # type: ignore

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._instrument(name, "histogram", labels)  # type: ignore

    def polled(self, name: str, fn: Callable[[], float],
               **labels: Any) -> None:
        """Register ``fn`` to be read at every sample instant."""
        self._order.append(_Polled(self._make(name, labels, polled=True), fn))

    def polled_map(self, name: str, key_label: str,
                   fn: Callable[[], Mapping[str, float]],
                   **labels: Any) -> None:
        """Register a keyed family of polled series (one per map key)."""
        entry = METRICS.get(name)
        if entry is None:
            raise MetricsError(
                f"metric {name!r} is not in the documented catalog "
                "(repro/metrics/catalog.py); register and document it "
                "before emitting")
        if entry[0] not in ("counter", "gauge"):
            raise MetricsError(
                f"polled metrics must be counters or gauges; "
                f"{name!r} is a {entry[0]}")
        self._order.append(_PolledMap(self, name, key_label, labels, fn))

    # -- sampling ---------------------------------------------------------

    def advance(self, now: int) -> None:
        """Record samples for every interval boundary crossed by ``now``.

        Called from ``Simulator.step()``; schedules nothing.
        """
        while self._next_sample <= now:
            tick = self._next_sample
            self._next_sample += self.interval_ns
            self._record(tick, force=False)

    def _record(self, tick: int, force: bool) -> None:
        rows = self.rows
        for entry in self._order:
            if isinstance(entry, Metric):
                items = ((entry, entry.sample_value()),)
            else:
                items = entry.sample_items()
            for metric, value in items:
                if metric._last_time == tick:
                    continue
                if not force and metric._last_value == value:
                    continue
                metric._last_time = tick
                metric._last_value = value
                rows.append((tick, metric, value))

    def finalize(self) -> None:
        """Close integrals and force one last sample at ``sim.now``."""
        if self.finalized_at is not None:
            return
        now = self.sim.now
        self.advance(now)
        for metric in self._series.values():
            metric._close(now)
        self._record(now, force=True)
        self.finalized_at = now

    # -- introspection ----------------------------------------------------

    def series(self) -> List[Metric]:
        """Every series created so far, in creation order."""
        return list(self._series.values())

    def get(self, name: str, **labels: Any) -> Optional[Metric]:
        return self._series.get((name, _labelset(labels)))
