"""The "sim-top" terminal report: per-resource peak/mean utilization.

:func:`render_top` aggregates every series of a
:class:`~repro.metrics.session.MetricsSession` (or a single
:class:`~repro.metrics.registry.MetricSet`) across simulators by
``(metric, labels)`` and renders one fixed-width table, sorted by
resource name — the after-run analogue of ``top`` for the simulated
machine.  Column meaning depends on the metric kind:

===========  =====================  ==========  ==========  =========
kind         mean                   peak        last        total
===========  =====================  ==========  ==========  =========
counter      rate (unit/s)          —           —           final sum
gauge        —                      max value   final value —
timegauge    time-weighted mean     max value   final value —
histogram    mean observation       max bucket  —           count
===========  =====================  ==========  ==========  =========

All numbers derive from simulated state only, so the rendering is
byte-deterministic for a seeded run (golden test:
``tests/test_metrics_report.py``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.metrics.catalog import METRICS
from repro.metrics.export import Sampleable, _sets, format_value
from repro.metrics.registry import (Counter, Gauge, Histogram, Metric,
                                    TimeWeightedGauge, format_labels)

_DASH = "-"


class _Agg:
    """One report row: a series merged across simulators."""

    def __init__(self, name: str, labels: str, kind: str, unit: str):
        self.name = name
        self.labels = labels
        self.kind = kind
        self.unit = unit
        self.total: float = 0          # counter sum / histogram count
        self.peak: float = 0
        self.last: float = 0
        self.integral: float = 0       # timegauge: sum of integrals
        self.lifetime: int = 0         # timegauge: sum of lifetimes (ns)
        self.duration: int = 0         # counter: sum of run durations (ns)
        self.hist_sum: float = 0
        self.hist_top: int = -1        # highest non-empty bucket index

    @property
    def resource(self) -> str:
        return f"{self.name}{{{self.labels}}}" if self.labels else self.name

    def absorb(self, metric: Metric, end: int) -> None:
        if isinstance(metric, Counter):
            self.total += metric.value
            self.duration += end
        elif isinstance(metric, TimeWeightedGauge):
            self.peak = max(self.peak, metric.peak)
            self.last = metric.value
            self.integral += metric.integral
            self.lifetime += max(0, end - metric._born)
        elif isinstance(metric, Gauge):
            self.peak = max(self.peak, metric.peak)
            self.last = metric.value
        elif isinstance(metric, Histogram):
            self.total += metric.count
            self.hist_sum += metric.total
            for index, bucket in enumerate(metric.buckets):
                if bucket:
                    self.hist_top = max(self.hist_top, index)

    # -- cell rendering ---------------------------------------------------

    def cells(self) -> Tuple[str, str, str, str, str, str]:
        mean = peak = last = total = _DASH
        if self.kind == "counter":
            total = format_value(self.total)
            if self.duration > 0:
                mean = format_value(
                    round(self.total * 1e9 / self.duration, 3)) + "/s"
        elif self.kind == "gauge":
            peak = format_value(self.peak)
            last = format_value(self.last)
        elif self.kind == "timegauge":
            peak = format_value(self.peak)
            last = format_value(self.last)
            if self.lifetime > 0:
                mean = format_value(round(self.integral / self.lifetime, 4))
        elif self.kind == "histogram":
            total = format_value(self.total)
            if self.total > 0:
                mean = format_value(round(self.hist_sum / self.total, 3))
            if self.hist_top >= 0:
                peak = format_value(2 ** self.hist_top - 1 if self.hist_top
                                    else 0)
        return (self.resource, self.kind, mean, peak, last, total)


def aggregate(source: Sampleable) -> List[_Agg]:
    """Merge all series across simulators; rows sorted by resource."""
    rows: Dict[Tuple[str, str], _Agg] = {}
    for metric_set in _sets(source):
        end = (metric_set.finalized_at if metric_set.finalized_at is not None
               else metric_set.sim.now)
        for metric in metric_set.series():
            key = (metric.name, format_labels(metric.labels))
            agg = rows.get(key)
            if agg is None:
                kind, unit, _ = METRICS[metric.name]
                agg = rows[key] = _Agg(metric.name, key[1], kind, unit)
            agg.absorb(metric, end)
    return [rows[key] for key in sorted(rows)]


_HEADER = ("resource", "kind", "mean", "peak", "last", "total")


def render_top(source: Sampleable, max_rows: Optional[int] = None) -> str:
    """Render the utilization table; ``max_rows`` truncates (with a
    trailing note) for terminal use."""
    sets = _sets(source)
    rows = aggregate(sets)
    sim_ns = sum(s.finalized_at if s.finalized_at is not None else s.sim.now
                 for s in sets)
    title = (f"sim-top — {len(sets)} sim{'s' if len(sets) != 1 else ''}, "
             f"{len(rows)} series, {sim_ns / 1e6:.3f} ms simulated")
    if not rows:
        return title + "\n(no metrics registered)"
    shown = rows if max_rows is None else rows[:max_rows]
    table = [_HEADER] + [agg.cells() for agg in shown]
    widths = [max(len(row[col]) for row in table)
              for col in range(len(_HEADER))]
    lines = [title]
    for index, row in enumerate(table):
        lines.append("  ".join(
            cell.ljust(widths[col]) if col == 0 else cell.rjust(widths[col])
            for col, cell in enumerate(row)).rstrip())
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    if len(shown) < len(rows):
        lines.append(f"... {len(rows) - len(shown)} more series "
                     "(pass max_rows=None for all)")
    return "\n".join(lines)
