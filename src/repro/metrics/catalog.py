"""The closed catalog of metric names.

Like the trace-event taxonomy (:mod:`repro.trace.events`), the metric
namespace is a documented contract: every name a component may register
appears here with its kind and unit, and every entry has a matching
``### `name` `` section in ``docs/metrics.md``.  Registering a metric
that is not in the catalog — or registering it with the wrong kind —
raises :class:`~repro.errors.MetricsError`; the docs and this table are
kept in lock-step by ``tests/test_metrics_docs.py``.

Kinds:

* ``counter`` — monotonically increasing total (bytes, operations).
* ``gauge`` — instantaneous level sampled as-is (bytes in use, a
  utilization fraction).
* ``timegauge`` — a gauge whose time integral is also maintained, so
  the report can show a true time-weighted mean (queue depths,
  occupancies, busy engines).
* ``histogram`` — value distribution over fixed log2 bucket edges
  (bucket ``i`` holds values ``v`` with ``int(v).bit_length() == i``),
  chosen so bucketing is exact integer arithmetic and therefore
  deterministic across platforms.

Label key conventions: ``node`` is the host/fabric name (``node0``),
``dev`` a device name on that fabric (``ssd``, ``nic``), ``engine`` is
``<node>:<port>`` for HDC Engine resources, ``owner`` identifies a
driver/controller instance, and ``dir``/``qid``/``channel``/``category``
qualify links, NVMe queues, NIC rings and CPU accounting categories.
"""

from __future__ import annotations

from typing import Dict, Tuple

# name -> (kind, unit, one-line description)
METRICS: Dict[str, Tuple[str, str, str]] = {
    # -- PCIe fabric -----------------------------------------------------
    "pcie.link.inflight_bytes": (
        "timegauge", "bytes",
        "Bytes submitted to one link direction and not yet serialized"),
    "pcie.port.tx_bytes": (
        "counter", "bytes",
        "Payload bytes a switch port has transmitted toward the fabric"),
    "pcie.port.rx_bytes": (
        "counter", "bytes",
        "Payload bytes a switch port has received from the fabric"),
    "pcie.port.doorbells": (
        "counter", "ops",
        "Doorbell MMIO writes delivered to the device behind a port"),
    # -- NVMe SSD --------------------------------------------------------
    "nvme.sq_depth": (
        "timegauge", "entries",
        "Submission-queue occupancy (tail minus head, modulo depth)"),
    "nvme.cq_depth": (
        "timegauge", "entries",
        "Completion-queue entries posted and not yet acknowledged"),
    "nvme.inflight": (
        "timegauge", "commands",
        "Commands fetched from the SQ and still executing in the SSD"),
    "nvme.commands": (
        "counter", "ops",
        "Commands the SSD has completed (CQE posted)"),
    "nvme.cqes_dropped": (
        "counter", "ops",
        "Completion entries lost to injected nvme.cqe_drop faults"),
    # -- NIC -------------------------------------------------------------
    "nic.tx_ring_occupancy": (
        "timegauge", "descriptors",
        "TX descriptors posted by the driver and not yet consumed"),
    "nic.rx_buffers": (
        "timegauge", "buffers",
        "Posted RX buffers currently available for incoming frames"),
    "nic.wire_tx_bytes": (
        "counter", "bytes",
        "Frame bytes the NIC has put on the Ethernet wire"),
    "nic.frames_lost": (
        "counter", "frames",
        "Frames lost to injected nic.wire_drop faults"),
    # -- GPU -------------------------------------------------------------
    "gpu.copy_busy": (
        "timegauge", "engines",
        "Copy engines currently executing a DMA transfer"),
    "gpu.exec_busy": (
        "timegauge", "engines",
        "Execution engines currently running a kernel"),
    # -- HDC Engine ------------------------------------------------------
    "engine.scoreboard_entries": (
        "timegauge", "entries",
        "Live scoreboard entries (admitted D2D tasks not yet retired)"),
    "engine.scoreboard_issued": (
        "counter", "entries",
        "Scoreboard entries issued to device controllers"),
    "engine.ddr3_bytes_in_use": (
        "gauge", "bytes",
        "DDR3 staging bytes held by the engine's chunk allocator"),
    "engine.bram_bytes_in_use": (
        "gauge", "bytes",
        "BRAM bytes consumed by the engine's bump allocator"),
    "engine.d2d_latency_ns": (
        "histogram", "ns",
        "Per-task D2D completion latency (admission to retirement)"),
    # -- Host CPU --------------------------------------------------------
    "host.cpu.busy_ns": (
        "counter", "ns",
        "Busy nanoseconds accounted per cost-model category"),
    "host.cpu.util": (
        "gauge", "fraction",
        "Pool busy fraction over the current measurement window"),
    "host.cpu.busy_cores": (
        "gauge", "cores",
        "Cores executing host work at the sample instant"),
    # -- Fault plane -----------------------------------------------------
    "faults.injected": (
        "counter", "ops",
        "Faults the installed FaultPlan has injected so far"),
    "faults.retries": (
        "counter", "ops",
        "Commands reissued by a driver/controller after a fault"),
    "faults.aborts": (
        "counter", "tasks",
        "D2D tasks the engine aborted after exhausting recovery"),
}

KINDS = ("counter", "gauge", "timegauge", "histogram")


def kind_of(name: str) -> str:
    """The registered kind for ``name`` (KeyError if uncataloged)."""
    return METRICS[name][0]


def metric_names() -> frozenset:
    """The closed set of registrable metric names.

    Machine-readable export consumed by tooling — in particular the
    ``PLANE001`` rule of :mod:`repro.lint`, which rejects metric-name
    string literals that are not in this catalog.
    """
    return frozenset(METRICS)
