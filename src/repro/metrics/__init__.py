"""The unified metrics plane: typed instruments, periodic sampling,
deterministic exports, and the "sim-top" utilization report.

Quickstart::

    from repro.metrics import MetricsSession, write_csv, render_top

    with MetricsSession(label="demo") as session:
        ...  # every Simulator built here registers + samples metrics
    write_csv("metrics.csv", session)
    print(render_top(session))

The metric-name catalog is a documented contract — ``docs/metrics.md``
— kept in lock-step with :mod:`repro.metrics.catalog` by
``tests/test_metrics_docs.py``.  Off by default and zero-overhead when
off (``Simulator.metrics is None``; no sampling events are ever
scheduled, enabled or not).
"""

from repro.metrics.catalog import KINDS, METRICS, kind_of, metric_names
from repro.metrics.export import (csv_lines, format_value, jsonl_lines,
                                  write_csv, write_jsonl)
from repro.metrics.registry import (Counter, Gauge, Histogram, Metric,
                                    MetricSet, TimeWeightedGauge,
                                    format_labels)
from repro.metrics.report import aggregate, render_top
from repro.metrics.session import (DEFAULT_INTERVAL_NS, MetricsSession,
                                   current_metrics_session, metrics_section,
                                   metrics_for_new_sim)

__all__ = [
    "METRICS", "KINDS", "kind_of", "metric_names",
    "Metric", "Counter", "Gauge", "TimeWeightedGauge", "Histogram",
    "MetricSet", "format_labels",
    "MetricsSession", "current_metrics_session", "metrics_for_new_sim",
    "metrics_section", "DEFAULT_INTERVAL_NS",
    "csv_lines", "write_csv", "jsonl_lines", "write_jsonl", "format_value",
    "aggregate", "render_top",
]
