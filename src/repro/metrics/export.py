"""Metric time-series exporters: deterministic CSV and flat JSONL.

Both formats carry the same rows — one per ``(sim, time, series)``
sample that survived change-compression — in the order they were
recorded (sims in creation order, rows in sample order), so exports are
byte-for-byte identical across runs of the same seed.

* **CSV** — header ``sim,time_ns,metric,labels,value``; ``labels`` is
  the canonical ``k=v;k2=v2`` rendering (sorted keys, never quoted),
  ``value`` prints integers without a decimal point and floats with
  ``%.9g``.
* **JSONL** — one JSON object per row with the same fields plus
  ``kind`` and ``unit`` from the catalog, sorted keys, compact
  separators.

Schema semantics are documented in ``docs/metrics.md``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, Iterator, List, Tuple, Union

from repro.metrics.catalog import METRICS
from repro.metrics.registry import Metric, MetricSet, format_labels
from repro.metrics.session import MetricsSession

Sampleable = Union[MetricSet, MetricsSession, Iterable[MetricSet]]

CSV_HEADER = "sim,time_ns,metric,labels,value"


def _sets(source: Sampleable) -> List[MetricSet]:
    if isinstance(source, MetricSet):
        return [source]
    if isinstance(source, MetricsSession):
        return list(source.sets)
    return list(source)


def format_value(value: float) -> str:
    """Integers without a decimal point, floats with ``%.9g``."""
    if isinstance(value, bool):  # pragma: no cover - never emitted
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return f"{value:.9g}"


def _rows(source: Sampleable) -> Iterator[Tuple[MetricSet, int, Metric, float]]:
    for metric_set in _sets(source):
        for tick, metric, value in metric_set.rows:
            yield metric_set, tick, metric, value


# -- CSV -------------------------------------------------------------------

def csv_lines(source: Sampleable) -> Iterator[str]:
    """Yield the header then one CSV line per recorded sample."""
    yield CSV_HEADER
    for metric_set, tick, metric, value in _rows(source):
        yield (f"{metric_set.label},{tick},{metric.name},"
               f"{format_labels(metric.labels)},{format_value(value)}")


def write_csv(path: str, source: Sampleable) -> int:
    """Write the CSV; returns the number of sample rows (excl. header)."""
    count = -1
    with open(path, "w", encoding="utf-8") as fh:
        for count, line in enumerate(csv_lines(source)):
            fh.write(line)
            fh.write("\n")
    return max(count, 0)


# -- JSONL -----------------------------------------------------------------

def sample_record(metric_set: MetricSet, tick: int, metric: Metric,
                  value: float) -> Dict[str, Any]:
    """The flat dict written per JSONL line (stable schema)."""
    kind, unit, _ = METRICS[metric.name]
    return {
        "sim": metric_set.label,
        "time_ns": tick,
        "metric": metric.name,
        "labels": dict(metric.labels),
        "kind": kind,
        "unit": unit,
        "value": value,
    }


def jsonl_lines(source: Sampleable) -> Iterator[str]:
    """Yield one canonical JSON line per recorded sample."""
    for metric_set, tick, metric, value in _rows(source):
        yield json.dumps(sample_record(metric_set, tick, metric, value),
                         sort_keys=True, separators=(",", ":"))


def write_jsonl(path: str, source: Sampleable) -> int:
    """Write the JSONL stream; returns the number of rows written."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for line in jsonl_lines(source):
            fh.write(line)
            fh.write("\n")
            count += 1
    return count
