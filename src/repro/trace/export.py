"""Trace exporters: Chrome trace-event JSON and flat JSONL.

* :func:`to_chrome` / :func:`write_chrome` — the Chrome trace-event
  format (``{"traceEvents": [...]}``), loadable in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``.  Spans become
  complete (``"ph": "X"``) events, instants ``"ph": "i"``; each
  simulator is a process (``pid``) and each track a named thread
  (``tid``).  Timestamps are microseconds (Chrome's unit); 1 simulated
  ns = 0.001 µs.
* :func:`jsonl_lines` / :func:`write_jsonl` — one JSON object per
  event with raw integer-ns timestamps and sorted keys.  This is the
  *canonical* form: deterministic byte-for-byte across runs of the same
  seed, and the input format of the critical-path summarizer's offline
  mode.

Field semantics of both formats are documented in ``docs/tracing.md``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, Iterator, List, Union

from repro.trace.tracer import TraceEvent, Tracer, TraceSession

Traceable = Union[Tracer, TraceSession, Iterable[Tracer]]


def _tracers(source: Traceable) -> List[Tracer]:
    if isinstance(source, Tracer):
        return [source]
    if isinstance(source, TraceSession):
        return list(source.tracers)
    return list(source)


# -- JSONL -----------------------------------------------------------------

def event_record(event: TraceEvent, pid: int, label: str) -> Dict[str, Any]:
    """The flat dict written per JSONL line (stable schema)."""
    return {
        "id": event.id,
        "parent_id": event.parent_id,
        "type": event.type,
        "name": event.name,
        "pid": pid,
        "sim": label,
        "track": event.track,
        "ts_ns": event.start,
        "dur_ns": event.duration,
        "args": event.args,
    }


def jsonl_lines(source: Traceable) -> Iterator[str]:
    """Yield one canonical JSON line per event, in (start, id) order."""
    for pid, tracer in enumerate(_tracers(source)):
        for event in tracer.sorted_events():
            yield json.dumps(event_record(event, pid, tracer.label),
                             sort_keys=True, separators=(",", ":"))


def write_jsonl(path: str, source: Traceable) -> int:
    """Write the JSONL stream; returns the number of events written."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for line in jsonl_lines(source):
            fh.write(line)
            fh.write("\n")
            count += 1
    return count


# -- Chrome trace-event JSON ------------------------------------------------

def to_chrome(source: Traceable) -> Dict[str, Any]:
    """Build the Chrome trace-event document for Perfetto."""
    out: List[Dict[str, Any]] = []
    for pid, tracer in enumerate(_tracers(source)):
        out.append({"ph": "M", "pid": pid, "tid": 0, "name": "process_name",
                    "args": {"name": tracer.label}})
        tids: Dict[str, int] = {}
        for event in tracer.sorted_events():
            tid = tids.get(event.track)
            if tid is None:
                tid = tids[event.track] = len(tids)
                out.append({"ph": "M", "pid": pid, "tid": tid,
                            "name": "thread_name",
                            "args": {"name": event.track}})
            args = dict(event.args)
            args["event_id"] = event.id
            if event.parent_id is not None:
                args["parent_id"] = event.parent_id
            record: Dict[str, Any] = {
                "pid": pid, "tid": tid, "name": event.name,
                "cat": event.type, "ts": event.start / 1000.0,
                "args": args,
            }
            if event.duration is None:
                record["ph"] = "i"
                record["s"] = "t"      # thread-scoped instant
            else:
                record["ph"] = "X"
                record["dur"] = event.duration / 1000.0
            out.append(record)
    return {"traceEvents": out, "displayTimeUnit": "ns"}


def write_chrome(path: str, source: Traceable) -> int:
    """Write the Chrome trace JSON; returns the number of trace events
    (metadata records excluded)."""
    document = to_chrome(source)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, sort_keys=True, separators=(",", ":"))
    return sum(1 for record in document["traceEvents"]
               if record["ph"] != "M")
