"""The event taxonomy: every type a tracer may emit, in one registry.

This module *is* the machine-readable half of the trace contract.  The
human-readable half lives in ``docs/tracing.md``; the two are kept in
lock-step by ``tests/test_trace_docs.py`` (the ``make docs-check``
target), which fails if either side drifts.

Rules:

* :class:`~repro.trace.tracer.Tracer` refuses to emit a type that is
  not registered here (:class:`~repro.errors.TraceError`), so an
  undocumented event can never appear in an exported trace;
* every entry must have a ``### `type``` section in ``docs/tracing.md``;
* types are dotted ``layer.action`` slugs.  Variable detail (which
  category, which queue, which opcode) goes into the event *name* and
  *args*, never into the type, so the taxonomy stays finite.
"""

from __future__ import annotations

from typing import Dict

# type -> one-line semantics (the docs carry the full field tables).
EVENT_TYPES: Dict[str, str] = {
    # -- simulation kernel -------------------------------------------------
    "proc.run": "lifetime of one simulation Process (generator)",
    # -- PCIe fabric -------------------------------------------------------
    "tlp.send": "TLP payload occupying link direction(s), queueing included",
    "dma.read": "bulk non-posted read through the switch (request+completion)",
    "dma.write": "bulk posted write through the switch",
    "doorbell.ring": "small posted register write (doorbell-class MMIO)",
    "mmio.read": "small non-posted register read round trip",
    "irq.deliver": "message-signalled interrupt delivery to the host",
    # -- NVMe SSD ----------------------------------------------------------
    "nvme.doorbell": "submission-queue tail doorbell observed by the SSD",
    "nvme.command": "one NVMe command: SQE decode to CQE posted",
    "nvme.cqe": "completion-queue entry written back by the SSD",
    # -- NIC ---------------------------------------------------------------
    "nic.doorbell": "send/receive ring doorbell observed by the NIC",
    "nic.tx": "one send descriptor: fetch, LSO segmentation, egress",
    "nic.rx": "one received frame: steer, buffer DMA, completion",
    # -- GPU ---------------------------------------------------------------
    "gpu.copy": "copy-engine transfer into or out of GPU memory",
    "gpu.exec": "kernel execution (launch overhead + streaming time)",
    # -- HDC Engine --------------------------------------------------------
    "engine.split": "D2D command split into scoreboard entries",
    "engine.stage": "one scoreboard stage executing on a device controller",
    # -- control-path phases (schemes / driver / host kernel) --------------
    "request": "root span of one scheme operation (send_file, ...)",
    "phase": "one latency-breakdown segment of a request (Fig 3a/11)",
    # -- fault injection & recovery ----------------------------------------
    "fault.inject": "a fault-plan rule fired at an injection site",
    "recover.retry": "a timed-out or failed command being re-issued",
    "recover.timeout": "a deadline expired before its completion arrived",
    "recover.abort": "a failed D2D task torn down (siblings cancelled)",
    # -- run structure -----------------------------------------------------
    "mark": "experiment-level annotation (section label, boundary)",
}


def is_registered(event_type: str) -> bool:
    """True if ``event_type`` is part of the documented contract."""
    return event_type in EVENT_TYPES


def event_type_names() -> frozenset:
    """The closed set of emittable event types.

    Machine-readable export consumed by tooling — in particular the
    ``PLANE002`` rule of :mod:`repro.lint`, which rejects event-type
    string literals that are not in this taxonomy.
    """
    return frozenset(EVENT_TYPES)
