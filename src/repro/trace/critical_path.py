"""Reconstruct per-request latency breakdowns directly from span events.

The simulator's classic numbers come from
:class:`~repro.analysis.breakdown.LatencyTrace` (per-request) and
:class:`~repro.sim.stats.BusyTracker` (per-window) aggregates.  This
module recomputes the same Fig 3a/11-style decomposition *from the
event stream alone*: each ``request`` root span groups the ``phase``
segments emitted under it, so the breakdown a reader sees in Perfetto
is provably the breakdown the experiment tables report
(``tests/test_trace.py`` asserts per-category agreement within 1 ns).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.trace.tracer import TraceEvent, Tracer


class RequestBreakdown:
    """The span-derived decomposition of one scheme operation."""

    def __init__(self, root: TraceEvent):
        self.root = root
        self.categories: Dict[str, int] = {}

    @property
    def name(self) -> str:
        return self.root.name

    @property
    def total_ns(self) -> int:
        return self.root.duration or 0

    @property
    def attributed_ns(self) -> int:
        return sum(self.categories.values())

    def category_ns(self, category: str) -> int:
        return self.categories.get(category, 0)

    def render(self) -> str:
        lines = [f"{self.name}: {self.total_ns / 1000:.2f} us total"]
        for category, dur in sorted(self.categories.items(),
                                    key=lambda kv: -kv[1]):
            share = dur / self.total_ns if self.total_ns else 0.0
            lines.append(f"  {category:<20} {dur / 1000:8.2f} us "
                         f"({share * 100:5.1f} %)")
        unattributed = self.total_ns - self.attributed_ns
        if unattributed > 0:
            lines.append(f"  {'(unattributed)':<20} "
                         f"{unattributed / 1000:8.2f} us")
        return "\n".join(lines)


def request_breakdowns(tracer: Tracer) -> List[RequestBreakdown]:
    """One :class:`RequestBreakdown` per ``request`` root span, in start
    order.  ``phase`` events attach to their root via ``parent_id``."""
    breakdowns: Dict[int, RequestBreakdown] = {}
    for event in tracer.sorted_events():
        if event.type == "request":
            breakdowns[event.id] = RequestBreakdown(event)
    for event in tracer.sorted_events():
        if event.type != "phase" or event.parent_id is None:
            continue
        breakdown = breakdowns.get(event.parent_id)
        if breakdown is None or event.duration is None:
            continue
        breakdown.categories[event.name] = (
            breakdown.categories.get(event.name, 0) + event.duration)
    return list(breakdowns.values())


def last_breakdown(tracer: Tracer) -> Optional[RequestBreakdown]:
    """The most recent request's breakdown (the usual steady-state
    measurement after warmups), or None if no request was traced."""
    found = request_breakdowns(tracer)
    return found[-1] if found else None
