"""Structured simulation tracing (spans, exporters, critical path).

See ``docs/tracing.md`` for the full event taxonomy and field
semantics — the trace schema is a documented contract, enforced by
``make docs-check``.
"""

from repro.trace.critical_path import (RequestBreakdown, last_breakdown,
                                       request_breakdowns)
from repro.trace.events import (EVENT_TYPES, event_type_names,
                                is_registered)
from repro.trace.export import (jsonl_lines, to_chrome, write_chrome,
                                write_jsonl)
from repro.trace.tracer import (Span, TraceEvent, Tracer, TraceSession,
                                current_session, trace_section,
                                tracer_for_new_sim)

__all__ = [
    "EVENT_TYPES", "is_registered", "event_type_names",
    "Span", "TraceEvent", "Tracer", "TraceSession",
    "current_session", "trace_section", "tracer_for_new_sim",
    "jsonl_lines", "to_chrome", "write_chrome", "write_jsonl",
    "RequestBreakdown", "request_breakdowns", "last_breakdown",
]
