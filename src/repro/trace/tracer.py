"""Structured simulation tracing: typed spans and instants with causality.

One :class:`Tracer` rides one :class:`~repro.sim.kernel.Simulator` and
records :class:`TraceEvent` objects on the *simulated* clock (integer
nanoseconds).  Tracing is **off by default and zero-overhead when off**:
``Simulator.tracer`` is ``None`` unless a :class:`TraceSession` is
installed, and every instrumentation site guards with a single
``is not None`` check.

Event types are a closed, documented set (:mod:`repro.trace.events` and
``docs/tracing.md``); emitting an unregistered type raises
:class:`~repro.errors.TraceError`.  Causality is explicit: a span or
instant may name a ``parent`` (another span/event), which exporters and
the critical-path summarizer use to group a request's events.

Determinism: event ids are per-tracer counters, timestamps are simulated
time, and no wall-clock or ``id()`` values are recorded — two runs of
the same seeded simulation produce byte-identical JSONL exports (see
``tests/test_trace_determinism.py``).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, List, Optional, Union

from repro.errors import TraceError
from repro.trace.events import EVENT_TYPES


class TraceEvent:
    """One recorded event.

    ``duration`` is ``None`` for instants; spans record the closed
    interval ``[start, start + duration]`` in simulated ns.
    """

    __slots__ = ("id", "parent_id", "type", "name", "track", "start",
                 "duration", "args")

    def __init__(self, event_id: int, event_type: str, track: str,
                 start: int, duration: Optional[int] = None,
                 name: Optional[str] = None,
                 parent_id: Optional[int] = None,
                 args: Optional[Dict[str, Any]] = None):
        self.id = event_id
        self.parent_id = parent_id
        self.type = event_type
        self.name = name if name is not None else event_type
        self.track = track
        self.start = start
        self.duration = duration
        self.args = args or {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        dur = "instant" if self.duration is None else f"dur={self.duration}"
        return (f"TraceEvent(#{self.id} {self.type} {self.name!r} "
                f"@{self.start} {dur})")


ParentLike = Union["Span", TraceEvent, int, None]


def _parent_id(parent: ParentLike) -> Optional[int]:
    if parent is None or isinstance(parent, int):
        return parent
    return parent.id


class Span:
    """An open span; :meth:`end` closes it and records the event."""

    __slots__ = ("_tracer", "id", "type", "name", "track", "start",
                 "parent_id", "args", "_ended")

    def __init__(self, tracer: "Tracer", span_id: int, event_type: str,
                 track: str, start: int, name: Optional[str],
                 parent_id: Optional[int], args: Dict[str, Any]):
        self._tracer = tracer
        self.id = span_id
        self.type = event_type
        self.name = name
        self.track = track
        self.start = start
        self.parent_id = parent_id
        self.args = args
        self._ended = False

    def end(self, **extra_args: Any) -> Optional[TraceEvent]:
        """Close the span at the current simulated time."""
        if self._ended:
            return None
        self._ended = True
        if extra_args:
            self.args.update(extra_args)
        return self._tracer._close(self)


class Tracer:
    """Collects events for one simulator (one ``pid`` in Chrome terms)."""

    enabled = True

    def __init__(self, sim, label: str = "sim"):
        self.sim = sim
        self.label = label
        self.events: List[TraceEvent] = []
        self._next_id = 1
        self._open: Dict[int, Span] = {}

    # -- emission ---------------------------------------------------------

    def _take_id(self, event_type: str) -> int:
        if event_type not in EVENT_TYPES:
            raise TraceError(
                f"event type {event_type!r} is not in the documented "
                "taxonomy (repro/trace/events.py); register and document "
                "it before emitting")
        event_id = self._next_id
        self._next_id += 1
        return event_id

    def begin(self, event_type: str, track: str, name: Optional[str] = None,
              parent: ParentLike = None, **args: Any) -> Span:
        """Open a span at the current simulated time."""
        span = Span(self, self._take_id(event_type), event_type, track,
                    self.sim.now, name, _parent_id(parent), args)
        self._open[span.id] = span
        return span

    def _close(self, span: Span) -> TraceEvent:
        self._open.pop(span.id, None)
        event = TraceEvent(span.id, span.type, span.track, span.start,
                           duration=self.sim.now - span.start,
                           name=span.name, parent_id=span.parent_id,
                           args=span.args)
        self.events.append(event)
        return event

    @contextmanager
    def span(self, event_type: str, track: str, name: Optional[str] = None,
             parent: ParentLike = None, **args: Any):
        """Span context manager; safe around ``yield``-ing simulation code
        (only the simulated clock is sampled)."""
        handle = self.begin(event_type, track, name=name, parent=parent,
                            **args)
        try:
            yield handle
        finally:
            handle.end()

    def instant(self, event_type: str, track: str,
                name: Optional[str] = None, parent: ParentLike = None,
                **args: Any) -> TraceEvent:
        """Record a zero-duration event at the current simulated time."""
        event = TraceEvent(self._take_id(event_type), event_type, track,
                           self.sim.now, duration=None, name=name,
                           parent_id=_parent_id(parent), args=args)
        self.events.append(event)
        return event

    def complete(self, event_type: str, track: str, start: int,
                 duration: int, name: Optional[str] = None,
                 parent: ParentLike = None, **args: Any) -> TraceEvent:
        """Record an already-finished span (after-the-fact attribution,
        e.g. the engine's per-stage profile)."""
        if duration < 0:
            raise TraceError(f"negative span duration: {duration}")
        event = TraceEvent(self._take_id(event_type), event_type, track,
                           start, duration=duration, name=name,
                           parent_id=_parent_id(parent), args=args)
        self.events.append(event)
        return event

    # -- lifecycle --------------------------------------------------------

    def finalize(self) -> None:
        """Close any still-open spans (device loops run forever); they are
        marked ``unterminated`` so consumers can tell."""
        for span in list(self._open.values()):
            span.end(unterminated=True)

    def sorted_events(self) -> List[TraceEvent]:
        """Events in (start, id) order — the canonical export order."""
        return sorted(self.events, key=lambda e: (e.start, e.id))


# ---------------------------------------------------------------------------
# Session management: one TraceSession covers a whole experiment run and
# hands a fresh Tracer to every Simulator constructed while installed.
# ---------------------------------------------------------------------------

_ACTIVE_SESSION: Optional["TraceSession"] = None


class TraceSession:
    """Collects the tracers of every simulator built while installed.

    Use as a context manager (preferred) or via
    :meth:`install`/:meth:`uninstall`::

        with TraceSession() as session:
            session.set_label("fig11")
            run_fig11()
        write_chrome("out.json", session)
    """

    def __init__(self, label: str = "run"):
        self.tracers: List[Tracer] = []
        self._label = label
        self._counter = 0

    # -- install ----------------------------------------------------------

    def install(self) -> "TraceSession":
        global _ACTIVE_SESSION
        if _ACTIVE_SESSION is not None and _ACTIVE_SESSION is not self:
            raise TraceError("another TraceSession is already installed")
        _ACTIVE_SESSION = self
        return self

    def uninstall(self) -> None:
        global _ACTIVE_SESSION
        if _ACTIVE_SESSION is self:
            _ACTIVE_SESSION = None

    def __enter__(self) -> "TraceSession":
        return self.install()

    def __exit__(self, *exc) -> None:
        self.uninstall()
        self.finalize()

    # -- labelling --------------------------------------------------------

    def set_label(self, label: str) -> str:
        """Label simulators created from now on; returns the old label."""
        previous, self._label = self._label, label
        return previous

    # -- tracer factory ---------------------------------------------------

    def tracer_for(self, sim) -> Tracer:
        tracer = Tracer(sim, label=f"{self._label}/sim{self._counter}")
        self._counter += 1
        self.tracers.append(tracer)
        return tracer

    def finalize(self) -> None:
        for tracer in self.tracers:
            tracer.finalize()

    def all_events(self) -> List[TraceEvent]:
        return [event for tracer in self.tracers for event in tracer.events]


def current_session() -> Optional[TraceSession]:
    """The installed session, or None (tracing off)."""
    return _ACTIVE_SESSION


def tracer_for_new_sim(sim) -> Optional[Tracer]:
    """Called by ``Simulator.__init__``: a tracer when a session is
    installed, else ``None`` (the zero-overhead default)."""
    if _ACTIVE_SESSION is None:
        return None
    return _ACTIVE_SESSION.tracer_for(sim)


@contextmanager
def trace_section(label: str):
    """Label every simulator built inside the block — the hook the
    experiment runners use.  Labels both observability planes (an
    installed TraceSession *and* an installed
    :class:`repro.metrics.MetricsSession`), and is a no-op when neither
    is installed."""
    from repro.metrics.session import current_metrics_session
    session = current_session()
    metrics_session = current_metrics_session()
    if session is None and metrics_session is None:
        yield
        return
    previous = session.set_label(label) if session is not None else None
    previous_metrics = (metrics_session.set_label(label)
                        if metrics_session is not None else None)
    try:
        yield
    finally:
        if session is not None:
            session.set_label(previous)
        if metrics_session is not None:
            metrics_session.set_label(previous_metrics)
