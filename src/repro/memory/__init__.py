"""Memory substrate: byte-backed regions, DRAM timing, chunk allocation.

Every addressable byte in the simulated server lives in a
:class:`MemoryRegion` — host DRAM, the HDC Engine's BRAM queue pairs and
its 1 GB DDR3 intermediate buffers, NVMe controller registers, NIC
descriptor rings.  Regions are *functional*: data written is data read,
so checksums computed by NDP units are checksums of the real bytes that
flowed through the fabric.
"""

from repro.memory.region import MemoryRegion, SparseBytes
from repro.memory.dram import DramTiming, FPGA_DDR3, HOST_DDR4
from repro.memory.allocator import ChunkAllocator

__all__ = [
    "ChunkAllocator",
    "DramTiming",
    "FPGA_DDR3",
    "HOST_DDR4",
    "MemoryRegion",
    "SparseBytes",
]
