"""Fixed-size chunk allocator.

The HDC Engine manages its 1 GB DDR3 as fixed 64 KB blocks for
intermediate buffers and NIC receive buffers (paper §IV-C: "the
intermediate buffers and packet recv buffers are chunked into multiple
fixed-size blocks (64KB)").  This allocator reproduces that scheme and
is also reused for host page-cache pages.
"""

from __future__ import annotations

from typing import List

from repro.errors import AllocationError


class ChunkAllocator:
    """Allocates fixed-size chunks out of an address window."""

    def __init__(self, base: int, size: int, chunk_size: int):
        if chunk_size <= 0:
            raise AllocationError(f"chunk size must be positive: {chunk_size}")
        if size < chunk_size:
            raise AllocationError(
                f"window of {size} bytes cannot hold one {chunk_size}-byte chunk")
        self.base = base
        self.chunk_size = chunk_size
        self.total_chunks = size // chunk_size
        # Free list kept sorted so allocation is deterministic and
        # contiguous runs can be found.
        self._free: List[int] = list(range(self.total_chunks))
        self._allocated: set[int] = set()

    @property
    def free_chunks(self) -> int:
        """Number of chunks currently free."""
        return len(self._free)

    @property
    def allocated_chunks(self) -> int:
        """Number of chunks currently allocated."""
        return len(self._allocated)

    def alloc(self) -> int:
        """Allocate one chunk; returns its base address."""
        if not self._free:
            raise AllocationError("out of chunks")
        index = self._free.pop(0)
        self._allocated.add(index)
        return self.base + index * self.chunk_size

    def alloc_contiguous(self, count: int) -> int:
        """Allocate ``count`` physically contiguous chunks.

        Needed when a transfer larger than one chunk must land in
        contiguous space (e.g. gathering split packets for an SSD write).
        Returns the base address of the run.
        """
        if count <= 0:
            raise AllocationError(f"count must be positive: {count}")
        run_start = 0
        run_len = 0
        for pos, index in enumerate(self._free):
            if run_len and index == self._free[pos - 1] + 1:
                run_len += 1
            else:
                run_start, run_len = pos, 1
            if run_len == count:
                indices = self._free[run_start:run_start + count]
                del self._free[run_start:run_start + count]
                self._allocated.update(indices)
                return self.base + indices[0] * self.chunk_size
        raise AllocationError(
            f"no contiguous run of {count} chunks "
            f"({len(self._free)} free, fragmented)")

    def free(self, addr: int, count: int = 1) -> None:
        """Free ``count`` chunks starting at ``addr``."""
        offset = addr - self.base
        if offset % self.chunk_size != 0:
            raise AllocationError(f"{hex(addr)} is not chunk-aligned")
        first = offset // self.chunk_size
        for index in range(first, first + count):
            if index not in self._allocated:
                raise AllocationError(
                    f"double free or bad address: chunk {index}")
            self._allocated.remove(index)
            # Insert keeping the free list sorted.
            self._insort(index)

    def _insort(self, index: int) -> None:
        lo, hi = 0, len(self._free)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._free[mid] < index:
                lo = mid + 1
            else:
                hi = mid
        self._free.insert(lo, index)

    def chunks_for(self, size: int) -> int:
        """How many chunks a transfer of ``size`` bytes needs."""
        if size <= 0:
            raise AllocationError(f"size must be positive: {size}")
        return -(-size // self.chunk_size)
