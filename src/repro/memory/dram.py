"""DRAM timing models for host memory and the engine's on-board DDR3.

These constants feed two costs:

* CPU memcpy work in the host software model (indirect data copies in
  the host-centric baseline);
* NDP units streaming through the HDC Engine's intermediate buffers
  (the VC707 carries 1 GB of DDR3-1600, §IV-C of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import Rate, gibps, nsec


@dataclass(frozen=True)
class DramTiming:
    """Bandwidth/latency pair for a memory technology."""

    name: str
    bandwidth: Rate
    access_latency: int  # ns for the first beat

    def duration(self, size: int) -> int:
        """Time (ns) to stream ``size`` bytes, including first-beat latency."""
        return self.access_latency + self.bandwidth.duration(size)


# Host: dual-channel DDR4-2133-class memory on the Xeon E5-2630 v3 host.
HOST_DDR4 = DramTiming("host-ddr4", bandwidth=gibps(25.0),
                       access_latency=nsec(90))

# VC707 on-board SODIMM: single-channel DDR3-1600 (PC3-12800, ~12.8 GB/s
# peak; ~80 % achievable through the MIG controller).
FPGA_DDR3 = DramTiming("fpga-ddr3", bandwidth=gibps(10.0),
                       access_latency=nsec(120))
