"""Byte-backed memory regions and sparse backing storage."""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.errors import AddressError


class SparseBytes:
    """A lazily allocated, zero-filled byte store.

    Large simulated memories (a 400 GB flash array, 1 GB of FPGA DDR3)
    would be absurd to allocate eagerly; this class stores only the
    pages actually touched.
    """

    PAGE = 4096

    def __init__(self, size: int):
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        self.size = size
        self._pages: Dict[int, bytearray] = {}

    def _check(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > self.size:
            raise AddressError(
                f"access [{offset}, {offset + length}) outside store of "
                f"size {self.size}")

    def read(self, offset: int, length: int) -> bytes:
        """Read ``length`` bytes at ``offset`` (zeroes if never written)."""
        self._check(offset, length)
        out = bytearray(length)
        pos = 0
        while pos < length:
            page_no, page_off = divmod(offset + pos, self.PAGE)
            take = min(self.PAGE - page_off, length - pos)
            page = self._pages.get(page_no)
            if page is not None:
                out[pos:pos + take] = page[page_off:page_off + take]
            pos += take
        return bytes(out)

    def write(self, offset: int, data: bytes) -> None:
        """Write ``data`` at ``offset``."""
        self._check(offset, len(data))
        pos = 0
        while pos < len(data):
            page_no, page_off = divmod(offset + pos, self.PAGE)
            take = min(self.PAGE - page_off, len(data) - pos)
            page = self._pages.get(page_no)
            if page is None:
                page = bytearray(self.PAGE)
                self._pages[page_no] = page
            page[page_off:page_off + take] = data[pos:pos + take]
            pos += take

    @property
    def resident_bytes(self) -> int:
        """Bytes of real memory currently backing the store."""
        return len(self._pages) * self.PAGE


MmioWriteHook = Callable[[int, bytes], None]
MmioReadHook = Callable[[int, int], bytes]


class MemoryRegion:
    """A contiguous window of the simulated physical address space.

    A region belongs to exactly one fabric *port* (the device whose
    memory it is); the PCIe layer uses that to route DMA.  Regions may
    be plain storage (DRAM, BRAM) or MMIO register windows: setting
    :attr:`on_mmio_write` turns writes into device callbacks (doorbells).
    """

    def __init__(self, name: str, base: int, size: int, port: str,
                 sparse: bool = False, access_latency: int = 0):
        if base < 0 or size <= 0:
            raise AddressError(f"bad region geometry: base={base} size={size}")
        self.name = name
        self.base = base
        self.size = size
        self.port = port
        # First-access latency behind the target's port: DRAM row access
        # and (for host memory) root-complex traversal.  On-chip BRAM
        # windows keep the default 0.
        self.access_latency = access_latency
        self._backing = SparseBytes(size) if sparse else bytearray(size)
        self._sparse = sparse
        self.on_mmio_write: Optional[MmioWriteHook] = None
        self.on_mmio_read: Optional[MmioReadHook] = None

    @property
    def end(self) -> int:
        """One past the last address of the region."""
        return self.base + self.size

    def contains(self, addr: int, length: int = 1) -> bool:
        """True if [addr, addr+length) falls inside the region."""
        return self.base <= addr and addr + length <= self.end

    def _offset(self, addr: int, length: int) -> int:
        if not self.contains(addr, length):
            raise AddressError(
                f"access [{hex(addr)}, {hex(addr + length)}) outside region "
                f"{self.name} [{hex(self.base)}, {hex(self.end)})")
        return addr - self.base

    def read(self, addr: int, length: int) -> bytes:
        """Functional read of ``length`` bytes at absolute address ``addr``."""
        off = self._offset(addr, length)
        if self.on_mmio_read is not None:
            return self.on_mmio_read(off, length)
        if self._sparse:
            return self._backing.read(off, length)
        return bytes(self._backing[off:off + length])

    def write(self, addr: int, data: bytes) -> None:
        """Functional write of ``data`` at absolute address ``addr``.

        MMIO hooks fire *instead of* storing when installed — register
        windows have device semantics, not memory semantics.
        """
        off = self._offset(addr, len(data))
        if self.on_mmio_write is not None:
            self.on_mmio_write(off, bytes(data))
            return
        if self._sparse:
            self._backing.write(off, data)
        else:
            self._backing[off:off + len(data)] = data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MemoryRegion({self.name!r}, base={hex(self.base)}, "
                f"size={self.size}, port={self.port!r})")
