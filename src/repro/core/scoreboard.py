"""The scoreboard: dependency-driven scheduling of device commands.

Reproduces the paper's Figure 6 machinery: fetched D2D commands are
split into device-command entries; the scoreboard "monitors current
states of all fetched device commands and dynamically schedules them",
issuing an entry to its device controller when (a) its dependencies
are done and (b) the target controller has a free slot, and delaying
it (``wait``) otherwise.  When every entry of a D2D command is done,
its unique id goes to the completion queue — in request order, as the
prototype does ("for the simple implementation, HDC Engine issues D2D
commands in a requested order and notifies HDC Driver of their
completions in the same order"); the out-of-order mode exists for the
ablation study.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.command import (D2DCompletion, D2DStatus, DeviceCommand,
                                EntryState)
from repro.errors import ConfigurationError, DeviceError, DeviceTimeout
from repro.sim.kernel import Simulator
from repro.sim.resources import Store
from repro.units import nsec

# One scheduling decision: a handful of FSM cycles at the engine clock.
SCOREBOARD_DECISION = nsec(50)


class Executor:
    """Protocol for controller/NDP backends the scoreboard issues to.

    ``slots`` is the number of entries the backend can run at once;
    ``execute(entry)`` is a process returning the entry's result bytes
    (or None).
    """

    slots: int = 1

    def execute(self, entry: DeviceCommand):  # pragma: no cover - protocol
        raise NotImplementedError


class _Task:
    """One admitted D2D command and its entries."""

    def __init__(self, d2d_id: int, entries: List[DeviceCommand],
                 finalize: Callable[["_Task"], D2DCompletion],
                 abort: Optional[Callable[["_Task"], None]] = None):
        self.d2d_id = d2d_id
        self.entries = entries
        self.finalize = finalize
        self.abort = abort
        self.failed: Optional[BaseException] = None
        self.abort_requested = False

    def done(self) -> bool:
        return all(e.state == EntryState.DONE for e in self.entries)

    def settled(self) -> bool:
        """Every entry has left the pipeline (done or cancelled)."""
        return all(e.state in (EntryState.DONE, EntryState.CANCELLED)
                   for e in self.entries)

    def status(self) -> D2DStatus:
        """The completion status a failed/aborted task reports."""
        if self.abort_requested:
            return D2DStatus.ABORTED
        if isinstance(self.failed, DeviceTimeout):
            return D2DStatus.TIMEOUT
        if isinstance(self.failed, ConfigurationError):
            return D2DStatus.BAD_COMMAND
        return D2DStatus.DEVICE_ERROR


class Scoreboard:
    """Entry storage + the scheduling FSM."""

    def __init__(self, sim: Simulator, capacity_entries: int = 256,
                 in_order_completion: bool = True, owner: str = "engine"):
        self.sim = sim
        self.capacity_entries = capacity_entries
        self.in_order_completion = in_order_completion
        self.owner = owner
        self._executors: Dict[str, Executor] = {}
        self._busy: Dict[str, int] = {}
        self._tasks: List[_Task] = []       # admission order
        self._wake = sim.event()
        self.completions: Store = Store(sim)
        self.entries_issued = 0
        self.decisions = 0
        metrics = sim.metrics
        if metrics is None:
            self._m_entries = None
        else:
            self._m_entries = metrics.timegauge("engine.scoreboard_entries",
                                                engine=owner)
            metrics.polled("engine.scoreboard_issued",
                           lambda: self.entries_issued, engine=owner)
        sim.process(self._scheduler())

    # -- configuration -----------------------------------------------------

    def register_executor(self, dev: str, executor: Executor) -> None:
        """Attach the backend that runs entries targeting ``dev``."""
        if dev in self._executors:
            raise ConfigurationError(f"executor {dev!r} already registered")
        self._executors[dev] = executor
        self._busy[dev] = 0

    # -- admission -----------------------------------------------------------

    def live_entries(self) -> int:
        return sum(len(t.entries) for t in self._tasks)

    def admit(self, d2d_id: int, entries: List[DeviceCommand],
              finalize: Callable[[object], D2DCompletion],
              abort: Optional[Callable[[object], None]] = None):
        """Process: store a split D2D command (waits while full).

        ``finalize`` builds the task's completion record once all its
        entries are done (it sees the entries' results).  ``abort``
        runs instead of ``finalize`` when the task fails or is
        cancelled — its job is to release whatever the planner
        allocated (intermediate buffers, bookkeeping).
        """
        if not entries:
            raise ConfigurationError("a D2D command needs at least one entry")
        for entry in entries:
            entry.d2d_id = d2d_id
            if entry.dev not in self._executors:
                raise ConfigurationError(
                    f"no executor registered for device {entry.dev!r}")
        while self.live_entries() + len(entries) > self.capacity_entries:
            yield self._wake
        self._tasks.append(_Task(d2d_id, entries, finalize, abort))
        if self._m_entries is not None:
            self._m_entries.set(self.live_entries())
        self._kick()

    def abort(self, d2d_id: int, reason: str = "aborted by request") -> bool:
        """Cancel a live task: not-yet-issued entries never run, and the
        completion posts with :data:`D2DStatus.ABORTED`.  Entries that
        are already executing finish first (a device command cannot be
        recalled mid-DMA).  Returns False if the id is not live."""
        for task in self._tasks:
            if task.d2d_id != d2d_id:
                continue
            if task.failed is None:
                task.failed = DeviceError(reason)
                task.abort_requested = True
                self._kick()
            return True
        return False

    # -- scheduling ------------------------------------------------------------

    def _kick(self) -> None:
        wake, self._wake = self._wake, self.sim.event()
        wake.succeed()

    def _pick(self):
        """The first WAIT entry whose deps are done and controller free.

        Entries of a task that already failed are cancelled on sight —
        a dependent stage must never run against a failed producer's
        buffer.
        """
        cancelled = False
        for task in self._tasks:
            if task.failed is not None:
                for entry in task.entries:
                    if entry.state == EntryState.WAIT:
                        entry.state = EntryState.CANCELLED
                        entry.done_at = self.sim.now
                        entry.issued_at = self.sim.now
                        cancelled = True
                continue
            for entry in task.entries:
                if entry.state != EntryState.WAIT:
                    continue
                if not entry.deps_done():
                    continue
                executor = self._executors[entry.dev]
                if self._busy[entry.dev] >= executor.slots:
                    continue
                return task, entry, executor
        if cancelled:
            self._drain_completions()
        return None

    def _scheduler(self):
        while True:
            picked = self._pick()
            if picked is None:
                yield self._wake
                continue
            task, entry, executor = picked
            # ready -> issue: reserve the controller slot, pay the
            # scheduling FSM, hand the entry over.
            entry.state = EntryState.ISSUE
            self._busy[entry.dev] += 1
            yield self.sim.timeout(SCOREBOARD_DECISION)
            self.decisions += 1
            self.entries_issued += 1
            self.sim.process(self._run_entry(task, entry, executor))

    def _run_entry(self, task: _Task, entry: DeviceCommand,
                   executor: Executor):
        entry.issued_at = self.sim.now
        try:
            result = yield self.sim.process(executor.execute(entry))
            entry.result = result
        except (DeviceError, ConfigurationError) as exc:
            if task.failed is None:
                task.failed = exc
        finally:
            entry.state = EntryState.DONE
            entry.done_at = self.sim.now
            self._busy[entry.dev] -= 1
            if entry.after is not None:
                entry.after()
        yield self.sim.timeout(SCOREBOARD_DECISION)  # state write-back
        self.decisions += 1
        self._drain_completions()
        self._kick()

    def _drain_completions(self) -> None:
        """Move finished tasks to the completion queue.

        In-order mode releases a task only once every earlier-admitted
        task has been released (the prototype's behaviour).
        """
        while self._tasks:
            if self.in_order_completion:
                candidates = self._tasks[:1]
            else:
                candidates = [t for t in self._tasks if t.settled()][:1]
            if not candidates or not candidates[0].settled():
                return
            task = candidates[0]
            self._tasks.remove(task)
            if self._m_entries is not None:
                self._m_entries.set(self.live_entries())
            if task.failed is not None:
                status = task.status()
                tracer = self.sim.tracer
                if tracer is not None:
                    tracer.instant(
                        "recover.abort", track="faults",
                        name=f"abort d2d#{task.d2d_id} {status.name}",
                        d2d_id=task.d2d_id, status=int(status),
                        reason=str(task.failed),
                        cancelled=sum(1 for e in task.entries
                                      if e.state == EntryState.CANCELLED))
                if task.abort is not None:
                    task.abort(task)
                completion = D2DCompletion(d2d_id=task.d2d_id,
                                           status=int(status))
            else:
                completion = task.finalize(task)
            self.completions.put(completion)
