"""DCS-ctrl: the paper's contribution.

* :mod:`repro.core.engine` — **HDC Engine**, the FPGA device
  orchestrator: host interface (64-entry command queue, parser,
  interrupt generator), scoreboard, standard device controllers for the
  NVMe SSD and the 10-GbE NIC, NDP units, and the 1 GB DDR3
  intermediate-buffer manager;
* :mod:`repro.core.driver` — **HDC Driver**, the thin kernel module:
  metadata lookup (extents, connections, page-cache consistency),
  D2D command submission, interrupt handling;
* :mod:`repro.core.library` — **HDC Library**, the sendfile-like user
  API.
"""

from repro.core.command import (D2DCommand, D2DCompletion, D2DKind,
                                DeviceCommand, EntryState)
from repro.core.engine import HDCEngine
from repro.core.driver import HdcDriver
from repro.core.library import HdcLibrary
from repro.core.ndp.registry import FUNC_NAMES, func_id, func_name
from repro.core.scoreboard import Scoreboard

__all__ = [
    "D2DCommand",
    "D2DCompletion",
    "D2DKind",
    "DeviceCommand",
    "EntryState",
    "FUNC_NAMES",
    "HDCEngine",
    "HdcDriver",
    "HdcLibrary",
    "Scoreboard",
    "func_id",
    "func_name",
]
