"""HDC Driver: the thin kernel module between applications and engine.

Paper §IV-B: the driver "interacts with the existing kernel file system
and TCP/IP network stacks to find necessary metadata such as block
addresses and TCP/IP connection information", "generates and forwards
D2D commands, and handles interrupts from HDC Engine" — and, for
consistency, "identifies the address of latest data by interacting
with the kernel virtual file system (VFS)" before bypassing the page
cache.

CPU accounting: everything the driver does lands in
:data:`CAT.HDC_DRIVER` except completion handling (IRQ + wakeup), which
stays in :data:`CAT.COMPLETION` so Fig 11's components line up.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.analysis.breakdown import NULL_TRACE
from repro.core.command import (COMPLETION_SIZE, D2DCommand, D2DCompletion,
                                D2DKind, D2DStatus, D2D_COMMAND_SIZE,
                                FLAG_APPEND_DIGEST)
from repro.core.engine import HDCEngine
from repro.core.host_interface import COMMAND_QUEUE_DEPTH
from repro.core.ndp.registry import FUNC_NONE, func_id
from repro.devices.nvme.commands import LBA_SIZE
from repro.errors import ConfigurationError, DeviceError, DeviceTimeout
from repro.faults import D2D_WATCHDOG_POLICY, active_faults, watchdog
from repro.host.costs import CAT
from repro.host.machine import Host
from repro.net.tcp import TcpFlow
from repro.units import KIB, PAGE


class HdcDriver:
    """Host-resident control of one HDC Engine."""

    def __init__(self, host: Host, engine: HDCEngine,
                 completion_ring_addr: int):
        self.sim = host.sim
        self.host = host
        self.engine = engine
        self.completion_ring_addr = completion_ring_addr
        self._next_d2d_id = 1
        self._cmd_tail = 0
        self._cpl_head = 0
        self._completed = 0
        self._written: set[int] = set()
        self._announced = 0
        self._waiters: Dict[int, object] = {}
        self._flow_ids: Dict[int, int] = {}  # flow.uid -> engine flow id
        # Flow-control waiters parked on a full command queue, woken by
        # the completion path (no busy-polling).
        self._slot_waiters: list = []
        # D2D ids whose watchdog expired; a late completion for one is
        # discarded without double-releasing its queue slot.
        self._abandoned: set[int] = set()
        self.late_completions = 0
        self.watchdog_policy = D2D_WATCHDOG_POLICY
        host.irq.register(engine.port, vector=0, handler=self._on_irq)

    # -- construction ---------------------------------------------------------

    @classmethod
    def install(cls, host: Host,
                ndp_functions: Optional[list[str]] = None,
                in_order_completion: bool = True,
                nvme_rings_in_host: bool = False,
                bulk_transfer: bool = True,
                ndp_target_gbps: float = 10.0
                ) -> Tuple["HdcDriver", HDCEngine]:
        """Create an engine on ``host``'s fabric and bind a driver to it.

        ``nvme_rings_in_host`` and ``bulk_transfer`` are ablation hooks
        (DESIGN.md §5): queue pairs in host DRAM instead of engine BRAM,
        and single-block/one-packet commands instead of PRP-list + LSO
        bulk transfers.
        """
        ring = host.control.take(COMPLETION_SIZE * COMMAND_QUEUE_DEPTH,
                                 align=4096)
        rings_addr = (host.control.take(128 * KIB, align=4096)
                      if nvme_rings_in_host else None)
        engine = HDCEngine(host.sim, host.fabric, host.ssds, host.nic,
                           completion_ring_addr=ring,
                           ndp_functions=ndp_functions,
                           in_order_completion=in_order_completion,
                           nvme_rings_addr=rings_addr,
                           bulk_transfer=bulk_transfer,
                           ndp_target_gbps=ndp_target_gbps)
        return cls(host, engine, ring), engine

    def start(self):
        """Process: arm the engine's NIC receive path."""
        return self.engine.start()

    # -- connection offload ------------------------------------------------------

    def register_flow(self, flow: TcpFlow) -> int:
        """Offload a connection's data path to the engine."""
        flow_id = self.engine.register_flow(flow)
        self._flow_ids[flow.uid] = flow_id
        return flow_id

    def flow_id(self, flow: TcpFlow) -> int:
        try:
            return self._flow_ids[flow.uid]
        except KeyError:
            raise ConfigurationError(
                "flow not offloaded to the engine") from None

    # -- metadata -------------------------------------------------------------------

    def _file_slba(self, name: str, offset: int, size: int, trace):
        """Process: resolve a file range to (volume, contiguous SLBA).

        Includes the page-cache consistency probe: dirty pages covering
        the range are flushed through the host NVMe driver first so the
        engine reads the latest data (paper §IV-B).
        """
        costs = self.host.costs
        with trace.span(CAT.HDC_DRIVER):
            # Extent + connection metadata through the VFS, with the
            # dentry/extent results cached across requests (the driver
            # keeps per-fd state, §IV-A).
            yield from self.host.cpu.run(costs.hdc_metadata, CAT.HDC_DRIVER)
        volume = self.host.fs.volume_of(name)
        extents = self.host.fs.extents_for(name, offset, size)
        if len(extents) != 1:
            raise DeviceError(
                "HDC commands need one contiguous extent; got "
                f"{len(extents)}")
        first_page = offset // PAGE
        npages = -(-size // PAGE)
        dirty = self.host.page_cache.dirty_pages(name, first_page, npages)
        for page_index in dirty:
            data = self.host.page_cache.dirty_data(name, page_index)
            buf = self.host.alloc_buffer(PAGE)
            self.host.fabric.address_map.write(buf, data)
            page_extents = self.host.fs.extents_for(name, page_index * PAGE,
                                                    PAGE)
            yield from self.host.nvme_drivers[volume].write(
                page_extents[0].slba, PAGE, buf, trace)
            self.host.page_cache.mark_clean(name, page_index)
            self.host.free_buffer(buf, PAGE)
        return volume, extents[0].slba

    # -- submission --------------------------------------------------------------------

    def submit(self, kind: D2DKind, src: int, dst: int, length: int,
               func: str = "none", append_digest: bool = False,
               aux: int = 0, trace=NULL_TRACE):
        """Process: build, submit and await one D2D command.

        Returns the :class:`D2DCompletion`; merges the engine's stage
        profile into ``trace``.
        """
        costs = self.host.costs
        # Flow control: at most depth-1 commands in flight.  Full-queue
        # submitters park on an event the completion path triggers —
        # no polling quantum, no wasted heap churn at depth.
        while (self._cmd_tail - self._completed
               >= COMMAND_QUEUE_DEPTH - 1):
            gate = self.sim.event()
            self._slot_waiters.append(gate)
            yield gate
        d2d_id = self._next_d2d_id
        self._next_d2d_id += 1
        # Reserve the command slot *before* any yield — concurrent
        # ioctls must not race on the tail.
        slot_index = self._cmd_tail
        self._cmd_tail += 1
        fid = func_id(func) if func != "none" else FUNC_NONE
        flags = FLAG_APPEND_DIGEST if append_digest else 0
        command = D2DCommand(d2d_id=d2d_id, kind=kind, src=src, dst=dst,
                             length=length, func=fid, flags=flags, aux=aux)
        with trace.span(CAT.HDC_DRIVER):
            yield from self.host.cpu.run(costs.hdc_build_command,
                                         CAT.HDC_DRIVER)
            # Write the 64-byte command into the engine's BRAM queue,
            # then ring the doorbell (posted writes; PCIe preserves
            # their order from one root port).
            slot = self.engine.host_interface.command_slot_addr(slot_index)
            yield from self.host.fabric.mmio_write("host", slot,
                                                   command.pack())
            self._written.add(slot_index)
            # Announce only the contiguous frontier of written slots:
            # a doorbell must never cover a slot a concurrent ioctl has
            # reserved but not yet written.
            while self._announced in self._written:
                self._written.remove(self._announced)
                self._announced += 1
            yield from self.host.cpu.run(costs.hdc_submit, CAT.HDC_DRIVER)
            yield from self.host.fabric.mmio_write(
                "host", self.engine.host_interface.doorbell_addr,
                (self._announced & 0xFFFFFFFF).to_bytes(4, "little"))
        waiter = self.sim.event()
        self._waiters[d2d_id] = waiter
        submit_done = self.sim.now
        # Watchdog (armed only when faults are injectable): a lost
        # MSI/completion surfaces as DeviceTimeout instead of
        # deadlocking sim.run() forever.
        if active_faults(self.sim) is not None:
            watchdog(self.sim, waiter,
                     self.watchdog_policy.deadline_for(length),
                     f"D2D command {d2d_id}", d2d_id=d2d_id)
        try:
            completion, irq_at = yield waiter
        except DeviceTimeout:
            # Abandon the command: release its queue slot exactly once
            # (a late completion for it is discarded, not re-counted).
            self._waiters.pop(d2d_id, None)
            self._abandoned.add(d2d_id)
            self._completed += 1
            self._release_slots()
            self.engine.task_stats.pop(d2d_id, {})
            raise
        # Attribute the engine window using its stage profile.
        stats = self.engine.task_stats.pop(d2d_id, {})
        profiled = sum(stats.values())
        window = irq_at - submit_done
        for category, duration in stats.items():
            trace.add(category, duration)
        trace.add(CAT.SCOREBOARD, max(0, window - profiled))
        trace.add(CAT.COMPLETION, self.sim.now - irq_at)
        with trace.span(CAT.COMPLETION):
            # Directed wakeup of the blocked ioctl caller.
            yield from self.host.cpu.run(costs.wakeup_blocked,
                                         CAT.COMPLETION)
        if not completion.ok:
            raise DeviceError(
                f"D2D command {d2d_id} failed with status "
                f"{D2DStatus.describe(completion.status)}")
        return completion

    # -- completion path ----------------------------------------------------------------

    def _release_slots(self) -> None:
        """Wake every submitter parked on a full command queue."""
        if self._slot_waiters:
            waiters, self._slot_waiters = self._slot_waiters, []
            for gate in waiters:
                gate.succeed()

    def _on_irq(self) -> None:
        self.sim.process(self._irq_handler(self.sim.now))

    def _irq_handler(self, irq_at: int):
        costs = self.host.costs
        yield from self.host.cpu.run(
            costs.interrupt_entry + costs.hdc_complete, CAT.COMPLETION)
        while True:
            slot = self._cpl_head % COMMAND_QUEUE_DEPTH
            addr = self.completion_ring_addr + slot * COMPLETION_SIZE
            raw = self.host.fabric.address_map.read(addr, COMPLETION_SIZE)
            completion = D2DCompletion.unpack(raw)
            if completion.d2d_id == 0:
                break
            self.host.fabric.address_map.write(addr, bytes(COMPLETION_SIZE))
            self._cpl_head += 1
            if completion.d2d_id in self._abandoned:
                # The watchdog already gave up on this command and
                # released its slot; swallow the straggler.
                self._abandoned.discard(completion.d2d_id)
                self.late_completions += 1
                continue
            self._completed += 1
            self._release_slots()
            waiter = self._waiters.pop(completion.d2d_id, None)
            if waiter is None or waiter.triggered:
                self.late_completions += 1
                continue
            waiter.succeed((completion, irq_at))

    # -- high-level operations -------------------------------------------------------------

    def sendfile(self, name: str, offset: int, size: int, flow: TcpFlow,
                 func: str = "none", append_digest: bool = False,
                 trace=NULL_TRACE):
        """Process: SSD→(NDP)→NIC, the paper's flagship D2D path."""
        volume, slba = yield from self._file_slba(name, offset, size, trace)
        return (yield from self.submit(
            D2DKind.SSD_TO_NIC, src=slba, dst=self.flow_id(flow),
            length=size, func=func, append_digest=append_digest,
            aux=volume, trace=trace))

    def recvfile(self, flow: TcpFlow, name: str, offset: int, size: int,
                 func: str = "none", trace=NULL_TRACE):
        """Process: NIC→(NDP)→SSD (e.g. Swift PUT, HDFS receive)."""
        volume, slba = yield from self._file_slba(name, offset, size, trace)
        return (yield from self.submit(
            D2DKind.NIC_TO_SSD, src=self.flow_id(flow), dst=slba,
            length=size, func=func, aux=volume << 8, trace=trace))

    def read_to_host(self, name: str, offset: int, size: int,
                     host_addr: int, func: str = "none", trace=NULL_TRACE):
        """Process: SSD→(NDP)→host DRAM."""
        volume, slba = yield from self._file_slba(name, offset, size, trace)
        return (yield from self.submit(
            D2DKind.SSD_TO_HOST, src=slba, dst=host_addr, length=size,
            func=func, aux=volume, trace=trace))

    def send_from_host(self, host_addr: int, size: int, flow: TcpFlow,
                       func: str = "none", append_digest: bool = False,
                       trace=NULL_TRACE):
        """Process: host DRAM→(NDP)→NIC."""
        return (yield from self.submit(
            D2DKind.HOST_TO_NIC, src=host_addr, dst=self.flow_id(flow),
            length=size, func=func, append_digest=append_digest,
            trace=trace))

    def recv_to_host(self, flow: TcpFlow, size: int, host_addr: int,
                     func: str = "none", trace=NULL_TRACE):
        """Process: NIC→(NDP)→host DRAM."""
        return (yield from self.submit(
            D2DKind.NIC_TO_HOST, src=self.flow_id(flow), dst=host_addr,
            length=size, func=func, trace=trace))

    def copyfile(self, src_name: str, src_offset: int, dst_name: str,
                 dst_offset: int, size: int, func: str = "none",
                 trace=NULL_TRACE):
        """Process: SSD→(NDP)→SSD — a local D2D copy (or transform:
        encrypt/compress at rest), possibly across volumes, that never
        touches the host."""
        src_vol, src_slba = yield from self._file_slba(src_name, src_offset,
                                                       size, trace)
        dst_vol, dst_slba = yield from self._file_slba(dst_name, dst_offset,
                                                       size, trace)
        return (yield from self.submit(
            D2DKind.SSD_TO_SSD, src=src_slba, dst=dst_slba, length=size,
            func=func, aux=src_vol | (dst_vol << 8), trace=trace))
