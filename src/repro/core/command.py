"""D2D command and scoreboard-entry structures.

A *D2D command* is what HDC Driver writes into the engine's command
queue: one multi-device task ("read these blocks, run MD5, send on this
connection").  The scoreboard splits it into *device commands* — one
per device operation — whose fields mirror the paper's Figure 6 entry
layout: ``dev``, ``r/w``, ``src``, ``dst``, ``aux``, ``state``.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import ProtocolError

D2D_COMMAND_SIZE = 64
COMPLETION_SIZE = 64


class D2DKind(enum.IntEnum):
    """The multi-device task shapes the prototype supports."""

    SSD_TO_NIC = 1        # read blocks, (optionally NDP), transmit
    NIC_TO_SSD = 2        # receive stream, (optionally NDP), write blocks
    SSD_TO_HOST = 3       # read blocks, (optionally NDP), DMA to host DRAM
    HOST_TO_NIC = 4       # DMA from host DRAM, (optionally NDP), transmit
    NIC_TO_HOST = 5       # receive stream, (optionally NDP), DMA to host
    SSD_TO_SSD = 6        # read blocks, (optionally NDP), write blocks —
                          # local D2D copy/transform, no host involvement


class EntryState(enum.IntEnum):
    """Scoreboard entry lifecycle (paper Fig 6)."""

    WAIT = 0      # dependencies incomplete or controller busy
    READY = 1     # eligible for issue
    ISSUE = 2     # running on a device controller / NDP unit
    DONE = 3
    CANCELLED = 4  # never issued: a sibling entry failed first


class D2DStatus(enum.IntEnum):
    """Named D2D completion status codes.

    Values are wire-compatible with the historical literals (2 =
    device error, 3 = bad command); anything the driver does not
    recognise renders through :meth:`describe`.
    """

    OK = 0
    DEVICE_ERROR = 2   # a device stage failed (media error, bad state)
    BAD_COMMAND = 3    # the command never made a valid plan
    TIMEOUT = 4        # a stage's deadline expired (lost completion)
    ABORTED = 5        # explicitly cancelled before it could finish

    @classmethod
    def describe(cls, status: int) -> str:
        try:
            return f"{cls(status).name}({status})"
        except ValueError:
            return f"status {status}"


_CMD_FMT = "<IBBBBQQIQ"   # id, kind, func, flags, rsvd, src, dst, length, aux
_CMD_PAD = D2D_COMMAND_SIZE - struct.calcsize(_CMD_FMT)

FLAG_APPEND_DIGEST = 0x01  # transmit the NDP digest after the payload


@dataclass(frozen=True)
class D2DCommand:
    """One user-requested multi-device task.

    ``src``/``dst`` are kind-dependent: an SLBA for SSD endpoints, a
    flow id for NIC endpoints, a physical address for host endpoints.
    ``aux`` carries function-specific auxiliary data (paper §III-B),
    e.g. the digest return slot or an AES nonce handle.
    """

    d2d_id: int
    kind: D2DKind
    src: int
    dst: int
    length: int
    func: int = 0          # NDP function id; 0 = none
    flags: int = 0
    aux: int = 0

    def pack(self) -> bytes:
        if self.length <= 0:
            raise ProtocolError(f"D2D length must be positive: {self.length}")
        return struct.pack(_CMD_FMT, self.d2d_id, int(self.kind), self.func,
                           self.flags, 0, self.src, self.dst, self.length,
                           self.aux) + bytes(_CMD_PAD)

    @classmethod
    def unpack(cls, data: bytes) -> "D2DCommand":
        if len(data) != D2D_COMMAND_SIZE:
            raise ProtocolError(
                f"D2D command must be {D2D_COMMAND_SIZE} bytes, "
                f"got {len(data)}")
        d2d_id, kind, func, flags, _rsvd, src, dst, length, aux = (
            struct.unpack(_CMD_FMT, data[:struct.calcsize(_CMD_FMT)]))
        return cls(d2d_id=d2d_id, kind=D2DKind(kind), src=src, dst=dst,
                   length=length, func=func, flags=flags, aux=aux)


_CPL_FMT = "<IHH32sQ16x"  # id, status, digest_len, digest, result_length


@dataclass(frozen=True)
class D2DCompletion:
    """The record the engine DMA-writes to the host completion ring."""

    d2d_id: int
    status: int
    digest: bytes = b""
    result_length: int = 0

    @property
    def ok(self) -> bool:
        return self.status == 0

    def pack(self) -> bytes:
        if len(self.digest) > 32:
            raise ProtocolError("completion digest field holds 32 bytes max")
        return struct.pack(_CPL_FMT, self.d2d_id, self.status,
                           len(self.digest), self.digest.ljust(32, b"\x00"),
                           self.result_length)

    @classmethod
    def unpack(cls, data: bytes) -> "D2DCompletion":
        if len(data) != COMPLETION_SIZE:
            raise ProtocolError(
                f"completion must be {COMPLETION_SIZE} bytes, got {len(data)}")
        d2d_id, status, digest_len, digest, result_length = struct.unpack(
            _CPL_FMT, data)
        return cls(d2d_id=d2d_id, status=status,
                   digest=digest[:digest_len], result_length=result_length)


@dataclass
class DeviceCommand:
    """One scoreboard entry: a single device (or NDP) operation.

    Field names follow the paper's Figure 6.  ``dev`` names the target
    controller ("nvme", "nic", "ndp", "dma"); ``rw`` is the direction
    from the device's perspective; ``src``/``dst`` are addresses or
    flow ids; ``aux`` carries operation extras (function id, append
    flag).  ``depends_on`` is the intra-task dependency the scheduler
    honours (e.g. the NIC send waits for the NVMe read).
    """

    dev: str
    rw: str
    src: int
    dst: int
    length: int
    aux: int = 0
    state: EntryState = EntryState.WAIT
    depends_on: Optional["DeviceCommand"] = None
    d2d_id: int = 0
    result: Optional[object] = field(default=None, repr=False)
    # Hardware fix-up run the cycle the entry completes, before any
    # dependent issues (e.g. patch a send length after GZIP).
    after: Optional[Callable[[], None]] = field(default=None, repr=False)
    # Execution window, recorded by the scoreboard (profiling).
    issued_at: int = -1
    done_at: int = -1

    def deps_done(self) -> bool:
        return self.depends_on is None or self.depends_on.state == EntryState.DONE
