"""The engine's host interface (paper §IV-C).

"The host interface includes the 64-entry command queue (4KB) and the
command parser to receive D2D commands from HDC Driver and deliver them
to the scoreboard.  When HDC Engine finds that all user-requested D2D
commands are completed, it interrupts HDC Driver through the interrupt
generator."

Mechanics: HDC Driver writes 64-byte commands into the BRAM-resident
command queue and rings a doorbell; the parser process decodes each
command and hands it to the engine's dispatcher.  Completions flow the
other way: the engine DMA-writes 32-byte completion records into a
host-DRAM ring and raises an MSI.
"""

from __future__ import annotations

from typing import Callable

from repro.core.command import (COMPLETION_SIZE, D2DCommand,
                                D2D_COMMAND_SIZE, D2DCompletion)
from repro.errors import DeviceError, ProtocolError
from repro.memory.region import MemoryRegion
from repro.sim.kernel import Simulator
from repro.sim.resources import Store
from repro.units import nsec

COMMAND_QUEUE_DEPTH = 64
DOORBELL_OFFSET = 0x0
COMMAND_QUEUE_OFFSET = 0x100

# Command parse: a few cycles of a 200 MHz decoder FSM.
PARSE_TIME = nsec(60)


class HostInterface:
    """Command queue + parser + interrupt generator."""

    def __init__(self, sim: Simulator, bar: MemoryRegion,
                 completion_ring_addr: int, engine_port: str,
                 fabric, on_command: Callable[[D2DCommand], None]):
        self.sim = sim
        self.bar = bar
        self.fabric = fabric
        self.engine_port = engine_port
        self.completion_ring_addr = completion_ring_addr
        self.on_command = on_command
        self._head = 0          # next command slot the parser will read
        self._tail = 0          # latest doorbell value
        self._wake = sim.event()
        self._cpl_tail = 0
        self.commands_received = 0
        self.interrupts_raised = 0
        self.interrupts_lost = 0
        bar.on_mmio_write = self._on_bar_write
        self.outbox: Store = Store(sim)   # completions awaiting delivery
        sim.process(self._parser())
        sim.process(self._interrupt_generator())

    # -- host-facing side --------------------------------------------------------

    def command_slot_addr(self, tail: int) -> int:
        """BRAM address of command slot ``tail % depth``."""
        return (self.bar.base + COMMAND_QUEUE_OFFSET
                + (tail % COMMAND_QUEUE_DEPTH) * D2D_COMMAND_SIZE)

    @property
    def doorbell_addr(self) -> int:
        return self.bar.base + DOORBELL_OFFSET

    def slots_free(self) -> int:
        return COMMAND_QUEUE_DEPTH - (self._tail - self._head)

    # -- BAR dispatch ----------------------------------------------------------

    def _on_bar_write(self, offset: int, data: bytes) -> None:
        if offset == DOORBELL_OFFSET:
            value = int.from_bytes(data[:4], "little")
            tail = (self._tail & ~0xFFFFFFFF) | value
            if tail < self._tail:
                if self._tail - tail > (1 << 31):
                    tail += 1 << 32   # genuine 32-bit wrap
                else:
                    return            # stale/duplicate announcement
            if tail - self._head > COMMAND_QUEUE_DEPTH:
                raise ProtocolError("command queue overrun")
            self._tail = tail
            wake, self._wake = self._wake, self.sim.event()
            wake.succeed()
        elif offset >= COMMAND_QUEUE_OFFSET:
            # Command bytes landing in queue BRAM: plain storage.
            self.bar._backing[offset:offset + len(data)] = data
        # other offsets: configuration registers, ignored

    # -- parser ------------------------------------------------------------------

    def _parser(self):
        while True:
            if self._head == self._tail:
                yield self._wake
                continue
            slot_addr = self.command_slot_addr(self._head)
            self._head += 1
            yield self.sim.timeout(PARSE_TIME)
            raw = self.bar.read(slot_addr, D2D_COMMAND_SIZE)
            command = D2DCommand.unpack(raw)
            self.commands_received += 1
            self.on_command(command)

    # -- interrupt generator -------------------------------------------------------

    def post_completion(self, completion: D2DCompletion) -> None:
        """Queue a completion for delivery to the host."""
        self.outbox.put(completion)

    def _interrupt_generator(self):
        while True:
            completion = yield self.outbox.get()
            slot = self._cpl_tail % COMMAND_QUEUE_DEPTH
            addr = self.completion_ring_addr + slot * COMPLETION_SIZE
            self._cpl_tail += 1
            try:
                yield from self.fabric.dma_write(self.engine_port, addr,
                                                 completion.pack())
                yield from self.fabric.msi(self.engine_port, vector=0)
            except DeviceError:
                # Completion record or MSI lost to a link fault: the
                # driver's D2D watchdog surfaces it as a timeout rather
                # than the generator process dying.
                self.interrupts_lost += 1
                continue
            self.interrupts_raised += 1
