"""The engine's host-DMA mover.

Used by D2D kinds with a host-memory endpoint (SSD→host, host→NIC,
NIC→host): a simple DMA engine that streams between engine DDR3 and
host DRAM over the fabric, in bounded bursts so long moves don't
monopolize the engine's link.
"""

from __future__ import annotations

from repro.core.command import DeviceCommand
from repro.core.scoreboard import Executor
from repro.errors import DeviceError
from repro.pcie.switch import Fabric
from repro.sim.kernel import Simulator
from repro.units import KIB, nsec

BURST = 32 * KIB
SETUP = nsec(120)  # descriptor load per burst


class EngineDmaController(Executor):
    """Engine-initiated bulk DMA between DDR3 and host DRAM."""

    slots = 2

    def __init__(self, sim: Simulator, fabric: Fabric, engine_port: str):
        self.sim = sim
        self.fabric = fabric
        self.engine_port = engine_port
        self.bytes_moved = 0

    def execute(self, entry: DeviceCommand):
        """Process: move ``entry.length`` bytes from ``src`` to ``dst``."""
        if entry.length <= 0:
            raise DeviceError(f"DMA length must be positive: {entry.length}")
        moved = 0
        while moved < entry.length:
            burst = min(BURST, entry.length - moved)
            yield self.sim.timeout(SETUP)
            data = yield from self.fabric.dma_read(
                self.engine_port, entry.src + moved, burst)
            yield from self.fabric.dma_write(
                self.engine_port, entry.dst + moved, data)
            moved += burst
        self.bytes_moved += entry.length
        return None
