"""The engine's 10-GbE NIC controller (paper Fig 7b).

Transmit: "the NIC controller generates TCP/IP packet headers and
stores them in the header buffer.  It also builds NIC commands, puts
them in a send queue, and rings the registers allocated in the network
device."  Receive: "it parses the received packet headers and messages
to identify a target connection and destination location", and the
packet-gathering logic "removes the packet headers and put the split
data into the continuous memory space" (§IV-C).

Mechanics here: send/recv rings live in engine BRAM; receive uses the
NIC's header-split into BRAM header slots + DDR3 staging slots; a pump
FSM (woken by the NIC's status-block writes into watchable BRAM)
parses headers, tracks per-connection sequence state, and gathers
payloads into the destination buffers of pending scoreboard entries.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict

from repro.core.buffers import EngineBuffers
from repro.core.command import DeviceCommand
from repro.core.controllers.bram import WatchableBram
from repro.core.scoreboard import Executor
from repro.devices.nic.descriptors import RecvDescriptor, SendDescriptor
from repro.devices.nic.nic import Nic
from repro.errors import DeviceError, DeviceTimeout, ProtocolError
from repro.faults import (ENGINE_NIC_RECV_POLICY, ENGINE_NIC_SEND_POLICY,
                          active_faults, watchdog)
from repro.memory.dram import FPGA_DDR3
from repro.net.headers import EthernetHeader, Ipv4Header, TcpHeader
from repro.net.packet import Frame, HEADER_LEN, TCP_MSS
from repro.net.tcp import FlowTable, TcpFlow
from repro.pcie.switch import Fabric
from repro.sim.kernel import Simulator
from repro.sim.resources import Resource
from repro.units import KIB, nsec

HEADER_GEN = nsec(100)     # TCP/IP header generation FSM, per batch
HEADER_PARSE = nsec(120)   # header parse + flow lookup, per frame
RING_DEPTH = 256
RECV_SLOT = 2 * KIB        # per-frame payload staging slot in DDR3
MAX_LSO = 64 * KIB


@dataclass
class _PendingRecv:
    """One scoreboard receive entry being gathered."""

    target: int
    length: int
    copied: int = 0
    waiter: object = None


@dataclass
class _FlowState:
    flow: TcpFlow
    flow_id: int
    header_slot: int
    send_lock: object = None   # per-flow Resource: sends serialize
    pending: Deque[_PendingRecv] = field(default_factory=deque)
    backlog: bytearray = field(default_factory=bytearray)
    bytes_sent: int = 0
    bytes_received: int = 0


class EngineNicController(Executor):
    """FPGA hardware that drives one off-the-shelf NIC."""

    slots = 4

    def __init__(self, sim: Simulator, fabric: Fabric, nic: Nic,
                 engine_port: str, buffers: EngineBuffers,
                 bram: WatchableBram, tx_ring_addr: int, tx_status_addr: int,
                 rx_desc_addr: int, rx_cmpl_addr: int, rx_status_addr: int,
                 rx_hdr_area: int, tx_hdr_area: int,
                 max_batch: int = MAX_LSO):
        self.sim = sim
        # Bulk-transfer ablation: MAX_LSO uses large-send offload
        # (§IV-C); TCP_MSS means one descriptor per packet.
        self.max_batch = max_batch
        self.fabric = fabric
        self.engine_port = engine_port
        self.buffers = buffers
        self.nic = nic
        self.send_ring = nic.configure_tx(tx_ring_addr, RING_DEPTH,
                                          tx_status_addr, interrupt=False)
        self.recv_ring = nic.configure_rx(rx_desc_addr, rx_cmpl_addr,
                                          RING_DEPTH, rx_status_addr,
                                          interrupt=False)
        self._rx_hdr_area = rx_hdr_area
        self._tx_hdr_area = tx_hdr_area
        self._tx_hdr_cursor = 0
        self._flows_by_id: Dict[int, _FlowState] = {}
        self._flow_table = FlowTable()
        self._flow_state_of: Dict[int, _FlowState] = {}  # flow.uid -> state
        self._next_flow_id = 1
        self._tx_waiters: Dict[int, object] = {}   # send index -> Event
        # desc ring slot -> (payload staging addr, header slot addr)
        self._desc_slot_addr: Dict[int, tuple[int, int]] = {}
        self._slot_pool: list[int] = []
        self._hdr_pool: list[int] = [rx_hdr_area + i * 64
                                     for i in range(RING_DEPTH)]
        self._rx_pump_busy = False
        self.frames_gathered = 0
        self.frames_discarded = 0
        # Deadlines for the send-status and receive-gather waits; only
        # armed while a fault plan is active.
        self.send_policy = ENGINE_NIC_SEND_POLICY
        self.recv_policy = ENGINE_NIC_RECV_POLICY
        # Hardware wake-ups: NIC status writes hit watchable BRAM.
        bram.watch(tx_status_addr, 4, self._on_tx_status)
        bram.watch(rx_status_addr, 4, self._on_rx_status)
        self._tx_wake = sim.event()

    # -- bring-up ------------------------------------------------------------

    def start(self):
        """Process: carve staging slots and arm the receive ring."""
        for _ in range(RING_DEPTH // (64 * KIB // RECV_SLOT) + 1):
            chunk = self.buffers.take_recv_chunk()
            for off in range(0, 64 * KIB, RECV_SLOT):
                self._slot_pool.append(chunk + off)
        for _ in range(RING_DEPTH - 1):
            self._post_recv_slot()
        yield from self.recv_ring.ring(self.engine_port)

    def _post_recv_slot(self) -> None:
        slot = self._slot_pool.pop()
        hdr_slot = self._hdr_pool.pop()
        index = self.recv_ring.post(RecvDescriptor(
            payload_addr=slot, buf_len=RECV_SLOT, hdr_addr=hdr_slot))
        self._desc_slot_addr[index % RING_DEPTH] = (slot, hdr_slot)

    # -- connection offload ---------------------------------------------------

    def register_flow(self, flow: TcpFlow) -> int:
        """Offload an established connection; returns its flow id.

        Also programs the NIC's flow-steering table so the connection's
        inbound frames land on the engine's RX channel, not the host's.
        """
        self.nic.steer_flow(flow.remote.ip, flow.remote.port,
                            flow.local.port, self.recv_ring.channel)
        flow_id = self._next_flow_id
        self._next_flow_id += 1
        state = _FlowState(flow=flow, flow_id=flow_id,
                           header_slot=self._tx_hdr_area
                           + (flow_id % 64) * 64,
                           send_lock=Resource(self.sim, capacity=1))
        self._flows_by_id[flow_id] = state
        self._flow_table.add(flow)
        self._flow_state_of[flow.uid] = state
        return flow_id

    def _state_for(self, flow_id: int) -> _FlowState:
        state = self._flows_by_id.get(flow_id)
        if state is None:
            raise DeviceError(f"unknown engine flow id {flow_id}")
        return state

    # -- executor interface ------------------------------------------------------

    def execute(self, entry: DeviceCommand):
        """Process: run one transmit ("w") or receive ("r") entry."""
        if entry.rw == "w":
            return (yield from self._do_send(entry))
        if entry.rw == "r":
            return (yield from self._do_recv(entry))
        raise DeviceError(f"bad NIC entry direction {entry.rw!r}")

    # -- transmit path -------------------------------------------------------------

    # Outstanding descriptors per send entry: enough to keep the NIC's
    # fetch engine busy across the doorbell/status round trips.
    SEND_WINDOW = 4

    def _do_send(self, entry: DeviceCommand):
        state = self._state_for(entry.dst)
        # Sends on one connection serialize (TCP stream order), but the
        # batches *within* a send pipeline through a small descriptor
        # window.  Each in-flight descriptor owns a rotating header
        # slot, so templates are never overwritten before fetch.
        with state.send_lock.request() as lock:
            yield lock
            sent = 0
            inflight = deque()
            while sent < entry.length or inflight:
                if sent < entry.length and len(inflight) < self.SEND_WINDOW:
                    batch = min(self.max_batch, entry.length - sent)
                    yield self.sim.timeout(HEADER_GEN)
                    header = self._build_header(state, batch)
                    hdr_slot = self._next_tx_hdr_slot()
                    self.fabric.address_map.write(hdr_slot, header)
                    index = self.send_ring.push(SendDescriptor(
                        hdr_addr=hdr_slot, hdr_len=HEADER_LEN,
                        payload_addr=entry.src + sent, payload_len=batch,
                        lso=True, mss=TCP_MSS))
                    yield from self.send_ring.ring(self.engine_port)
                    waiter = self.sim.event()
                    self._tx_waiters[index] = waiter
                    # The status write may have landed while the doorbell
                    # ring was in flight — re-check before parking.
                    if (index < self.send_ring.consumer_index()
                            and index in self._tx_waiters):
                        self._tx_waiters.pop(index).succeed()
                    inflight.append(waiter)
                    sent += batch
                    state.bytes_sent += batch
                else:
                    waiter = inflight.popleft()
                    if active_faults(self.sim) is not None:
                        watchdog(self.sim, waiter,
                                 self.send_policy.deadline_for(entry.length),
                                 f"NIC send flow {entry.dst}",
                                 flow_id=entry.dst)
                    try:
                        yield waiter
                    except DeviceTimeout:
                        # Drop bookkeeping for every descriptor of this
                        # send; a late status write must not fire them.
                        for index, parked in list(self._tx_waiters.items()):
                            if parked is waiter or parked in inflight:
                                self._tx_waiters.pop(index)
                        raise
        return None

    def _next_tx_hdr_slot(self) -> int:
        """Rotate through the 64 BRAM header slots.

        Bounded in-flight count (slots x window) stays far below 64, so
        a slot is always consumed before reuse.
        """
        slot = self._tx_hdr_area + self._tx_hdr_cursor * 64
        self._tx_hdr_cursor = (self._tx_hdr_cursor + 1) % 64
        return slot

    def _build_header(self, state: _FlowState, payload_len: int) -> bytes:
        flow = state.flow
        header = (flow.eth_header().pack()
                  + Ipv4Header(src_ip=flow.local.ip, dst_ip=flow.remote.ip,
                               total_length=40).pack()
                  + flow.next_header(payload_len).pack(
                      flow.local.ip, flow.remote.ip, b""))
        assert len(header) == HEADER_LEN
        return header

    def _on_tx_status(self) -> None:
        consumed = self.send_ring.consumer_index()
        ready = [i for i in self._tx_waiters if i < consumed]
        for index in ready:
            waiter = self._tx_waiters.pop(index)
            if not waiter.triggered:
                waiter.succeed()

    # -- receive path ----------------------------------------------------------------

    def _do_recv(self, entry: DeviceCommand):
        state = self._state_for(entry.src)
        pending = _PendingRecv(target=entry.dst, length=entry.length,
                               waiter=self.sim.event())
        state.pending.append(pending)
        # Drain any backlog that arrived before this entry was issued.
        yield from self._drain_backlog(state)
        if active_faults(self.sim) is not None:
            watchdog(self.sim, pending.waiter,
                     self.recv_policy.deadline_for(entry.length),
                     f"NIC recv flow {entry.src}", flow_id=entry.src,
                     length=entry.length)
        try:
            yield pending.waiter
        except DeviceTimeout:
            # Stop gathering into a buffer the scoreboard will reclaim.
            if pending in state.pending:
                state.pending.remove(pending)
            raise
        state.bytes_received += entry.length
        return None

    def _on_rx_status(self) -> None:
        if self._rx_pump_busy:
            return
        self._rx_pump_busy = True
        self.sim.process(self._rx_pump())

    def _rx_pump(self):
        reposted = 0
        try:
            while (cmpl := self.recv_ring.poll_completion()) is not None:
                yield self.sim.timeout(HEADER_PARSE)
                slot_addr, hdr_slot = self._desc_slot_addr.pop(
                    cmpl.desc_index)
                hdr_raw = self.fabric.address_map.read(hdr_slot, HEADER_LEN)
                payload = self.fabric.address_map.read(slot_addr,
                                                       cmpl.payload_len)
                frame = _frame_from_split(hdr_raw, payload)
                flow = self._flow_table.lookup(frame)
                if flow is None:
                    raise ProtocolError(
                        f"engine received frame for unknown connection "
                        f"{frame.ip.dst_ip}:{frame.tcp.dst_port}")
                state = self._flow_state_of[flow.uid]
                try:
                    data = flow.accept(frame)
                except ProtocolError:
                    # Sequence gap: an upstream frame was lost on the
                    # wire.  The model has no retransmission, so drop
                    # the frame and let the recv deadline surface the
                    # stalled entry.
                    self.frames_discarded += 1
                    data = b""
                if data:
                    yield from self._steer(state, data)
                # Recycle staging slot, header slot and descriptor; the
                # doorbell is batched (one ring per 32 reposts) — the
                # ring holds hundreds of posted buffers of slack.
                self._slot_pool.append(slot_addr)
                self._hdr_pool.append(hdr_slot)
                self._post_recv_slot()
                reposted += 1
                if reposted % 32 == 0:
                    yield from self.recv_ring.ring(self.engine_port)
                self.frames_gathered += 1
        finally:
            self._rx_pump_busy = False
        if reposted % 32:
            yield from self.recv_ring.ring(self.engine_port)

    def _steer(self, state: _FlowState, data: bytes):
        """Process: gather ``data`` into the pending entry or backlog."""
        while data:
            if not state.pending:
                state.backlog.extend(data)
                return
            pending = state.pending[0]
            take = min(len(data), pending.length - pending.copied)
            # Packet-gather copy: staging slot -> contiguous target.
            yield self.sim.timeout(2 * FPGA_DDR3.duration(take))
            self.fabric.address_map.write(pending.target + pending.copied,
                                          data[:take])
            pending.copied += take
            data = data[take:]
            if pending.copied == pending.length:
                state.pending.popleft()
                if not pending.waiter.triggered:
                    pending.waiter.succeed()

    def _drain_backlog(self, state: _FlowState):
        if not state.backlog:
            return
        data = bytes(state.backlog)
        state.backlog.clear()
        yield from self._steer(state, data)


def _frame_from_split(header: bytes, payload: bytes) -> Frame:
    """Reassemble a logical frame from split header + payload bytes.

    Checksums were validated by the NIC before the split; here we only
    decode fields for steering.
    """
    if len(header) < HEADER_LEN:
        raise ProtocolError(f"split header truncated: {len(header)} bytes")
    eth = EthernetHeader.unpack(header)
    ip = Ipv4Header.unpack(header[14:34])
    tcp = TcpHeader.unpack(header[34:54])
    return Frame(eth=eth, ip=ip, tcp=tcp, payload=payload)
