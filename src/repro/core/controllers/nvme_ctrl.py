"""The engine's NVMe SSD controller (paper Fig 7a).

"The NVMe SSD controller allocates HDC Engine memory for a submission
and completion queue pair, and it implements hardware logic to build
NVMe commands and to handle completion messages from the devices.  In
addition, it rings doorbell registers located in NVMe SSD devices."

The controller is a scoreboard :class:`Executor`: it takes scoreboard
entries ``dev="nvme"`` whose ``src``/``dst`` are an SLBA and an engine
DDR3 address (direction by ``rw``), splits them into ≤MDTS NVMe
commands with BRAM-resident PRP lists (the bulk-transfer optimization
of §IV-C), pipelines the commands, and completes them by *polling* its
BRAM CQ — no interrupts anywhere on this path.
"""

from __future__ import annotations

from typing import Dict

from repro.core.command import DeviceCommand
from repro.core.scoreboard import Executor
from repro.devices.nvme.commands import (LBA_SIZE, NvmeCommand, OP_READ,
                                         OP_WRITE, prp_fields, prp_pages)
from repro.devices.nvme.ssd import NvmeSsd
from repro.errors import DeviceError, DeviceTimeout
from repro.faults import ENGINE_NVME_POLICY, active_faults, watchdog
from repro.pcie.switch import Fabric
from repro.sim.kernel import Simulator
from repro.units import PAGE, nsec

# Hardware SQE + PRP build: a pipelined FSM at the engine clock.
COMMAND_BUILD = nsec(150)
# CQ polling cadence of the completion FSM.
POLL_INTERVAL = nsec(200)

QUEUE_DEPTH = 64
# BRAM bytes per in-flight command's PRP list: a 128 KiB transfer needs
# 31 entries x 8 B, so 512 B per slot is ample.
PRP_SLOT = 512


class EngineNvmeController(Executor):
    """FPGA hardware that drives one NVMe SSD."""

    slots = 4  # concurrent scoreboard entries (each pipelines internally)

    def __init__(self, sim: Simulator, fabric: Fabric, ssd: NvmeSsd,
                 engine_port: str, sq_addr: int, cq_addr: int,
                 prp_area: int, qid: int = 2,
                 max_chunk: int | None = None):
        self.sim = sim
        self.fabric = fabric
        self.engine_port = engine_port
        # Bulk-transfer ablation: None = use PRP lists up to the MDTS
        # (the paper's §IV-C optimization); 4096 = one block per command.
        self.max_chunk = max_chunk if max_chunk is not None else 128 * 1024
        self.qp = ssd.create_io_queue(qid, sq_addr, cq_addr, QUEUE_DEPTH,
                                      interrupt=False)
        self._prp_area = prp_area
        self._waiters: Dict[int, object] = {}
        self._outstanding = 0
        self._poll_wake = sim.event()
        self.commands_issued = 0
        self.retries = 0
        self.stale_completions = 0
        metrics = sim.metrics
        if metrics is not None:
            metrics.polled(
                "faults.retries", lambda: self.retries,
                owner=f"{fabric.name}:{engine_port}:nvme:{ssd.name}")
        # Deadline/backoff knobs — what the RTL FSM's wait state would
        # time out; tests may tighten these for speed.
        self.policy = ENGINE_NVME_POLICY
        sim.process(self._completion_fsm())

    # -- executor interface ------------------------------------------------

    def execute(self, entry: DeviceCommand):
        """Process: run one read/write scoreboard entry."""
        if entry.rw == "r":
            opcode, slba, buf = OP_READ, entry.src, entry.dst
        elif entry.rw == "w":
            opcode, slba, buf = OP_WRITE, entry.dst, entry.src
        else:
            raise DeviceError(f"bad NVMe entry direction {entry.rw!r}")
        nbytes = entry.length + (-entry.length % LBA_SIZE)
        max_chunk = self.max_chunk
        chunks = []         # (slba, nbytes, buf) per NVMe command
        offset = 0
        while offset < nbytes:
            size = min(max_chunk, nbytes - offset)
            chunks.append((slba + offset // LBA_SIZE, size, buf + offset))
            offset += size
        waits = []
        for chunk in chunks:
            waits.append((yield from self._issue(opcode, *chunk)))
        for chunk, issued in zip(chunks, waits):
            yield from self._complete_chunk(opcode, chunk, issued)
        return None

    def _complete_chunk(self, opcode: int, chunk, issued):
        """Process: await one command, re-issuing on error/timeout with
        exponential backoff up to the policy's retry budget."""
        policy = self.policy
        cid, waiter = issued
        attempt = 0
        while True:
            failure = None
            if active_faults(self.sim) is not None:
                watchdog(self.sim, waiter, policy.deadline_for(chunk[1]),
                         f"engine NVMe cid {cid}", cid=cid,
                         slba=chunk[0], size=chunk[1])
            try:
                cqe = yield waiter
                if cqe.ok:
                    return
                failure = DeviceError(
                    f"NVMe command failed with status {cqe.status}")
            except DeviceTimeout as exc:
                # Forget the lost command so the polling FSM can idle
                # (its CQE, if it ever lands, is counted as stale).
                if self._waiters.pop(cid, None) is not None:
                    self._outstanding -= 1
                failure = exc
            if attempt >= policy.retries:
                raise failure
            attempt += 1
            self.retries += 1
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.instant("recover.retry", track="faults",
                               name=f"engine NVMe retry {attempt}",
                               cid=cid, attempt=attempt,
                               reason=str(failure))
            yield self.sim.timeout(policy.backoff(attempt))
            cid, waiter = yield from self._issue(opcode, *chunk)

    def _issue(self, opcode: int, slba: int, nbytes: int, buf: int):
        """Process: build and submit one NVMe command; returns its
        ``(cid, waiter)`` pair."""
        yield self.sim.timeout(COMMAND_BUILD)
        cid = self.qp.allocate_cid()
        pages = prp_pages(buf, nbytes)
        prp1, prp2, blob = prp_fields(pages)
        if blob:
            list_addr = self._prp_area + (cid % QUEUE_DEPTH) * PRP_SLOT
            self.fabric.address_map.write(list_addr, blob)
            prp2 = list_addr
        self.qp.push(NvmeCommand(opcode=opcode, cid=cid, nsid=1, prp1=prp1,
                                 prp2=prp2, slba=slba,
                                 nlb=nbytes // LBA_SIZE - 1))
        yield from self.qp.ring_sq(self.engine_port)
        waiter = self.sim.event()
        self._waiters[cid] = waiter
        self._outstanding += 1
        self.commands_issued += 1
        wake, self._poll_wake = self._poll_wake, self.sim.event()
        wake.succeed()
        return cid, waiter

    # -- completion polling FSM ----------------------------------------------

    def _completion_fsm(self):
        while True:
            if self._outstanding == 0:
                yield self._poll_wake
                continue
            cqe = self.qp.poll_completion()
            if cqe is None:
                yield self.sim.timeout(POLL_INTERVAL)
                continue
            yield from self.qp.ring_cq(self.engine_port)
            waiter = self._waiters.pop(cqe.cid, None)
            if waiter is None:
                # A completion for a command whose deadline already
                # expired (e.g. slow rather than dropped) — discard.
                self.stale_completions += 1
                continue
            self._outstanding -= 1
            if waiter.triggered:
                self.stale_completions += 1
            else:
                waiter.succeed(cqe)
