"""Standard device controllers implemented in the HDC Engine's fabric.

Each controller drives an *off-the-shelf* device through the device's
native queue/doorbell protocol, with the rings resident in engine BRAM
(paper §III-C / §IV-C) — no device modification, no host involvement.
"""

from repro.core.controllers.nvme_ctrl import EngineNvmeController
from repro.core.controllers.nic_ctrl import EngineNicController
from repro.core.controllers.dma_ctrl import EngineDmaController
from repro.core.controllers.ndp_exec import NdpExecutor

__all__ = [
    "EngineDmaController",
    "EngineNicController",
    "EngineNvmeController",
    "NdpExecutor",
]
