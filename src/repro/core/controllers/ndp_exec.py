"""Scoreboard executor wrapping the NDP bank."""

from __future__ import annotations

from repro.core.command import DeviceCommand
from repro.core.ndp.unit import NdpBank
from repro.core.scoreboard import Executor
from repro.pcie.switch import Fabric
from repro.sim.kernel import Simulator


class NdpExecutor(Executor):
    """Runs ``dev="ndp"`` scoreboard entries on the NDP bank.

    Entry mapping: ``src`` is the DDR3 buffer, ``length`` the input
    size, ``aux`` the function id.  The entry's result is the packed
    ``(digest, output_length)`` the engine's finalizer consumes.
    """

    slots = 4  # several streams can hash concurrently (instance count
               # per function still bounds real parallelism)

    def __init__(self, sim: Simulator, fabric: Fabric, bank: NdpBank):
        self.sim = sim
        self.fabric = fabric
        self.bank = bank

    def execute(self, entry: DeviceCommand):
        """Process: run the NDP function; returns the NdpResult."""
        result = yield self.sim.process(
            self.bank.process(self.fabric, entry.aux, entry.src,
                              entry.length))
        return result
