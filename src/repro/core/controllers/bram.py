"""Watchable engine BRAM: on-chip writes that hardware FSMs can observe.

When the NIC DMA-writes a status block that lives in engine BRAM, the
FPGA logic watching that address reacts on the next cycle.  This
wrapper gives a :class:`~repro.memory.region.MemoryRegion` exactly that
behaviour: writes still store their bytes, and registered watchers
covering the written range fire afterwards.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

from repro.memory.region import MemoryRegion


class WatchableBram:
    """Store-through write hook with address watchers."""

    def __init__(self, region: MemoryRegion):
        self.region = region
        self._watchers: List[Tuple[int, int, Callable[[], None]]] = []
        region.on_mmio_write = self._on_write

    def watch(self, addr: int, length: int,
              callback: Callable[[], None]) -> None:
        """Fire ``callback`` whenever [addr, addr+length) is written."""
        self._watchers.append((addr - self.region.base, length, callback))

    def _on_write(self, offset: int, data: bytes) -> None:
        # Store-through first: watchers read the new bytes.
        backing = self.region._backing
        backing[offset:offset + len(data)] = data
        end = offset + len(data)
        for w_off, w_len, callback in self._watchers:
            if offset < w_off + w_len and w_off < end:
                callback()
