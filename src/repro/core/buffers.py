"""The engine's 1 GB DDR3 intermediate-buffer manager.

Paper §IV-C: "we utilize on-board 1GB DDR3 DRAMs as intermediate
buffers for intermediate processing and packet recv buffers for NIC
devices.  To easily manage large memory space, the intermediate buffers
and packet recv buffers are chunked into multiple fixed-size blocks
(64KB)."
"""

from __future__ import annotations

from repro.errors import AllocationError
from repro.memory.allocator import ChunkAllocator
from repro.units import GIB, KIB

CHUNK_SIZE = 64 * KIB
DDR3_SIZE = 1 * GIB


class EngineBuffers:
    """Chunked allocation over the engine's DDR3 window."""

    def __init__(self, ddr_base: int, size: int = DDR3_SIZE,
                 recv_pool_chunks: int = 512):
        self._alloc = ChunkAllocator(ddr_base, size, CHUNK_SIZE)
        # A dedicated pool of packet receive chunks, carved up front so
        # bursty intermediate-buffer use can't starve the NIC.
        self._recv_pool = [self._alloc.alloc()
                           for _ in range(recv_pool_chunks)]
        self.recv_pool_size = recv_pool_chunks

    # -- intermediate buffers ---------------------------------------------

    def alloc_intermediate(self, size: int) -> int:
        """A contiguous intermediate buffer of at least ``size`` bytes."""
        chunks = self._alloc.chunks_for(size)
        if chunks == 1:
            return self._alloc.alloc()
        return self._alloc.alloc_contiguous(chunks)

    def free_intermediate(self, addr: int, size: int) -> None:
        self._alloc.free(addr, self._alloc.chunks_for(size))

    # -- packet receive chunks ------------------------------------------------

    def take_recv_chunk(self) -> int:
        """One 64 KiB packet receive chunk (staging for inbound frames)."""
        if not self._recv_pool:
            raise AllocationError("packet recv chunk pool exhausted")
        return self._recv_pool.pop()

    def return_recv_chunk(self, addr: int) -> None:
        self._recv_pool.append(addr)

    @property
    def free_chunks(self) -> int:
        return self._alloc.free_chunks

    @property
    def bytes_in_use(self) -> int:
        """Allocated DDR3 bytes (the engine.ddr3_bytes_in_use metric)."""
        return self._alloc.allocated_chunks * CHUNK_SIZE

    @property
    def chunk_size(self) -> int:
        return CHUNK_SIZE
