"""HDC Engine: the FPGA device orchestrator, assembled.

Wires together the host interface (command queue, parser, interrupt
generator), the scoreboard, the standard NVMe/NIC device controllers,
the host-DMA mover, the NDP bank and the DDR3 buffer manager, onto one
fabric port — exactly the block diagram of the paper's Figure 9.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.buffers import EngineBuffers
from repro.core.command import (D2DCommand, D2DCompletion, D2DKind,
                                D2DStatus, DeviceCommand,
                                FLAG_APPEND_DIGEST)
from repro.core.controllers.bram import WatchableBram
from repro.core.controllers.dma_ctrl import EngineDmaController
from repro.core.controllers.ndp_exec import NdpExecutor
from repro.core.controllers.nic_ctrl import EngineNicController
from repro.core.controllers.nvme_ctrl import EngineNvmeController
from repro.core.host_interface import HostInterface
from repro.core.ndp.unit import NdpBank, NdpResult
from repro.core.scoreboard import Scoreboard
from repro.devices.nic.nic import Nic
from repro.devices.nvme.ssd import NvmeSsd
from repro.errors import AllocationError, ConfigurationError
from repro.memory.region import MemoryRegion
from repro.net.tcp import TcpFlow
from repro.pcie.link import LINK_GEN2_X8
from repro.pcie.switch import Fabric
from repro.sim.kernel import Simulator
from repro.units import GIB, KIB, nsec

ENGINE_BAR_BASE = 0xB000_0000
ENGINE_BRAM_BASE = 0xB010_0000
ENGINE_DDR_BASE = 0xC000_0000

# Splitting one D2D command into scoreboard entries (hardware FSM).
SPLIT_TIME = nsec(80)

from repro.core.controllers.nvme_ctrl import PRP_SLOT as _PRP_SLOT


class _Bump:
    def __init__(self, base: int, size: int):
        self._base = base
        self._next = base
        self._end = base + size

    @property
    def used(self) -> int:
        """Bytes consumed so far (the engine.bram_bytes_in_use metric)."""
        return self._next - self._base

    def take(self, size: int, align: int = 64) -> int:
        addr = self._next + (-self._next % align)
        if addr + size > self._end:
            raise ConfigurationError("engine BRAM exhausted")
        self._next = addr + size
        return addr


class _GatherTable:
    """Executor view of the NIC controller's receive gather table."""

    slots = 64

    def __init__(self, nic_ctrl):
        self._nic_ctrl = nic_ctrl

    def execute(self, entry):
        return self._nic_ctrl.execute(entry)


class HDCEngine:
    """The independent FPGA-based device orchestrator."""

    def __init__(self, sim: Simulator, fabric: Fabric,
                 ssd: NvmeSsd | List[NvmeSsd],
                 nic: Nic, completion_ring_addr: int,
                 port: str = "engine",
                 ndp_functions: Optional[List[str]] = None,
                 in_order_completion: bool = True,
                 nvme_rings_addr: Optional[int] = None,
                 bulk_transfer: bool = True,
                 ndp_target_gbps: float = 10.0):
        self.sim = sim
        self.fabric = fabric
        self.port = port
        fabric.add_port(port, LINK_GEN2_X8)
        self.bar = fabric.add_region(MemoryRegion(
            f"{port}-bar", base=ENGINE_BAR_BASE, size=64 * KIB, port=port))
        bram_region = fabric.add_region(MemoryRegion(
            f"{port}-bram", base=ENGINE_BRAM_BASE, size=512 * KIB, port=port))
        self.bram = WatchableBram(bram_region)
        fabric.add_region(MemoryRegion(
            f"{port}-ddr3", base=ENGINE_DDR_BASE, size=1 * GIB, port=port,
            sparse=True, access_latency=120))
        self.buffers = EngineBuffers(ENGINE_DDR_BASE)

        bump = _Bump(ENGINE_BRAM_BASE, 512 * KIB)  # within engine-bram
        engine_id = f"{fabric.name}:{port}"
        self.scoreboard = Scoreboard(sim,
                                     in_order_completion=in_order_completion,
                                     owner=engine_id)
        # One standard controller per SSD volume (the flexibility story:
        # adding an off-the-shelf SSD costs one more controller block).
        ssds = ssd if isinstance(ssd, list) else [ssd]
        # Ablation hook: the paper places queue pairs in engine BRAM
        # "to enable fast access of the peripheral devices" (§IV-C);
        # pass a host-DRAM base to quantify what that buys (applied to
        # every controller).
        if nvme_rings_addr is None:
            ring_bump = bump
        else:
            ring_bump = _Bump(nvme_rings_addr,
                              len(ssds) * (64 * KIB + _PRP_SLOT * 64))
        self.nvme_ctrls = [
            EngineNvmeController(
                sim, fabric, vol_ssd, port,
                sq_addr=ring_bump.take(64 * 64, align=4096),
                cq_addr=ring_bump.take(16 * 64, align=4096),
                prp_area=ring_bump.take(_PRP_SLOT * 64, align=4096),
                max_chunk=None if bulk_transfer else 4096)
            for vol_ssd in ssds]
        self.nvme_ctrl = self.nvme_ctrls[0]
        self.nic_ctrl = EngineNicController(
            sim, fabric, nic, port, self.buffers, self.bram,
            tx_ring_addr=bump.take(32 * 256, align=4096),
            tx_status_addr=bump.take(64, align=64),
            rx_desc_addr=bump.take(32 * 256, align=4096),
            rx_cmpl_addr=bump.take(32 * 256, align=4096),
            rx_status_addr=bump.take(64, align=64),
            rx_hdr_area=bump.take(64 * 256, align=64),
            tx_hdr_area=bump.take(64 * 64, align=64),
            max_batch=(64 * KIB) if bulk_transfer else 1460)
        self.dma_ctrl = EngineDmaController(sim, fabric, port)
        self.ndp = NdpBank(sim, ndp_functions, target_gbps=ndp_target_gbps)
        self.ndp_exec = NdpExecutor(sim, fabric, self.ndp)

        for index, ctrl in enumerate(self.nvme_ctrls):
            self.scoreboard.register_executor(f"nvme{index}", ctrl)
        self.scoreboard.register_executor("nic", self.nic_ctrl)
        # Receives park in the controller's gather table (64 entries),
        # not in the TX execution pipe — a parked receive must never
        # block a transmit, or cross-node request cycles deadlock.
        self.scoreboard.register_executor("nic-rx",
                                          _GatherTable(self.nic_ctrl))
        self.scoreboard.register_executor("dma", self.dma_ctrl)
        self.scoreboard.register_executor("ndp", self.ndp_exec)

        self.host_interface = HostInterface(
            sim, self.bar, completion_ring_addr, port, fabric,
            self._on_command)
        sim.process(self._completion_pump())
        self.tasks_completed = 0
        self.tasks_failed = 0
        self.task_stats: dict[int, dict[str, int]] = {}
        self._task_started: dict[int, int] = {}
        metrics = sim.metrics
        if metrics is None:
            self._m_d2d = None
        else:
            metrics.polled("engine.ddr3_bytes_in_use",
                           lambda: self.buffers.bytes_in_use,
                           engine=engine_id)
            metrics.polled("engine.bram_bytes_in_use",
                           lambda: bump.used, engine=engine_id)
            metrics.polled("faults.aborts", lambda: self.tasks_failed,
                           engine=engine_id)
            self._m_d2d = metrics.histogram("engine.d2d_latency_ns",
                                            engine=engine_id)

    # -- bring-up ------------------------------------------------------------

    def start(self):
        """Process: arm the NIC controller's receive path."""
        return self.nic_ctrl.start()

    def register_flow(self, flow: TcpFlow) -> int:
        """Offload an established TCP connection to the engine."""
        return self.nic_ctrl.register_flow(flow)

    # -- command handling --------------------------------------------------------

    def _on_command(self, command: D2DCommand) -> None:
        self.sim.process(self._handle(command))

    def _handle(self, command: D2DCommand):
        tracer = self.sim.tracer
        span = None if tracer is None else tracer.begin(
            "engine.split", track=f"engine:{self.port}",
            name=f"split d2d#{command.d2d_id}", d2d_id=command.d2d_id,
            kind=int(command.kind), length=command.length)
        yield self.sim.timeout(SPLIT_TIME)
        if span is not None:
            span.end()
        try:
            entries, finalize, abort = self._plan(command)
        except (ConfigurationError, AllocationError):
            # A malformed command (bad volume, unsupported kind, no
            # buffer space) must fail its completion, not hang the
            # submitter.
            self.host_interface.post_completion(
                D2DCompletion(d2d_id=command.d2d_id,
                              status=int(D2DStatus.BAD_COMMAND)))
            return
        self._task_started[command.d2d_id] = self.sim.now
        yield from self.scoreboard.admit(command.d2d_id, entries, finalize,
                                         abort)

    @staticmethod
    def _stage_category(entry: DeviceCommand) -> str:
        """Profiling category for one device-command stage."""
        if entry.dev.startswith("nvme"):
            return "device-read" if entry.rw == "r" else "device-write"
        if entry.dev in ("nic", "nic-rx"):
            return "wire"
        if entry.dev == "ndp":
            return "ndp"
        return "data-copy"  # dma

    def _record_stats(self, d2d_id: int, entries: List[DeviceCommand]) -> None:
        stats: dict[str, int] = {}
        covered = 0
        tracer = self.sim.tracer
        for entry in entries:
            category = self._stage_category(entry)
            duration = max(0, entry.done_at - entry.issued_at)
            stats[category] = stats.get(category, 0) + duration
            covered += duration
            if tracer is not None:
                tracer.complete(
                    "engine.stage", track=f"engine:{self.port}",
                    start=entry.issued_at, duration=duration,
                    name=f"{entry.dev}:{entry.rw} d2d#{d2d_id}",
                    d2d_id=d2d_id, dev=entry.dev, rw=entry.rw,
                    category=category, length=entry.length)
        window = self.sim.now - self._task_started.pop(d2d_id)
        stats["scoreboard"] = max(0, window - covered)
        if self._m_d2d is not None:
            self._m_d2d.observe(window)
        self.task_stats[d2d_id] = stats

    def _plan(self, cmd: D2DCommand
              ) -> Tuple[List[DeviceCommand], object, object]:
        append = bool(cmd.flags & FLAG_APPEND_DIGEST)
        buf_size = cmd.length + (16 if append else 0)
        # GZIP may expand slightly on incompressible input.
        buf_size += 64 * KIB

        # Validate everything *before* allocating the intermediate
        # buffer — a rejected command must not leak DDR3 chunks.
        # SSD endpoints carry their volume index in the aux field
        # (low byte = source volume, next byte = destination volume).
        src_vol = cmd.aux & 0xFF
        dst_vol = (cmd.aux >> 8) & 0xFF
        for vol in (src_vol, dst_vol):
            if vol >= len(self.nvme_ctrls):
                raise ConfigurationError(
                    f"no SSD volume {vol} behind this engine")
        if cmd.kind not in (D2DKind.SSD_TO_NIC, D2DKind.SSD_TO_HOST,
                            D2DKind.SSD_TO_SSD, D2DKind.NIC_TO_SSD,
                            D2DKind.NIC_TO_HOST, D2DKind.HOST_TO_NIC):
            raise ConfigurationError(f"unsupported D2D kind {cmd.kind}")

        buf = self.buffers.alloc_intermediate(buf_size)
        entries: List[DeviceCommand] = []

        # Stage 1: produce data into the intermediate buffer.
        if cmd.kind in (D2DKind.SSD_TO_NIC, D2DKind.SSD_TO_HOST,
                        D2DKind.SSD_TO_SSD):
            prev = DeviceCommand(dev=f"nvme{src_vol}", rw="r", src=cmd.src,
                                 dst=buf, length=cmd.length)
        elif cmd.kind in (D2DKind.NIC_TO_SSD, D2DKind.NIC_TO_HOST):
            prev = DeviceCommand(dev="nic-rx", rw="r", src=cmd.src, dst=buf,
                                 length=cmd.length)
        elif cmd.kind == D2DKind.HOST_TO_NIC:
            prev = DeviceCommand(dev="dma", rw="r", src=cmd.src, dst=buf,
                                 length=cmd.length)
        else:
            raise ConfigurationError(f"unsupported D2D kind {cmd.kind}")
        entries.append(prev)

        # Stage 2 (optional): intermediate processing on an NDP unit.
        ndp_entry: Optional[DeviceCommand] = None
        if cmd.func:
            ndp_entry = DeviceCommand(dev="ndp", rw="x", src=buf, dst=buf,
                                      length=cmd.length, aux=cmd.func,
                                      depends_on=prev)
            entries.append(ndp_entry)
            prev = ndp_entry

        # Stage 3: consume the buffer.
        if cmd.kind in (D2DKind.SSD_TO_NIC, D2DKind.HOST_TO_NIC):
            out = DeviceCommand(dev="nic", rw="w", src=buf, dst=cmd.dst,
                                length=cmd.length, depends_on=prev)
        elif cmd.kind in (D2DKind.NIC_TO_SSD, D2DKind.SSD_TO_SSD):
            out = DeviceCommand(dev=f"nvme{dst_vol}", rw="w", src=buf,
                                dst=cmd.dst, length=cmd.length,
                                depends_on=prev)
        else:  # *_TO_HOST
            out = DeviceCommand(dev="dma", rw="w", src=buf, dst=cmd.dst,
                                length=cmd.length, depends_on=prev)
        entries.append(out)

        if ndp_entry is not None:
            ndp_entry.after = self._make_ndp_hook(ndp_entry, out, buf, append)

        def finalize(task) -> D2DCompletion:
            self.buffers.free_intermediate(buf, buf_size)
            self.tasks_completed += 1
            self._record_stats(cmd.d2d_id, entries)
            digest = b""
            result_length = out.length
            if ndp_entry is not None and isinstance(ndp_entry.result,
                                                    NdpResult):
                digest = ndp_entry.result.digest
            return D2DCompletion(d2d_id=cmd.d2d_id,
                                 status=int(D2DStatus.OK), digest=digest,
                                 result_length=result_length)

        def abort(task) -> None:
            # The failure path of finalize: release what _plan
            # allocated so an aborted chain leaks nothing.
            self.buffers.free_intermediate(buf, buf_size)
            self.tasks_failed += 1
            self._task_started.pop(cmd.d2d_id, None)

        return entries, finalize, abort

    def _make_ndp_hook(self, ndp_entry: DeviceCommand, out: DeviceCommand,
                       buf: int, append: bool):
        def hook() -> None:
            result = ndp_entry.result
            if not isinstance(result, NdpResult):
                return  # the entry failed; finalize reports the error
            out.length = result.output_length
            if append and result.digest:
                self.fabric.address_map.write(
                    buf + result.output_length, result.digest)
                out.length += len(result.digest)
        return hook

    # -- completion pump -----------------------------------------------------------

    def _completion_pump(self):
        while True:
            completion = yield self.scoreboard.completions.get()
            self.host_interface.post_completion(completion)
