"""HDC Library: the sendfile-like user-level API (paper §IV-A).

"HDC Library provides Linux's sendfile-like APIs ... These APIs receive
file descriptors of the D2D-involved devices as arguments and require
function identifications and auxiliary data for intermediate
processing.  Each API defined in HDC Library internally invokes ioctl
to initiate HDC Driver routines."

The library also reproduces the permission model: file descriptors are
checked against an open table before any D2D command is built, so
"unpermitted storage or network devices cannot be involved".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Union

from repro.analysis.breakdown import NULL_TRACE
from repro.core.driver import HdcDriver
from repro.errors import ConfigurationError
from repro.host.costs import CAT
from repro.net.tcp import TcpFlow


@dataclass(frozen=True)
class _FileDesc:
    name: str
    readable: bool
    writable: bool


@dataclass(frozen=True)
class _SocketDesc:
    flow: TcpFlow


class HdcLibrary:
    """User-level entry points into DCS-ctrl."""

    def __init__(self, driver: HdcDriver):
        self.driver = driver
        self.host = driver.host
        self._fds: Dict[int, Union[_FileDesc, _SocketDesc]] = {}
        self._next_fd = 3

    # -- descriptor table --------------------------------------------------

    def open_file(self, name: str, readable: bool = True,
                  writable: bool = False) -> int:
        """Open a file; returns its descriptor."""
        if not self.host.fs.exists(name):
            raise ConfigurationError(f"no such file {name!r}")
        fd = self._next_fd
        self._next_fd += 1
        self._fds[fd] = _FileDesc(name=name, readable=readable,
                                  writable=writable)
        return fd

    def open_socket(self, flow: TcpFlow) -> int:
        """Wrap an offloaded connection in a descriptor."""
        self.driver.flow_id(flow)  # must already be offloaded
        fd = self._next_fd
        self._next_fd += 1
        self._fds[fd] = _SocketDesc(flow=flow)
        return fd

    def _file(self, fd: int, write: bool = False) -> _FileDesc:
        desc = self._fds.get(fd)
        if not isinstance(desc, _FileDesc):
            raise ConfigurationError(f"fd {fd} is not an open file")
        if write and not desc.writable:
            raise ConfigurationError(f"fd {fd} is not open for writing")
        if not write and not desc.readable:
            raise ConfigurationError(f"fd {fd} is not open for reading")
        return desc

    def _socket(self, fd: int) -> _SocketDesc:
        desc = self._fds.get(fd)
        if not isinstance(desc, _SocketDesc):
            raise ConfigurationError(f"fd {fd} is not an open socket")
        return desc

    # -- the sendfile-like calls ------------------------------------------------

    def _ioctl_enter(self, trace):
        kernel = self.host.kernel
        yield from kernel.syscall_enter(trace)
        with trace.span(CAT.KERNEL_OTHER):
            yield from self.host.cpu.run(self.host.costs.ioctl_dispatch,
                                         CAT.KERNEL_OTHER)

    def hdc_sendfile(self, out_socket_fd: int, in_file_fd: int, offset: int,
                     size: int, func: str = "none",
                     append_digest: bool = False, trace=NULL_TRACE):
        """Process: transmit a file range over a connection, optionally
        running NDP function ``func`` in flight.  Returns the
        completion (digest, result length)."""
        file_desc = self._file(in_file_fd)
        socket_desc = self._socket(out_socket_fd)
        yield from self._ioctl_enter(trace)
        completion = yield from self.driver.sendfile(
            file_desc.name, offset, size, socket_desc.flow, func=func,
            append_digest=append_digest, trace=trace)
        yield from self.host.kernel.syscall_exit(trace)
        return completion

    def hdc_recvfile(self, in_socket_fd: int, out_file_fd: int, offset: int,
                     size: int, func: str = "none", trace=NULL_TRACE):
        """Process: receive ``size`` bytes from a connection into a file
        range, optionally running NDP function ``func`` in flight."""
        file_desc = self._file(out_file_fd, write=True)
        socket_desc = self._socket(in_socket_fd)
        yield from self._ioctl_enter(trace)
        completion = yield from self.driver.recvfile(
            socket_desc.flow, file_desc.name, offset, size, func=func,
            trace=trace)
        yield from self.host.kernel.syscall_exit(trace)
        return completion

    def hdc_readfile(self, in_file_fd: int, offset: int, size: int,
                     host_addr: int, func: str = "none", trace=NULL_TRACE):
        """Process: read a file range into host memory via the engine."""
        file_desc = self._file(in_file_fd)
        yield from self._ioctl_enter(trace)
        completion = yield from self.driver.read_to_host(
            file_desc.name, offset, size, host_addr, func=func, trace=trace)
        yield from self.host.kernel.syscall_exit(trace)
        return completion

    def hdc_send(self, out_socket_fd: int, host_addr: int, size: int,
                 func: str = "none", append_digest: bool = False,
                 trace=NULL_TRACE):
        """Process: transmit host memory over a connection via the engine."""
        socket_desc = self._socket(out_socket_fd)
        yield from self._ioctl_enter(trace)
        completion = yield from self.driver.send_from_host(
            host_addr, size, socket_desc.flow, func=func,
            append_digest=append_digest, trace=trace)
        yield from self.host.kernel.syscall_exit(trace)
        return completion

    def hdc_recv(self, in_socket_fd: int, size: int, host_addr: int,
                 func: str = "none", trace=NULL_TRACE):
        """Process: receive from a connection into host memory via the
        engine."""
        socket_desc = self._socket(in_socket_fd)
        yield from self._ioctl_enter(trace)
        completion = yield from self.driver.recv_to_host(
            socket_desc.flow, size, host_addr, func=func, trace=trace)
        yield from self.host.kernel.syscall_exit(trace)
        return completion

    def hdc_copyfile(self, out_file_fd: int, in_file_fd: int,
                     src_offset: int, dst_offset: int, size: int,
                     func: str = "none", trace=NULL_TRACE):
        """Process: copy a file range SSD→SSD through the engine,
        optionally transforming it in flight (e.g. ``aes256`` for
        encryption at rest, ``gzip`` for compaction)."""
        src_desc = self._file(in_file_fd)
        dst_desc = self._file(out_file_fd, write=True)
        yield from self._ioctl_enter(trace)
        completion = yield from self.driver.copyfile(
            src_desc.name, src_offset, dst_desc.name, dst_offset, size,
            func=func, trace=trace)
        yield from self.host.kernel.syscall_exit(trace)
        return completion
