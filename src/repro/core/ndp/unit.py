"""NDP execution units: functional compute + Table III timing.

An :class:`NdpUnit` streams a DDR3-resident buffer through one
algorithm core; an :class:`NdpBank` holds the provisioned instances of
each function (enough for 10 Gbps aggregate, per the paper's
provisioning rule) and arbitrates concurrent streams.

Functional results use the shared from-scratch algorithms in
:mod:`repro.algos`, so an NDP MD5 equals a GPU MD5 equals ``hashlib``.
Transforming functions (AES-256-CTR, GZIP) rewrite the buffer in place
and report the output length.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.algos import (aes256_ctr, crc32_digest, lz77_compress, md5_digest,
                         sha1_digest, sha256_digest)
from repro.core.ndp.registry import (FUNC_AES256, FUNC_CRC32, FUNC_GZIP,
                                     FUNC_MD5, FUNC_SHA1, FUNC_SHA256,
                                     func_name)
from repro.core.ndp.resources import NDP_CORES, NdpCoreSpec
from repro.errors import ConfigurationError, DeviceError
from repro.memory.dram import FPGA_DDR3
from repro.pcie.switch import Fabric
from repro.sim.kernel import Simulator
from repro.sim.resources import Resource
from repro.units import nsec

# Engine-internal fixed key/nonce for the AES unit; real deployments
# program per-connection keys through the driver (out of scope of the
# paper's measurements).
_AES_KEY = bytes(range(32))
_AES_NONCE = b"\x00" * 8

# Pipeline ramp of one NDP operation (buffer descriptor load, FSM).
_NDP_SETUP = nsec(300)


@dataclass(frozen=True)
class NdpResult:
    """Outcome of one NDP operation."""

    digest: bytes          # integrity functions: the checksum
    output_length: int     # transforming functions: bytes now in buffer


class NdpUnit:
    """The provisioned instances of one NDP function.

    Non-streaming cores (the hashes) are provisioned as a *bank* of
    instances reaching 10 Gbps aggregate (paper Table III, footnote 2);
    storage-integrity hashing is chunked (HDFS checksums every 512
    bytes; Swift ETags are segment-wise), so one request's data spreads
    across the bank and is processed at the aggregate rate.  The bank
    behaves as a single FIFO pipeline: concurrent requests queue, and
    total throughput never exceeds the provisioned aggregate.
    Streaming cores (AES, CRC, GZIP) run one stream at their full
    per-unit rate.
    """

    def __init__(self, sim: Simulator, spec: NdpCoreSpec,
                 target_gbps: float = 10.0):
        self.sim = sim
        self.spec = spec
        # Provision instances for the target line rate (the paper sizes
        # its banks for the 10 Gbps testbed; a 40 Gbps engine simply
        # instantiates more of the same tiny cores — Table III).
        self.instances = max(1, round(target_gbps
                                      / spec.per_unit_rate.gbps()))
        effective = (spec.per_unit_rate.bytes_per_sec * self.instances)
        self._rate_bps = effective
        self._pipeline = Resource(sim, capacity=1)
        self._cores = self._pipeline  # kept for introspection/tests
        self.operations = 0
        self.bytes_processed = 0

    def duration(self, size: int) -> int:
        """Time for one request of ``size`` bytes through the bank."""
        from repro.units import SEC
        return _NDP_SETUP + round(size * SEC / self._rate_bps)

    def process(self, fabric: Fabric, buf_addr: int, size: int):
        """Process: run the function over engine memory at ``buf_addr``.

        Returns an :class:`NdpResult`.  Holds one core instance for the
        streaming duration plus DDR3 access time; concurrent streams
        beyond the instance count queue.
        """
        if size <= 0:
            raise DeviceError(f"NDP input size must be positive: {size}")
        with self._pipeline.request() as core:
            yield core
            yield self.sim.timeout(self.duration(size)
                                   + FPGA_DDR3.duration(size))
            data = fabric.address_map.read(buf_addr, size)
            digest, output = self._compute(data)
            if output is not None:
                fabric.address_map.write(buf_addr, output)
                out_len = len(output)
            else:
                out_len = size
        self.operations += 1
        self.bytes_processed += size
        return NdpResult(digest=digest, output_length=out_len)

    def _compute(self, data: bytes) -> Tuple[bytes, Optional[bytes]]:
        name = self.spec.name
        if name == "md5":
            return md5_digest(data), None
        if name == "sha1":
            return sha1_digest(data), None
        if name == "sha256":
            return sha256_digest(data), None
        if name == "crc32":
            return crc32_digest(data), None
        if name == "aes256":
            return b"", aes256_ctr(data, _AES_KEY, _AES_NONCE)
        if name == "gzip":
            return b"", lz77_compress(data)
        raise ConfigurationError(f"no compute rule for NDP core {name!r}")


class NdpBank:
    """All NDP units configured into one engine."""

    _FUNC_TO_CORE = {
        FUNC_MD5: "md5",
        FUNC_SHA1: "sha1",
        FUNC_SHA256: "sha256",
        FUNC_AES256: "aes256",
        FUNC_CRC32: "crc32",
        FUNC_GZIP: "gzip",
    }

    def __init__(self, sim: Simulator, functions: Optional[list[str]] = None,
                 target_gbps: float = 10.0):
        if functions is None:
            functions = list(NDP_CORES)
        self._units: Dict[str, NdpUnit] = {
            name: NdpUnit(sim, NDP_CORES[name], target_gbps=target_gbps)
            for name in functions}

    def unit_for(self, fid: int) -> NdpUnit:
        """The unit implementing function id ``fid``."""
        core = self._FUNC_TO_CORE.get(fid)
        if core is None:
            raise ConfigurationError(f"no NDP core for function id {fid}")
        unit = self._units.get(core)
        if unit is None:
            raise ConfigurationError(
                f"NDP core {core!r} not configured into this engine "
                f"(have {sorted(self._units)})")
        return unit

    def process(self, fabric: Fabric, fid: int, buf_addr: int, size: int):
        """Process: dispatch function ``fid`` over the buffer."""
        return self.unit_for(fid).process(fabric, buf_addr, size)

    def configured(self) -> list[str]:
        return sorted(self._units)

    def describe(self, fid: int) -> str:
        return func_name(fid)
