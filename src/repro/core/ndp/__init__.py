"""Near-device processing units (paper §III-D, Table III)."""

from repro.core.ndp.registry import (FUNC_AES256, FUNC_CRC32, FUNC_GZIP,
                                     FUNC_MD5, FUNC_NAMES, FUNC_NONE,
                                     FUNC_SHA1, FUNC_SHA256, func_id,
                                     func_name)
from repro.core.ndp.resources import (ENGINE_BASE_UTILIZATION, NDP_CORES,
                                      NdpCoreSpec, Virtex7)
from repro.core.ndp.unit import NdpBank, NdpUnit

__all__ = [
    "ENGINE_BASE_UTILIZATION",
    "FUNC_AES256",
    "FUNC_CRC32",
    "FUNC_GZIP",
    "FUNC_MD5",
    "FUNC_NAMES",
    "FUNC_NONE",
    "FUNC_SHA1",
    "FUNC_SHA256",
    "NDP_CORES",
    "NdpBank",
    "NdpCoreSpec",
    "NdpUnit",
    "Virtex7",
    "func_id",
    "func_name",
]
