"""NDP function identifiers shared by HDC Library, Driver and Engine."""

from __future__ import annotations

from repro.errors import ConfigurationError

FUNC_NONE = 0
FUNC_MD5 = 1
FUNC_SHA1 = 2
FUNC_SHA256 = 3
FUNC_AES256 = 4
FUNC_CRC32 = 5
FUNC_GZIP = 6

FUNC_NAMES = {
    FUNC_NONE: "none",
    FUNC_MD5: "md5",
    FUNC_SHA1: "sha1",
    FUNC_SHA256: "sha256",
    FUNC_AES256: "aes256",
    FUNC_CRC32: "crc32",
    FUNC_GZIP: "gzip",
}

_BY_NAME = {name: fid for fid, name in FUNC_NAMES.items()}


def func_id(name: str) -> int:
    """The function id for a name ("md5" → FUNC_MD5)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown NDP function {name!r}; have {sorted(_BY_NAME)}") from None


def func_name(fid: int) -> str:
    """The name for a function id."""
    try:
        return FUNC_NAMES[fid]
    except KeyError:
        raise ConfigurationError(f"unknown NDP function id {fid}") from None
