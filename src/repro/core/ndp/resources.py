"""FPGA resource and throughput model (paper Tables III and IV).

Table III gives, per IP core: LUT/register utilization, the highest
clock that passes timing, the per-unit throughput, and — implicitly —
how many instances the engine provisions to reach 10 Gbps aggregate.
Table IV gives the base engine's utilization (device controllers, host
interface).  These constants drive both the NDP timing model and the
resource-report experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.units import Rate, gbps


@dataclass(frozen=True)
class Virtex7:
    """XC7VX485T (VC707) resource envelope."""

    luts: int = 303_600
    registers: int = 607_200
    brams: int = 1_030


VIRTEX7 = Virtex7()


@dataclass(frozen=True)
class NdpCoreSpec:
    """One NDP IP core as synthesized (one row of Table III)."""

    name: str
    luts: int                   # for the instances needed to reach 10 Gbps
    registers: int
    max_clock_mhz: float
    per_unit_rate: Rate         # single-stream throughput of one core
    streaming: bool             # True if one stream can use many cores

    def lut_fraction(self, fpga: Virtex7 = VIRTEX7) -> float:
        return self.luts / fpga.luts

    def register_fraction(self, fpga: Virtex7 = VIRTEX7) -> float:
        return self.registers / fpga.registers

    def units_for_10g(self) -> int:
        """Instances provisioned for 10 Gbps aggregate."""
        return max(1, round(10.0 / self.per_unit_rate.gbps()))


# Table III, verbatim.  Hashes are chained per stream (non-pipelined
# cores: one stream is stuck at the per-unit rate; aggregate scales by
# instance count).  AES/CRC/GZIP stream a single flow at full rate.
NDP_CORES: Dict[str, NdpCoreSpec] = {
    "md5": NdpCoreSpec("md5", luts=8970, registers=4180,
                       max_clock_mhz=130, per_unit_rate=gbps(0.97),
                       streaming=False),
    "sha1": NdpCoreSpec("sha1", luts=10760, registers=6848,
                        max_clock_mhz=235, per_unit_rate=gbps(1.10),
                        streaming=False),
    "sha256": NdpCoreSpec("sha256", luts=13090, registers=7480,
                          max_clock_mhz=130, per_unit_rate=gbps(0.80),
                          streaming=False),
    "aes256": NdpCoreSpec("aes256", luts=10689, registers=6000,
                          max_clock_mhz=250, per_unit_rate=gbps(40.90),
                          streaming=True),
    "crc32": NdpCoreSpec("crc32", luts=93, registers=53,
                         max_clock_mhz=250, per_unit_rate=gbps(10.0),
                         streaming=True),
    "gzip": NdpCoreSpec("gzip", luts=16273, registers=12718,
                        max_clock_mhz=178, per_unit_rate=gbps(100.0),
                        streaming=True),
}


@dataclass(frozen=True)
class EngineUtilization:
    """Table IV: the engine's base (controllers + host interface) usage."""

    luts: int = 116_344
    registers: int = 91_005
    brams: int = 442
    power_watts: float = 5.57

    def lut_fraction(self, fpga: Virtex7 = VIRTEX7) -> float:
        return self.luts / fpga.luts

    def register_fraction(self, fpga: Virtex7 = VIRTEX7) -> float:
        return self.registers / fpga.registers

    def bram_fraction(self, fpga: Virtex7 = VIRTEX7) -> float:
        return self.brams / fpga.brams

    def fits_with_ndp(self, core_names: list[str],
                      fpga: Virtex7 = VIRTEX7) -> bool:
        """Do the base engine plus the named NDP banks fit the part?"""
        luts = self.luts + sum(NDP_CORES[n].luts for n in core_names)
        regs = self.registers + sum(NDP_CORES[n].registers
                                    for n in core_names)
        return luts <= fpga.luts and regs <= fpga.registers


ENGINE_BASE_UTILIZATION = EngineUtilization()
