"""Shared measurement helpers for the experiment runners."""

from __future__ import annotations

from typing import Optional, Type

from repro.host.costs import CAT
from repro.schemes import Testbed
from repro.schemes.base import Scheme, TransferResult
from repro.trace import trace_section
from repro.units import KIB

MICROBENCH_SIZE = 4 * KIB   # the paper's per-command transfer unit

# Latency-trace categories where only hardware is working.
DEVICE_CATEGORIES = (CAT.READ, CAT.WRITE, CAT.HASH, CAT.NDP, CAT.WIRE)

# The software components of Figs 3a/11, in display order.
SOFTWARE_CATEGORIES = (CAT.FILESYSTEM, CAT.NETWORK, CAT.DEVICE_CONTROL,
                       CAT.COMPLETION, CAT.GPU_COPY, CAT.GPU_CONTROL,
                       CAT.DATA_COPY, CAT.HDC_DRIVER, CAT.SCOREBOARD,
                       CAT.KERNEL_OTHER)


def software_us(result: TransferResult) -> float:
    """Software-attributable latency (total minus device-only time)."""
    segs = result.trace.breakdown_us()
    device = sum(segs.get(cat, 0.0) for cat in DEVICE_CATEGORIES)
    return result.latency_us - device


def measure_send(scheme_cls: Type[Scheme], processing: Optional[str],
                 size: int = MICROBENCH_SIZE, seed: int = 5,
                 warmups: int = 1) -> TransferResult:
    """One steady-state send_file measurement on a fresh testbed."""
    with trace_section(f"{scheme_cls.name}/{processing or 'none'}"):
        tb = Testbed(seed=seed)
        scheme = scheme_cls(tb)
        data = bytes((i * 7) % 256 for i in range(size))
        for index in range(warmups):
            _run_one(tb, scheme, data, f"warm-{index}.dat", processing)
        return _run_one(tb, scheme, data, "measure.dat", processing)


def _run_one(tb: Testbed, scheme: Scheme, data: bytes, name: str,
             processing: Optional[str]) -> TransferResult:
    tb.node0.host.install_file(name, data)
    conn = scheme.connect()

    def sender(sim):
        return (yield from scheme.send_file(tb.node0, conn, name, 0,
                                            len(data),
                                            processing=processing))

    if conn.offloaded:
        proc = tb.sim.process(sender(tb.sim))
        tb.sim.run(until=proc)
        return proc.value
    dst = tb.node1.host.alloc_buffer(len(data))

    def receiver(sim):
        yield from tb.node1.host.kernel.socket_recv(conn.flow1, len(data),
                                                    dst)

    send_proc = tb.sim.process(sender(tb.sim))
    recv_proc = tb.sim.process(receiver(tb.sim))
    tb.sim.run(until=send_proc)
    tb.sim.run(until=recv_proc)
    tb.node1.host.free_buffer(dst, len(data))
    return send_proc.value


def measure_send_cpu(scheme_cls: Type[Scheme], processing: Optional[str],
                     size: int = MICROBENCH_SIZE, seed: int = 5
                     ) -> dict[str, float]:
    """CPU busy-time (ns per request, by category) of one steady-state
    send on node0."""
    with trace_section(f"{scheme_cls.name}/cpu/{processing or 'none'}"):
        tb = Testbed(seed=seed)
        scheme = scheme_cls(tb)
        data = bytes((i * 7) % 256 for i in range(size))
        _run_one(tb, scheme, data, "warm.dat", processing)
        tb.node0.host.cpu.tracker.reset_window()
        _run_one(tb, scheme, data, "measure.dat", processing)
        return dict(tb.node0.host.cpu.tracker.by_category())
