"""Experiment runners: one per table/figure in the paper's evaluation.

Each runner builds fresh testbeds, executes the measurement, and
returns an :class:`ExperimentResult` whose ``render()`` prints the
paper-style rows and whose ``metrics`` carry the headline numbers the
tests and EXPERIMENTS.md assert on.
"""

from repro.experiments.result import ExperimentResult
from repro.experiments.table1 import run_table1
from repro.experiments.table3 import run_table3
from repro.experiments.table4 import run_table4
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig8 import run_fig8
from repro.experiments.fig11 import run_fig11
from repro.experiments.fig12 import run_fig12_swift, run_fig12_hdfs
from repro.experiments.fig13 import run_fig13
from repro.experiments.fig13_validate import run_fig13_validate
from repro.experiments.sweep import run_sweep
from repro.experiments.headline import run_headline
from repro.experiments.faults import run_faults

__all__ = [
    "ExperimentResult",
    "run_faults",
    "run_fig11",
    "run_fig12_hdfs",
    "run_fig12_swift",
    "run_fig13",
    "run_fig13_validate",
    "run_sweep",
    "run_fig3",
    "run_fig8",
    "run_headline",
    "run_table1",
    "run_table3",
    "run_table4",
]
