"""Figure 8 — kernel-side CPU utilization: Linux vs DCS-ctrl.

"Figure 8 shows the kernel-side CPU utilization of Linux and DCS-ctrl
in simple direct communications between a SSD and a NIC.  The result
indicates DCS-ctrl significantly reduces kernel-side CPU utilization
as much as other existing software optimization approaches do."

Three columns: stock Linux (buffered I/O + user/kernel copies),
optimized software (direct I/O + zero copy — the SW-opt baseline), and
DCS-ctrl (HDC Driver only).  The measurement is kernel CPU ns per 64
KiB SSD→NIC request.
"""

from __future__ import annotations

from repro.experiments.result import ExperimentResult
from repro.schemes import DcsCtrlScheme, SwOptScheme, Testbed
from repro.units import KIB

SIZE = 64 * KIB


def _linux_buffered_send(tb: Testbed, name: str) -> int:
    """One stock-Linux-style request: buffered read + copying send."""
    host = tb.node0.host
    conn = tb.connect_kernel()
    buf = host.alloc_buffer(SIZE)

    def body(sim):
        kernel = host.kernel
        yield from kernel.syscall_enter()
        yield from kernel.file_read_buffered(name, 0, SIZE, buf)
        yield from kernel.syscall_exit()
        yield from kernel.syscall_enter()
        yield from kernel.socket_send(conn.flow0, buf, SIZE,
                                      copy_from_user=True)
        yield from kernel.syscall_exit()

    def drain(sim):
        dst = tb.node1.host.alloc_buffer(SIZE)
        yield from tb.node1.host.kernel.socket_recv(conn.flow1, SIZE, dst)

    host.cpu.tracker.reset_window()
    send = tb.sim.process(body(tb.sim))
    recv = tb.sim.process(drain(tb.sim))
    tb.sim.run(until=send)
    tb.sim.run(until=recv)
    host.free_buffer(buf, SIZE)
    return host.cpu.tracker.total()


def _scheme_send_cpu(scheme_cls, seed: int) -> int:
    tb = Testbed(seed=seed)
    scheme = scheme_cls(tb)
    data = bytes(SIZE)
    tb.node0.host.install_file("fig8.dat", data)
    conn = scheme.connect()

    def sender(sim):
        yield from scheme.send_file(tb.node0, conn, "fig8.dat", 0, SIZE)

    def drain(sim):
        dst = tb.node1.host.alloc_buffer(SIZE)
        yield from tb.node1.host.kernel.socket_recv(conn.flow1, SIZE, dst)

    tb.node0.host.cpu.tracker.reset_window()
    send = tb.sim.process(sender(tb.sim))
    procs = [send]
    if not conn.offloaded:
        procs.append(tb.sim.process(drain(tb.sim)))
    for proc in procs:
        tb.sim.run(until=proc)
    return tb.node0.host.cpu.tracker.total()


def run_fig8() -> ExperimentResult:
    tb = Testbed(seed=8)
    tb.node0.host.install_file("fig8.dat", bytes(SIZE))
    linux_ns = _linux_buffered_send(tb, "fig8.dat")
    swopt_ns = _scheme_send_cpu(SwOptScheme, seed=8)
    dcs_ns = _scheme_send_cpu(DcsCtrlScheme, seed=8)

    result = ExperimentResult(
        name="Fig 8: kernel-side CPU per 64 KiB SSD->NIC request",
        headers=["stack", "kernel CPU us/request", "vs Linux"])
    for label, value in (("Linux (buffered)", linux_ns),
                         ("software-optimized", swopt_ns),
                         ("DCS-ctrl", dcs_ns)):
        result.add_row(label, f"{value / 1000:.2f}",
                       f"{value / linux_ns:.2f}")
    result.metrics["linux_us"] = linux_ns / 1000
    result.metrics["swopt_vs_linux"] = swopt_ns / linux_ns
    result.metrics["dcs_vs_linux"] = dcs_ns / linux_ns
    result.notes.append(
        "paper shape: DCS-ctrl's kernel CPU drops at least as much as "
        "the software-optimization approaches'")
    return result
