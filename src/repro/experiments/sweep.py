"""Transfer-size sweep: where does hardware device control pay off?

Not a figure in the paper, but the natural question its Fig 11 raises:
the software control overhead is (mostly) per-request, so its relative
cost shrinks as transfers grow.  This sweep measures end-to-end
SSD→MD5→NIC latency for each design across sizes and reports the
DCS-ctrl advantage at every point.
"""

from __future__ import annotations

from repro.experiments.common import measure_send, software_us
from repro.experiments.result import ExperimentResult
from repro.schemes import DcsCtrlScheme, SwOptScheme, SwP2pScheme
from repro.units import KIB

SIZES = (4 * KIB, 16 * KIB, 64 * KIB, 256 * KIB)

SCHEMES = (("sw-opt", SwOptScheme), ("sw-p2p", SwP2pScheme),
           ("dcs-ctrl", DcsCtrlScheme))


def run_sweep(processing: str = "md5") -> ExperimentResult:
    result = ExperimentResult(
        name=f"Size sweep: SSD->{processing}->NIC end-to-end latency (us)",
        headers=["size KiB"] + [name for name, _ in SCHEMES]
                + ["dcs total gain", "dcs software gain"])
    gains = {}
    for size in SIZES:
        totals = {}
        softwares = {}
        for name, scheme_cls in SCHEMES:
            sent = measure_send(scheme_cls, processing, size=size)
            totals[name] = sent.latency_us
            softwares[name] = software_us(sent)
        total_gain = 1 - totals["dcs-ctrl"] / totals["sw-p2p"]
        software_gain = 1 - softwares["dcs-ctrl"] / softwares["sw-p2p"]
        gains[size] = (total_gain, software_gain)
        result.add_row(size // KIB,
                       *[f"{totals[name]:.1f}" for name, _ in SCHEMES],
                       f"{total_gain * 100:.0f}%",
                       f"{software_gain * 100:.0f}%")
    result.metrics["total_gain_4k"] = gains[4 * KIB][0]
    result.metrics["total_gain_256k"] = gains[256 * KIB][0]
    result.metrics["software_gain_4k"] = gains[4 * KIB][1]
    result.metrics["software_gain_256k"] = gains[256 * KIB][1]
    result.notes.append(
        "the software-latency gain persists across sizes; the total-"
        "latency gain shrinks — and eventually inverts — as the engine's "
        "per-command store-and-forward staging meets transfers large "
        "enough for device time to dominate.  This is the reason the "
        "paper evaluates large-transfer workloads by CPU utilization "
        "and throughput (Figs 12/13) rather than single-request latency")
    return result
