"""Figure 12 — CPU-utilization breakdown of scale-out storage apps.

(a) Swift PUT/GET with MD5 integrity; (b) the HDFS balancer with CRC32
on the receiver.  Utilizations are compared at matched offered load
(same workload on every scheme), per the paper's "with the same
throughput" methodology.
"""

from __future__ import annotations

from typing import Dict

from repro.apps import (HdfsConfig, SwiftConfig, WorkloadConfig,
                        run_hdfs_balancer, run_swift)
from repro.experiments.result import ExperimentResult
from repro.host.costs import CAT
from repro.schemes import DcsCtrlScheme, SwOptScheme, SwP2pScheme, Testbed
from repro.units import KIB, MIB

SCHEMES = (("sw-opt", SwOptScheme), ("sw-p2p", SwP2pScheme),
           ("dcs-ctrl", DcsCtrlScheme))

CPU_DISPLAY = (CAT.APPLICATION, CAT.KERNEL_OTHER, CAT.FILESYSTEM,
               CAT.NETWORK, CAT.DEVICE_CONTROL, CAT.COMPLETION,
               CAT.DATA_COPY, CAT.GPU_COPY, CAT.GPU_CONTROL,
               CAT.HDC_DRIVER)

SWIFT_CONFIG = SwiftConfig(
    workload=WorkloadConfig(arrival_rate=3000.0, put_ratio=0.4,
                            max_object=256 * KIB, count=60, seed=12))

HDFS_CONFIG = HdfsConfig(blocks=24, block_size=1 * MIB, streams=6)


def _cpu_cells(util: Dict[str, float]) -> list:
    return [f"{util.get(cat, 0.0) * 100:.2f}" for cat in CPU_DISPLAY]


def run_fig12_swift(config: SwiftConfig = SWIFT_CONFIG) -> ExperimentResult:
    result = ExperimentResult(
        name="Fig 12a: Swift server CPU utilization (%, 6 cores) at "
             "matched load",
        headers=["scheme", "Gbps", "total %"]
                + [cat for cat in CPU_DISPLAY])
    totals = {}
    for name, scheme_cls in SCHEMES:
        tb = Testbed(seed=21)
        run = run_swift(scheme_cls(tb), config)
        totals[name] = run.server_cpu_total
        result.add_row(name, f"{run.throughput_gbps:.2f}",
                       f"{run.server_cpu_total * 100:.2f}",
                       *_cpu_cells(run.server_cpu))
    result.metrics["swift_dcs_vs_swopt_cpu"] = (
        totals["dcs-ctrl"] / totals["sw-opt"])
    result.metrics["swift_dcs_vs_p2p_cpu"] = (
        totals["dcs-ctrl"] / totals["sw-p2p"])
    result.notes.append("paper: DCS-ctrl removes the accelerator-control "
                        "overhead entirely and reduces kernel overhead")
    return result


def run_fig12_hdfs(config: HdfsConfig = HDFS_CONFIG) -> ExperimentResult:
    result = ExperimentResult(
        name="Fig 12b: HDFS balancer CPU utilization (%, 6 cores) at "
             "matched bandwidth",
        headers=["scheme", "side", "Gbps", "total %"]
                + [cat for cat in CPU_DISPLAY])
    totals = {}
    for name, scheme_cls in SCHEMES:
        tb = Testbed(seed=22)
        run = run_hdfs_balancer(scheme_cls(tb), config)
        totals[name] = (run.sender_cpu_total, run.receiver_cpu_total,
                        run.throughput_gbps)
        result.add_row(name, "sender", f"{run.throughput_gbps:.2f}",
                       f"{run.sender_cpu_total * 100:.2f}",
                       *_cpu_cells(run.sender_cpu))
        result.add_row(name, "receiver", f"{run.throughput_gbps:.2f}",
                       f"{run.receiver_cpu_total * 100:.2f}",
                       *_cpu_cells(run.receiver_cpu))
    sw = totals["sw-opt"]
    p2p = totals["sw-p2p"]
    dcs = totals["dcs-ctrl"]
    result.metrics["hdfs_dcs_vs_swopt_cpu"] = (
        (dcs[0] + dcs[1]) / (sw[0] + sw[1]))
    result.metrics["hdfs_p2p_vs_swopt_cpu"] = (
        (p2p[0] + p2p[1]) / (sw[0] + sw[1]))
    result.metrics["hdfs_dcs_gbps"] = dcs[2]
    result.metrics["hdfs_swopt_gbps"] = sw[2]
    result.notes.append("paper: software-controlled P2P cannot improve "
                        "HDFS; DCS-ctrl cuts both sides' CPU")
    return result
