"""Table III — NDP IP-core resources, clocks and throughput."""

from __future__ import annotations

from repro.core.ndp.resources import NDP_CORES
from repro.experiments.result import ExperimentResult


def run_table3() -> ExperimentResult:
    result = ExperimentResult(
        name="Table III: NDP units on Virtex-7 (for 10 Gbps aggregate)",
        headers=["unit", "LUTs", "LUT %", "registers", "reg %",
                 "max clock (MHz)", "per-unit Gbps", "instances"])
    total_lut_frac = 0.0
    total_reg_frac = 0.0
    for name, spec in NDP_CORES.items():
        result.add_row(name.upper(), spec.luts,
                       f"{spec.lut_fraction() * 100:.2f}",
                       spec.registers,
                       f"{spec.register_fraction() * 100:.2f}",
                       spec.max_clock_mhz,
                       f"{spec.per_unit_rate.gbps():.2f}",
                       spec.units_for_10g())
        total_lut_frac += spec.lut_fraction()
        total_reg_frac += spec.register_fraction()
    n = len(NDP_CORES)
    result.metrics["avg_lut_pct"] = total_lut_frac / n * 100
    result.metrics["avg_reg_pct"] = total_reg_frac / n * 100
    result.notes.append(
        "paper: on average 3.28 % slice LUTs and 1.02 % registers per unit")
    return result
