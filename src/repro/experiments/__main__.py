"""Run reproduced tables and figures and print the results.

Usage::

    python -m repro.experiments                     # everything (few minutes)
    python -m repro.experiments --fast              # skip the app-scale runs
    python -m repro.experiments fig11 table1        # just these experiments
    python -m repro.experiments --trace out.json headline
                                                    # + Chrome/Perfetto trace
    python -m repro.experiments --trace-jsonl out.jsonl fig11
                                                    # + flat JSONL trace
    python -m repro.experiments --metrics out.csv headline
                                                    # + metrics time series
                                                    #   and a sim-top report

Trace output loads in https://ui.perfetto.dev (or chrome://tracing); the
schema is documented in ``docs/tracing.md``.  Metrics output is a flat
CSV (or JSONL with ``--metrics-jsonl``) documented in ``docs/metrics.md``;
when metrics are collected, a per-resource utilization summary
("sim-top") is printed after the runs.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (run_faults, run_fig11, run_fig12_hdfs,
                               run_fig12_swift, run_fig13,
                               run_fig13_validate, run_fig3, run_fig8,
                               run_headline, run_sweep, run_table1,
                               run_table3, run_table4)
from repro.metrics import MetricsSession, render_top, write_csv
from repro.metrics import write_jsonl as write_metrics_jsonl
from repro.trace import (TraceSession, trace_section, write_chrome,
                         write_jsonl)

# slug -> (display label, runner, fast?).  Slugs are the CLI names.
EXPERIMENTS = {
    "table1": ("Table I", run_table1, True),
    "table3": ("Table III", run_table3, True),
    "table4": ("Table IV", run_table4, True),
    "fig3": ("Fig 3", run_fig3, True),
    "fig8": ("Fig 8", run_fig8, True),
    "fig11": ("Fig 11", run_fig11, True),
    "sweep": ("Size sweep", run_sweep, True),
    "faults": ("Fault sweep", run_faults, False),
    "fig12a": ("Fig 12a", run_fig12_swift, False),
    "fig12b": ("Fig 12b", run_fig12_hdfs, False),
    "fig13": ("Fig 13", run_fig13, False),
    "fig13v": ("Fig 13 validated", run_fig13_validate, False),
    "headline": ("Headline", run_headline, False),
}


def _parse(argv: list[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's tables and figures.")
    parser.add_argument("experiments", nargs="*", metavar="EXPERIMENT",
                        help=f"subset to run: {', '.join(EXPERIMENTS)} "
                             "(default: all)")
    parser.add_argument("--fast", action="store_true",
                        help="skip the app-scale (Fig 12/13, headline) runs")
    parser.add_argument("--trace", metavar="OUT.json", default=None,
                        help="write a Chrome trace-event JSON "
                             "(Perfetto-loadable) of the run")
    parser.add_argument("--trace-jsonl", metavar="OUT.jsonl", default=None,
                        help="write a flat JSONL event stream of the run")
    parser.add_argument("--metrics", metavar="OUT.csv", default=None,
                        help="sample utilization metrics and write the "
                             "time series as CSV")
    parser.add_argument("--metrics-jsonl", metavar="OUT.jsonl", default=None,
                        help="write the sampled metrics as JSONL records")
    return parser.parse_args(argv)


def check_writable(kind: str, path: str | None) -> bool:
    """Fail fast on an unwritable output path.

    Creates (truncates) the file so a typo'd directory or a read-only
    target surfaces *before* spending minutes running experiments, not
    after.  Returns False (after printing to stderr) when unwritable.
    """
    if path is None:
        return True
    try:
        with open(path, "w", encoding="utf-8"):
            pass
    except OSError as exc:
        print(f"cannot write {kind} output {path}: {exc}", file=sys.stderr)
        return False
    return True


def main(argv: list[str]) -> int:
    opts = _parse(argv)
    unknown = [slug for slug in opts.experiments if slug not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}; "
              f"choose from: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    if opts.experiments:
        slugs = opts.experiments
    else:
        slugs = [slug for slug, (_, _, fast) in EXPERIMENTS.items()
                 if fast or not opts.fast]

    for kind, path in (("trace", opts.trace), ("trace", opts.trace_jsonl),
                       ("metrics", opts.metrics),
                       ("metrics", opts.metrics_jsonl)):
        if not check_writable(kind, path):
            return 2

    tracing = opts.trace is not None or opts.trace_jsonl is not None
    session = TraceSession(label="experiments") if tracing else None
    sampling = opts.metrics is not None or opts.metrics_jsonl is not None
    metrics = MetricsSession(label="experiments") if sampling else None
    if session is not None:
        session.install()
    if metrics is not None:
        metrics.install()
    try:
        for slug in slugs:
            label, runner, _ = EXPERIMENTS[slug]
            start = time.time()
            with trace_section(slug):
                result = runner()
            print(result.render())
            print(f"[{label} regenerated in {time.time() - start:.1f}s]\n")
    finally:
        if session is not None:
            session.uninstall()
            session.finalize()
        if metrics is not None:
            metrics.uninstall()
            metrics.finalize()
    if session is not None:
        if opts.trace is not None:
            count = write_chrome(opts.trace, session)
            print(f"[trace: {count} events -> {opts.trace} "
                  "(load in ui.perfetto.dev)]")
        if opts.trace_jsonl is not None:
            write_jsonl(opts.trace_jsonl, session)
            print(f"[trace: JSONL -> {opts.trace_jsonl}]")
    if metrics is not None:
        if opts.metrics is not None:
            rows = write_csv(opts.metrics, metrics)
            print(f"[metrics: {rows} samples -> {opts.metrics}]")
        if opts.metrics_jsonl is not None:
            rows = write_metrics_jsonl(opts.metrics_jsonl, metrics)
            print(f"[metrics: {rows} samples -> {opts.metrics_jsonl}]")
        print()
        print(render_top(metrics, max_rows=40))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
