"""Run every reproduced table and figure and print the results.

Usage::

    python -m repro.experiments            # everything (few minutes)
    python -m repro.experiments --fast     # skip the app-scale runs
"""

from __future__ import annotations

import sys
import time

from repro.experiments import (run_fig11, run_fig12_hdfs, run_fig12_swift,
                               run_fig13, run_fig13_validate, run_fig3,
                               run_fig8, run_headline, run_sweep,
                               run_table1, run_table3, run_table4)

FAST = [("Table I", run_table1), ("Table III", run_table3),
        ("Table IV", run_table4), ("Fig 3", run_fig3),
        ("Fig 8", run_fig8), ("Fig 11", run_fig11),
        ("Size sweep", run_sweep)]

SLOW = [("Fig 12a", run_fig12_swift), ("Fig 12b", run_fig12_hdfs),
        ("Fig 13", run_fig13), ("Fig 13 validated", run_fig13_validate),
        ("Headline", run_headline)]


def main(argv: list[str]) -> int:
    fast_only = "--fast" in argv
    runners = FAST if fast_only else FAST + SLOW
    for label, runner in runners:
        start = time.time()
        result = runner()
        print(result.render())
        print(f"[{label} regenerated in {time.time() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
