"""Figure 13 — estimated CPU utilization with high-performance devices.

The paper's projection: measure throughput and CPU on the 10 Gbps
testbed, then ask how many cores each design needs as the line rate
grows to 40 Gbps (40-Gbps NIC, six NVMe SSDs, one 6-core Xeon), and
what throughput fits once the 6-core budget caps the design.  Each
node runs both directions of balancer/replication traffic, so the
projection charges a node with its send-side and receive-side CPU.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.analysis.projection import project_cores
from repro.apps import run_hdfs_balancer, run_swift
from repro.experiments.fig12 import HDFS_CONFIG, SWIFT_CONFIG
from repro.experiments.result import ExperimentResult
from repro.schemes import DcsCtrlScheme, SwOptScheme, SwP2pScheme, Testbed

SCHEMES = (("sw-opt", SwOptScheme), ("sw-p2p", SwP2pScheme),
           ("dcs-ctrl", DcsCtrlScheme))

TARGET_GBPS = 40.0
CORE_BUDGET = 6
CORES = 6


def _measure_swift() -> Dict[str, Tuple[float, float]]:
    out = {}
    for name, scheme_cls in SCHEMES:
        tb = Testbed(seed=31)
        run = run_swift(scheme_cls(tb), SWIFT_CONFIG)
        out[name] = (run.throughput_gbps, run.server_cpu_total * CORES)
    return out


def _measure_hdfs() -> Dict[str, Tuple[float, float]]:
    out = {}
    for name, scheme_cls in SCHEMES:
        tb = Testbed(seed=32)
        run = run_hdfs_balancer(scheme_cls(tb), HDFS_CONFIG)
        # A storage node carries both roles' CPU at line rate.
        cores = (run.sender_cpu_total + run.receiver_cpu_total) * CORES
        out[name] = (run.throughput_gbps, cores)
    return out


def run_fig13() -> ExperimentResult:
    result = ExperimentResult(
        name="Fig 13: projected cores and achievable throughput at "
             f"{TARGET_GBPS:.0f} Gbps ({CORE_BUDGET}-core budget)",
        headers=["app", "scheme", "measured Gbps", "measured cores",
                 "cores @40G", "achievable Gbps"])
    metrics = {}
    for app, measurements in (("swift", _measure_swift()),
                              ("hdfs", _measure_hdfs())):
        projections = project_cores(measurements, target_gbps=TARGET_GBPS,
                                    cpu_core_budget=CORE_BUDGET)
        by_name = {p.scheme: p for p in projections}
        for name, _ in SCHEMES:
            p = by_name[name]
            result.add_row(app, name, f"{p.measured_gbps:.2f}",
                           f"{p.measured_core_equivalents:.2f}",
                           f"{p.cores_needed_at_target:.2f}",
                           f"{p.achievable_gbps:.2f}")
        dcs = by_name["dcs-ctrl"]
        p2p = by_name["sw-p2p"]
        metrics[f"{app}_dcs_cores_at_40g"] = dcs.cores_needed_at_target
        metrics[f"{app}_throughput_ratio_dcs_vs_p2p"] = (
            dcs.achievable_gbps / p2p.achievable_gbps)
    result.metrics = metrics
    result.notes.append("paper: DCS-ctrl needs <= 3 cores at 40 Gbps and "
                        "delivers 1.95x (Swift) / 2.06x (HDFS) the "
                        "throughput of software-controlled P2P under the "
                        "core budget")
    return result
