"""Table IV — HDC Engine base resource utilization on Virtex-7."""

from __future__ import annotations

from repro.core.ndp.resources import (ENGINE_BASE_UTILIZATION, NDP_CORES,
                                      VIRTEX7)
from repro.experiments.result import ExperimentResult


def run_table4() -> ExperimentResult:
    engine = ENGINE_BASE_UTILIZATION
    result = ExperimentResult(
        name="Table IV: HDC Engine device controllers on Virtex-7",
        headers=["resource", "used", "available", "fraction"])
    result.add_row("LUTs", engine.luts, VIRTEX7.luts,
                   f"{engine.lut_fraction() * 100:.0f}%")
    result.add_row("registers", engine.registers, VIRTEX7.registers,
                   f"{engine.register_fraction() * 100:.0f}%")
    result.add_row("BRAMs", engine.brams, VIRTEX7.brams,
                   f"{engine.bram_fraction() * 100:.0f}%")
    result.add_row("power (W)", engine.power_watts, "-", "-")
    result.metrics["lut_pct"] = engine.lut_fraction() * 100
    result.metrics["reg_pct"] = engine.register_fraction() * 100
    result.metrics["bram_pct"] = engine.bram_fraction() * 100
    result.metrics["fits_all_ndp"] = float(
        engine.fits_with_ndp(list(NDP_CORES)))
    result.notes.append(
        "paper: 38 % LUTs, 15 % registers, 43 % BRAMs, 5.57 W; enough "
        "headroom remains for every NDP unit")
    return result
