"""Figure 3 — software overheads of multi-device communication.

The motivating microbenchmark: SSD→GPU→NIC ("sending data to network
with hash computation on a GPU"), measured as (a) software-side latency
and (b) normalized CPU utilization, for the optimized-software
baseline, software-controlled P2P and the device-integration reference.
The integrated device has a built-in CRC32 block, so the checksum is
CRC32 in every column (the function choice does not change the
overhead structure the figure is about).
"""

from __future__ import annotations

from repro.experiments.common import (SOFTWARE_CATEGORIES, measure_send,
                                      measure_send_cpu, software_us)
from repro.experiments.result import ExperimentResult
from repro.schemes import IntegratedScheme, SwOptScheme, SwP2pScheme

SCHEMES = (("sw-opt", SwOptScheme), ("sw-p2p", SwP2pScheme),
           ("integrated", IntegratedScheme))

PROCESSING = "crc32"


def run_fig3() -> ExperimentResult:
    result = ExperimentResult(
        name="Fig 3: software overheads of SSD->processing->NIC",
        headers=["scheme", "total us", "software us", "norm. CPU"]
                + [f"{cat} us" for cat in SOFTWARE_CATEGORIES])
    latency = {}
    cpu = {}
    for name, scheme_cls in SCHEMES:
        sent = measure_send(scheme_cls, PROCESSING)
        cpu_ns = measure_send_cpu(scheme_cls, PROCESSING)
        latency[name] = sent
        cpu[name] = sum(cpu_ns.values())
    baseline_cpu = cpu["sw-opt"]
    for name, _ in SCHEMES:
        sent = latency[name]
        segs = sent.trace.breakdown_us()
        result.add_row(name, f"{sent.latency_us:.2f}",
                       f"{software_us(sent):.2f}",
                       f"{cpu[name] / baseline_cpu:.2f}",
                       *[f"{segs.get(cat, 0.0):.2f}"
                         for cat in SOFTWARE_CATEGORIES])
    result.metrics["sw_opt_total_us"] = latency["sw-opt"].latency_us
    result.metrics["p2p_total_us"] = latency["sw-p2p"].latency_us
    result.metrics["integrated_total_us"] = latency["integrated"].latency_us
    result.metrics["integrated_vs_swopt_latency"] = (
        latency["integrated"].latency_us / latency["sw-opt"].latency_us)
    result.metrics["integrated_vs_swopt_cpu"] = (
        cpu["integrated"] / baseline_cpu)
    result.notes.append(
        "paper shape: P2P trims data-copy but keeps control costs; the "
        "integrated device removes both (its bar is mostly device time)")
    return result
