"""Fault sweep: D2D latency and goodput under injected media errors.

Not a figure from the paper — a robustness experiment over the same
four schemes: sweep the ``flash.read`` transient-error rate and
measure per-request p50/p99 latency, goodput, and how many requests
still fail after each layer's bounded retries.  Every cell runs on a
fresh seeded testbed with a fresh :class:`~repro.faults.FaultPlan`,
so the sweep is fully deterministic; the 0 %% row must match an
uninstrumented run exactly (the fault-free hot path is one branch per
injection site).
"""

from __future__ import annotations

from repro.experiments.result import ExperimentResult
from repro.faults import FaultPlan, FaultRule
from repro.schemes import ALL_SCHEMES
from repro.trace import trace_section
from repro.units import KIB

REQUEST_SIZE = 16 * KIB
REQUESTS = 24          # measured requests per cell (plus one warmup)
FAULT_RATES = (0.0, 0.05, 0.20)
SEED = 13


def _percentile(samples, fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1,
                max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _run_cell(scheme_cls, rate: float) -> dict:
    """One (scheme, fault-rate) cell: sequential requests on a fresh
    testbed, errors counted rather than raised."""
    from repro.schemes import Testbed

    plan = FaultPlan([FaultRule("flash.read", probability=rate)])
    tb = Testbed(seed=SEED, faults=plan)
    scheme = scheme_cls(tb)
    data = bytes((i * 7) % 256 for i in range(REQUEST_SIZE))
    latencies = []
    errors = 0
    ok_bytes = 0
    for index in range(REQUESTS + 1):
        name = f"req-{index}.dat"
        tb.node0.host.install_file(name, data)
        conn = scheme.connect()

        def sender(sim):
            return (yield from scheme.send_file(tb.node0, conn, name, 0,
                                                REQUEST_SIZE))

        proc = tb.sim.process(sender(tb.sim))
        if not conn.offloaded:
            dst = tb.node1.host.alloc_buffer(REQUEST_SIZE)

            def receiver(sim):
                yield from tb.node1.host.kernel.socket_recv(
                    conn.flow1, REQUEST_SIZE, dst)

            tb.sim.process(receiver(tb.sim))
        tb.sim.run()   # drain: failed chains must also settle
        warmup = index == 0
        if proc.triggered and proc.ok:
            if not warmup:
                latencies.append(proc.value.latency_us)
                ok_bytes += REQUEST_SIZE
        elif not warmup:
            errors += 1
    tb.assert_no_leaks()
    # Goodput over time spent serving requests (not raw sim.now: the
    # inter-request drain waits out armed watchdog deadlines, which is
    # idle time, not service time).
    busy_ns = sum(latencies) * 1000.0
    return {
        "latencies": latencies,
        "errors": errors,
        "goodput_gbps": ok_bytes * 8 / busy_ns if busy_ns else 0.0,
        "injected": 0 if tb.sim.faults is None else tb.sim.faults.injected,
    }


def run_faults() -> ExperimentResult:
    result = ExperimentResult(
        name="Fault sweep: flash.read transient-error rate vs recovery "
             f"({REQUESTS} x {REQUEST_SIZE // KIB} KiB sends per cell)",
        headers=["scheme", "fault rate", "p50 us", "p99 us",
                 "goodput Gbps", "errors", "injected"])
    for scheme_name, scheme_cls in ALL_SCHEMES.items():
        for rate in FAULT_RATES:
            with trace_section(f"faults/{scheme_name}/{rate}"):
                cell = _run_cell(scheme_cls, rate)
            lat = cell["latencies"]
            p50 = _percentile(lat, 0.50) if lat else float("nan")
            p99 = _percentile(lat, 0.99) if lat else float("nan")
            result.add_row(scheme_name, f"{rate:.0%}", f"{p50:.1f}",
                           f"{p99:.1f}", f"{cell['goodput_gbps']:.3f}",
                           cell["errors"], cell["injected"])
            key = f"{scheme_name}_r{int(rate * 100)}"
            result.metrics[f"{key}_p99_us"] = p99
            result.metrics[f"{key}_errors"] = cell["errors"]
    result.notes.append(
        "transient media errors are retried with exponential backoff "
        "(host NVMe driver and engine NVMe controller); 'errors' counts "
        "requests that still failed after every retry budget")
    return result
