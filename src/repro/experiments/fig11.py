"""Figure 11 — latency breakdown of inter-device communications.

(a) SSD→NIC without processing; (b) SSD→Processing(MD5)→NIC.  The
baselines compute MD5 on the GPU; DCS-ctrl uses its MD5 NDP bank.
Direct SSD↔NIC P2P is impossible (neither device exposes internal
memory), so in (a) software-controlled P2P falls back to host staging —
the paper's own observation.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import (SOFTWARE_CATEGORIES, measure_send,
                                      software_us)
from repro.experiments.result import ExperimentResult
from repro.host.costs import CAT
from repro.schemes import DcsCtrlScheme, SwOptScheme, SwP2pScheme

SCHEMES = (("sw-opt", SwOptScheme), ("sw-p2p", SwP2pScheme),
           ("dcs-ctrl", DcsCtrlScheme))

DEVICE_DISPLAY = (CAT.READ, CAT.HASH, CAT.NDP, CAT.WIRE)


def _panel(result: ExperimentResult, processing: Optional[str],
           tag: str) -> dict:
    measured = {}
    for name, scheme_cls in SCHEMES:
        sent = measure_send(scheme_cls, processing)
        segs = sent.trace.breakdown_us()
        measured[name] = sent
        result.add_row(tag, name, f"{sent.latency_us:.2f}",
                       f"{software_us(sent):.2f}",
                       *[f"{segs.get(cat, 0.0):.2f}"
                         for cat in DEVICE_DISPLAY + SOFTWARE_CATEGORIES])
    return measured


def run_fig11() -> ExperimentResult:
    result = ExperimentResult(
        name="Fig 11: latency breakdown of inter-device communication "
             "(4 KiB)",
        headers=["panel", "scheme", "total us", "software us"]
                + [f"{cat}" for cat in
                   ("read", "hash", "ndp", "wire") + SOFTWARE_CATEGORIES])
    panel_a = _panel(result, None, "a:SSD->NIC")
    panel_b = _panel(result, "md5", "b:SSD->MD5->NIC")

    sw_a = software_us(panel_a["sw-p2p"])
    dcs_a = software_us(panel_a["dcs-ctrl"])
    sw_b = software_us(panel_b["sw-p2p"])
    dcs_b = software_us(panel_b["dcs-ctrl"])
    result.metrics["fig11a_software_reduction"] = (sw_a - dcs_a) / sw_a
    result.metrics["fig11b_software_reduction"] = (sw_b - dcs_b) / sw_b
    result.metrics["fig11a_total_reduction"] = (
        (panel_a["sw-p2p"].latency_us - panel_a["dcs-ctrl"].latency_us)
        / panel_a["sw-p2p"].latency_us)
    result.metrics["fig11b_total_reduction"] = (
        (panel_b["sw-p2p"].latency_us - panel_b["dcs-ctrl"].latency_us)
        / panel_b["sw-p2p"].latency_us)
    result.notes.append("paper: 42 % software-latency reduction without "
                        "NDP, 72 % with NDP (vs software-controlled P2P)")
    return result
