"""Fig 13, validated: simulate the projected configuration directly.

The paper *extrapolates* its Fig 13 from 10 Gbps measurements ("for the
estimation, we assume a 40-Gbps NIC, six NVMe SSDs, and a single 6-core
Intel Xeon CPU").  Our substrate can simply *build* that machine: a
40 Gbps wire and six SSD volumes per node, HDFS balancer traffic spread
across volumes.  The software baseline should hit the CPU wall below
line rate while DCS-ctrl, with its host CPUs nearly idle, runs to the
device limits — turning the paper's projection into a measurement.
"""

from __future__ import annotations

from repro.apps import HdfsConfig, run_hdfs_balancer
from repro.experiments.result import ExperimentResult
from repro.schemes import DcsCtrlScheme, SwOptScheme, Testbed
from repro.units import MIB, gbps

N_SSDS = 6
CORES = 6

CONFIG = HdfsConfig(blocks=48, block_size=1 * MIB, streams=12)


def _run(scheme_cls):
    # 40 Gbps-provisioned node: faster wire, six SSD volumes, and NDP
    # banks instantiated for 40 Gbps (each added core is <0.1-5 % of
    # the FPGA, Table III).
    tb = Testbed(seed=131, wire_rate=gbps(40), n_ssds=N_SSDS, cores=CORES,
                 ndp_target_gbps=40.0)
    scheme = scheme_cls(tb)
    run = run_hdfs_balancer(scheme, CONFIG)
    node_cores = (run.sender_cpu_total + run.receiver_cpu_total) * CORES
    return run.throughput_gbps, node_cores


def run_fig13_validate() -> ExperimentResult:
    result = ExperimentResult(
        name="Fig 13 validated: HDFS on a simulated 40 Gbps / 6-SSD node",
        headers=["scheme", "achieved Gbps", "node cores busy"])
    sw_gbps, sw_cores = _run(SwOptScheme)
    dcs_gbps, dcs_cores = _run(DcsCtrlScheme)
    result.add_row("sw-opt", f"{sw_gbps:.2f}", f"{sw_cores:.2f}")
    result.add_row("dcs-ctrl", f"{dcs_gbps:.2f}", f"{dcs_cores:.2f}")
    result.metrics["sw_gbps"] = sw_gbps
    result.metrics["dcs_gbps"] = dcs_gbps
    result.metrics["sw_cores"] = sw_cores
    result.metrics["dcs_cores"] = dcs_cores
    result.metrics["throughput_ratio"] = dcs_gbps / sw_gbps
    result.notes.append(
        "paper's projection: the software designs cannot serve 40 Gbps "
        "with one CPU; DCS-ctrl needs <= 3 cores and delivers ~2x the "
        "throughput under the core budget")
    return result
