"""Table I — qualitative comparison of inter-device communication schemes.

Made executable: each cell is derived from the scheme implementations'
actual capabilities rather than asserted (e.g. "flexible" = supports
every NDP function on off-the-shelf devices; "HW control path" = no
host CPU cycles on the data-path control).
"""

from __future__ import annotations

from repro.experiments.result import ExperimentResult
from repro.schemes import (DcsCtrlScheme, IntegratedScheme, SwOptScheme,
                           SwP2pScheme)


def run_table1() -> ExperimentResult:
    result = ExperimentResult(
        name="Table I: inter-device communication schemes",
        headers=["scheme", "data path", "control path", "flexibility"])

    def flexibility(scheme_cls) -> str:
        funcs = len(scheme_cls.supported_processing)
        if scheme_cls is IntegratedScheme:
            return f"fixed ({funcs} built-in function)"
        return f"flexible ({funcs} pluggable functions)"

    result.add_row("host-centric (sw-opt)", "indirect (host DRAM)",
                   "software (CPU)", flexibility(SwOptScheme))
    result.add_row("PCIe P2P (sw-p2p)", "direct where devices allow",
                   "software (CPU)", flexibility(SwP2pScheme))
    result.add_row("device integration", "direct (internal)",
                   "hardware", flexibility(IntegratedScheme))
    result.add_row("DCS-ctrl", "direct (engine-orchestrated)",
                   "hardware (HDC Engine)", flexibility(DcsCtrlScheme))
    result.metrics["dcs_functions"] = len(DcsCtrlScheme.supported_processing)
    result.metrics["integrated_functions"] = len(
        IntegratedScheme.supported_processing)
    return result
