"""The abstract's headline numbers, regenerated in one run.

* "reduces the latency of software-based direct D2D communications by
  42 %" (no NDP) "and by 72 %" (with NDP) — Fig 11;
* "reduces the CPU utilization by 52 %" — Fig 12;
* "or improves the throughput by roughly 2x for the same CPU
  utilization" — Fig 13.
"""

from __future__ import annotations

from repro.experiments.fig11 import run_fig11
from repro.experiments.fig12 import run_fig12_hdfs, run_fig12_swift
from repro.experiments.fig13 import run_fig13
from repro.experiments.result import ExperimentResult


def run_headline() -> ExperimentResult:
    fig11 = run_fig11()
    fig12a = run_fig12_swift()
    fig12b = run_fig12_hdfs()
    fig13 = run_fig13()

    result = ExperimentResult(
        name="Headline claims: paper vs reproduction",
        headers=["claim", "paper", "measured"])
    sw_red_a = fig11.metrics["fig11a_software_reduction"]
    sw_red_b = fig11.metrics["fig11b_software_reduction"]
    cpu_red_swift = 1 - fig12a.metrics["swift_dcs_vs_swopt_cpu"]
    cpu_red_hdfs = 1 - fig12b.metrics["hdfs_dcs_vs_swopt_cpu"]
    ratio = fig13.metrics["hdfs_throughput_ratio_dcs_vs_p2p"]
    result.add_row("software latency reduction (no NDP)", "42 %",
                   f"{sw_red_a * 100:.0f} %")
    result.add_row("software latency reduction (with NDP)", "72 %",
                   f"{sw_red_b * 100:.0f} %")
    result.add_row("CPU utilization reduction (Swift)", "~52 %",
                   f"{cpu_red_swift * 100:.0f} %")
    result.add_row("CPU utilization reduction (HDFS)", "~52 %",
                   f"{cpu_red_hdfs * 100:.0f} %")
    result.add_row("throughput at 6-core budget vs SW-P2P (HDFS)",
                   "2.06x", f"{ratio:.2f}x")
    result.metrics = {
        "latency_reduction_no_ndp": sw_red_a,
        "latency_reduction_ndp": sw_red_b,
        "cpu_reduction_swift": cpu_red_swift,
        "cpu_reduction_hdfs": cpu_red_hdfs,
        "throughput_ratio_hdfs": ratio,
    }
    return result
