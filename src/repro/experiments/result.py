"""The common experiment result container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.analysis.tables import format_table


@dataclass
class ExperimentResult:
    """Rows + headline metrics of one reproduced table/figure."""

    name: str
    headers: Sequence[str]
    rows: List[Sequence[object]] = field(default_factory=list)
    metrics: Dict[str, float] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        self.rows.append(list(cells))

    def render(self) -> str:
        """The paper-style text table plus notes and metrics."""
        parts = [format_table(self.headers, self.rows, title=self.name)]
        if self.metrics:
            parts.append("")
            parts.append("key metrics:")
            for key, value in self.metrics.items():
                parts.append(f"  {key} = {value:.3f}"
                             if isinstance(value, float) else
                             f"  {key} = {value}")
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)
