"""Host-side device drivers (the software control path of the baselines)."""

from repro.host.drivers.nvme_driver import HostNvmeDriver
from repro.host.drivers.nic_driver import HostNicDriver
from repro.host.drivers.gpu_driver import HostGpuDriver

__all__ = ["HostGpuDriver", "HostNicDriver", "HostNvmeDriver"]
