"""The host NVMe driver: queue pairs in host DRAM, MSI completions.

This is the software control path the paper measures against: every
I/O pays command building and submission on a CPU (device control) and
an interrupt + completion handling + wakeup on a CPU (request
completion).  The driver attributes the in-between time — when only
the device is working — to :data:`CAT.READ` / :data:`CAT.WRITE` on the
request's latency trace.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.breakdown import NULL_TRACE
from repro.devices.nvme.commands import (LBA_SIZE, NvmeCommand, OP_READ,
                                         OP_WRITE, prp_fields, prp_pages)
from repro.devices.nvme.ssd import NvmeSsd
from repro.errors import DeviceError, DeviceTimeout, ProtocolError
from repro.faults import HOST_NVME_POLICY, active_faults, watchdog
from repro.host.cpu import CpuPool
from repro.host.costs import CAT, SoftwareCosts
from repro.host.kernel.interrupts import InterruptController
from repro.pcie.switch import Fabric
from repro.sim.kernel import Simulator
from repro.units import PAGE


class HostNvmeDriver:
    """Submitter + interrupt-driven completer for one NVMe SSD."""

    QUEUE_DEPTH = 256

    def __init__(self, sim: Simulator, fabric: Fabric, cpu: CpuPool,
                 costs: SoftwareCosts, ssd: NvmeSsd,
                 irq: InterruptController, sq_addr: int, cq_addr: int,
                 prp_pool_addr: int, qid: int = 1):
        self.sim = sim
        self.fabric = fabric
        self.cpu = cpu
        self.costs = costs
        self.ssd = ssd
        self.qp = ssd.create_io_queue(qid, sq_addr, cq_addr,
                                      self.QUEUE_DEPTH, interrupt=True)
        self._prp_pool_addr = prp_pool_addr
        self._waiters: Dict[int, object] = {}  # cid -> Event
        irq.register(ssd.name, vector=qid, handler=self._on_irq)
        self._irq_busy = False
        # Command deadline + bounded-retry knobs (Linux nvme's timeout
        # and retry behaviour, first order).
        self.policy = HOST_NVME_POLICY
        self.retries = 0
        self.late_completions = 0
        metrics = sim.metrics
        if metrics is not None:
            metrics.polled("faults.retries", lambda: self.retries,
                           owner=f"{fabric.name}:host-nvme:{ssd.name}")

    # -- submission ----------------------------------------------------------

    def submit_io(self, opcode: int, slba: int, nbytes: int, buf_addr: int,
                  trace=NULL_TRACE):
        """Process: submit one I/O and wait for its completion.

        Returns the CQE.  CPU costs: block+NVMe submission (device
        control); IRQ + CQ handling + wakeup (request completion).
        """
        if nbytes % LBA_SIZE:
            raise ProtocolError(f"I/O of {nbytes} bytes is not block-sized")
        attempt = 0
        while True:
            failure = None
            cid = self.qp.allocate_cid()
            with trace.span(CAT.DEVICE_CONTROL):
                yield from self.cpu.run(
                    self.costs.block_submit + self.costs.nvme_submit,
                    CAT.DEVICE_CONTROL)
                pages = prp_pages(buf_addr, nbytes)
                prp1, prp2, blob = prp_fields(pages)
                if blob:
                    list_addr = self._prp_list_slot(cid)
                    self.fabric.address_map.write(list_addr, blob)
                    prp2 = list_addr
                command = NvmeCommand(opcode=opcode, cid=cid, nsid=1,
                                      prp1=prp1, prp2=prp2, slba=slba,
                                      nlb=nbytes // LBA_SIZE - 1)
                self.qp.push(command)
                yield from self.qp.ring_sq("host")
            waiter = self.sim.event()
            self._waiters[cid] = waiter
            submit_done = self.sim.now
            if active_faults(self.sim) is not None:
                watchdog(self.sim, waiter, self.policy.deadline_for(nbytes),
                         f"host NVMe cid {cid}", cid=cid, slba=slba,
                         size=nbytes)
            try:
                cqe, irq_at = yield waiter
            except DeviceTimeout as exc:
                # The command is lost (dropped CQE, lost MSI, dead
                # device): forget it and retry with a fresh cid.
                self._waiters.pop(cid, None)
                failure = exc
            else:
                device_cat = CAT.READ if opcode == OP_READ else CAT.WRITE
                trace.add(device_cat, irq_at - submit_done)
                trace.add(CAT.COMPLETION, self.sim.now - irq_at)
                with trace.span(CAT.COMPLETION):
                    # The waiting context reschedules after the IRQ wakeup.
                    yield from self.cpu.run(self.costs.context_switch,
                                            CAT.COMPLETION)
                if cqe.ok:
                    return cqe
                failure = DeviceError(
                    f"NVMe I/O failed with status {cqe.status} "
                    f"(opcode {opcode}, slba {slba}, {nbytes} bytes)")
            if attempt >= self.policy.retries:
                raise failure
            attempt += 1
            self.retries += 1
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.instant("recover.retry", track="faults",
                               name=f"host NVMe retry {attempt}",
                               cid=cid, attempt=attempt,
                               reason=str(failure))
            yield self.sim.timeout(self.policy.backoff(attempt))

    def _split_io(self, opcode: int, slba: int, nbytes: int, buf_addr: int,
                  trace):
        """Process: split an I/O at the device's MDTS and pipeline the
        pieces (the block layer splits bios the same way)."""
        mdts = self.ssd.config.max_transfer
        if nbytes <= mdts:
            return (yield from self.submit_io(opcode, slba, nbytes,
                                              buf_addr, trace))
        parts = []
        offset = 0
        while offset < nbytes:
            chunk = min(mdts, nbytes - offset)
            parts.append(self.sim.process(self.submit_io(
                opcode, slba + offset // LBA_SIZE, chunk, buf_addr + offset,
                trace)))
            offset += chunk
        last = None
        for part in parts:
            last = yield part
        return last

    def read(self, slba: int, nbytes: int, buf_addr: int, trace=NULL_TRACE):
        """Process: read blocks into ``buf_addr``; returns the last CQE."""
        return self._split_io(OP_READ, slba, nbytes, buf_addr, trace)

    def write(self, slba: int, nbytes: int, buf_addr: int, trace=NULL_TRACE):
        """Process: write blocks from ``buf_addr``; returns the last CQE."""
        return self._split_io(OP_WRITE, slba, nbytes, buf_addr, trace)

    def _prp_list_slot(self, cid: int) -> int:
        """A per-command scratch page for PRP lists."""
        return self._prp_pool_addr + (cid % self.QUEUE_DEPTH) * PAGE

    # -- completion ------------------------------------------------------------

    def _on_irq(self) -> None:
        if self._irq_busy:
            return  # handler already draining; it will pick the CQE up
        self._irq_busy = True
        self.sim.process(self._irq_handler(self.sim.now))

    def _irq_handler(self, irq_at: int):
        yield from self.cpu.run(self.costs.interrupt_entry, CAT.COMPLETION)
        drained_any = True
        while drained_any:
            drained_any = False
            while (cqe := self.qp.poll_completion()) is not None:
                drained_any = True
                yield from self.cpu.run(self.costs.nvme_complete,
                                        CAT.COMPLETION)
                yield from self.qp.ring_cq("host")
                waiter = self._waiters.pop(cqe.cid, None)
                if waiter is None or waiter.triggered:
                    # Completion for a command whose deadline already
                    # expired (it was retried with a fresh cid).
                    self.late_completions += 1
                    continue
                waiter.succeed((cqe, irq_at))
        self._irq_busy = False
