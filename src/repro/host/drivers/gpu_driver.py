"""The host GPU driver: memcpy setup, kernel launch, synchronization.

Models the user-mode-driver + ioctl path of CUDA-era stacks: each copy
and each launch costs CPU time, and the synchronous waits the baselines
use keep a thread occupied until the device finishes.  Categories
follow the paper's Fig 11 legend: driver control time is
``gpu-control``, transfer time is ``gpu-data-copy``, and the kernel's
own execution lands in ``hash``.
"""

from __future__ import annotations

from repro.analysis.breakdown import NULL_TRACE
from repro.devices.gpu.gpu import Gpu
from repro.host.cpu import CpuPool
from repro.host.costs import CAT, SoftwareCosts
from repro.sim.kernel import Simulator


class HostGpuDriver:
    """Synchronous control of one GPU."""

    def __init__(self, sim: Simulator, cpu: CpuPool, costs: SoftwareCosts,
                 gpu: Gpu):
        self.sim = sim
        self.cpu = cpu
        self.costs = costs
        self.gpu = gpu

    def copy_to_gpu(self, src_addr: int, gpu_offset: int, size: int,
                    trace=NULL_TRACE):
        """Process: H2D copy (driver setup + DMA + sync)."""
        with trace.span(CAT.GPU_COPY):
            yield from self.cpu.run(self.costs.gpu_memcpy_setup, CAT.GPU_COPY)
            yield from self.gpu.copy_in(src_addr, gpu_offset, size)
            yield from self.cpu.run(self.costs.gpu_sync, CAT.GPU_COPY)

    def copy_from_gpu(self, gpu_offset: int, dst_addr: int, size: int,
                      trace=NULL_TRACE):
        """Process: D2H copy (driver setup + DMA + sync)."""
        with trace.span(CAT.GPU_COPY):
            yield from self.cpu.run(self.costs.gpu_memcpy_setup, CAT.GPU_COPY)
            yield from self.gpu.copy_out(gpu_offset, dst_addr, size)
            yield from self.cpu.run(self.costs.gpu_sync, CAT.GPU_COPY)

    def checksum(self, kind: str, gpu_offset: int, size: int,
                 result_offset: int, trace=NULL_TRACE):
        """Process: launch a checksum kernel and wait; returns the digest."""
        with trace.span(CAT.GPU_CONTROL):
            yield from self.cpu.run(self.costs.gpu_launch, CAT.GPU_CONTROL)
        with trace.span(CAT.HASH):
            digest = yield from self.gpu.launch(kind, gpu_offset, size,
                                                result_offset)
        with trace.span(CAT.GPU_CONTROL):
            yield from self.cpu.run(self.costs.gpu_sync, CAT.GPU_CONTROL)
        return digest
