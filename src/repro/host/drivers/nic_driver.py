"""The host NIC driver: rings in host DRAM, NAPI-style receive.

Transmit: one LSO descriptor per ``send`` call (the optimized-software
baseline uses TSO, as the paper's SW-opt stack does), TX-complete
interrupt.  Receive: whole frames DMA into kernel buffers, an RX
interrupt kicks a NAPI-like poll loop that parses frames on the CPU and
hands payloads to the socket layer via a delivery callback.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.analysis.breakdown import NULL_TRACE
from repro.devices.nic.descriptors import RecvDescriptor, SendDescriptor
from repro.devices.nic.nic import Nic
from repro.errors import ConfigurationError
from repro.host.cpu import CpuPool
from repro.host.costs import CAT, SoftwareCosts
from repro.net.packet import Frame, HEADER_LEN, TCP_MSS, parse_frame
from repro.sim.kernel import Simulator
from repro.units import KIB


class HostNicDriver:
    """Submitter + interrupt-driven receive path for one NIC."""

    RING_DEPTH = 256
    RECV_BUF = 2 * KIB  # one full frame per kernel receive buffer

    def __init__(self, sim: Simulator, cpu: CpuPool, costs: SoftwareCosts,
                 nic: Nic, irq, tx_ring_addr: int, tx_status_addr: int,
                 rx_desc_addr: int, rx_cmpl_addr: int, rx_status_addr: int,
                 rx_buffer_base: int, tx_hdr_area: int):
        self.sim = sim
        self.cpu = cpu
        self.costs = costs
        self.nic = nic
        # One 64-byte header slot per in-flight descriptor: the NIC
        # fetches header templates asynchronously, so slots must not be
        # reused until their descriptor is consumed (ring depth bounds
        # the in-flight count).
        self._tx_hdr_area = tx_hdr_area
        self.tx_ring = nic.configure_tx(tx_ring_addr, self.RING_DEPTH,
                                        tx_status_addr, interrupt=True)
        self.rx_ring = nic.configure_rx(rx_desc_addr, rx_cmpl_addr,
                                        self.RING_DEPTH, rx_status_addr,
                                        interrupt=True)
        self._rx_buffer_base = rx_buffer_base
        self._tx_reclaimed = 0
        self._napi_running = False
        self.deliver: Optional[Callable[[Frame], None]] = None
        irq.register(nic.name, vector=0, handler=self._on_tx_irq)
        irq.register(nic.name, vector=1, handler=self._on_rx_irq)
        # Descriptor slot -> buffer address, maintained at post time (the
        # NIC echoes the descriptor index; the buffer travels with it).
        self._desc_buf: Dict[int, int] = {}
        # Pre-post the whole receive ring (kernel drivers keep it full).
        for i in range(self.RING_DEPTH - 1):
            self._post_buffer(self._rx_buffer_base + i * self.RECV_BUF)
        self._rx_ready = False

    def _post_buffer(self, buf_addr: int) -> None:
        index = self.rx_ring.post(RecvDescriptor(
            payload_addr=buf_addr, buf_len=self.RECV_BUF))
        self._desc_buf[index % self.RING_DEPTH] = buf_addr

    def start(self):
        """Process: arm the receive ring (one doorbell)."""
        yield from self.rx_ring.ring("host")
        self._rx_ready = True

    # -- transmit ------------------------------------------------------------

    def send(self, header: bytes, payload_addr: int, payload_len: int,
             trace=NULL_TRACE, mss: int = TCP_MSS):
        """Process: queue one LSO descriptor for transmission.

        Returns once the descriptor is in the ring — ``send(2)``
        semantics: the syscall does not wait for the wire.  Descriptor
        reclaim happens asynchronously in the TX-complete IRQ handler
        (whose CPU time is still accounted, just off the latency path).
        ``header`` is the 54-byte template the socket layer built; the
        driver stages it in the slot owned by this descriptor.
        """
        if len(header) != HEADER_LEN:
            raise ConfigurationError(
                f"header template must be {HEADER_LEN} bytes")
        with trace.span(CAT.DEVICE_CONTROL):
            while self.tx_ring.slots_free() == 0:
                yield self.sim.timeout(1000)  # ring backpressure
            yield from self.cpu.run(self.costs.nic_tx_submit,
                                    CAT.DEVICE_CONTROL)
            hdr_addr = (self._tx_hdr_area
                        + (self.tx_ring.tail % self.RING_DEPTH) * 64)
            self.nic.fabric.address_map.write(hdr_addr, header)
            index = self.tx_ring.push(SendDescriptor(
                hdr_addr=hdr_addr, hdr_len=HEADER_LEN,
                payload_addr=payload_addr, payload_len=payload_len,
                lso=True, mss=mss))
            yield from self.tx_ring.ring("host")
        return index

    def _on_tx_irq(self) -> None:
        self.sim.process(self._tx_irq_handler(self.sim.now))

    def _tx_irq_handler(self, irq_at: int):
        yield from self.cpu.run(self.costs.interrupt_entry, CAT.COMPLETION)
        consumed = self.tx_ring.consumer_index()
        # Reclaim every newly consumed descriptor (skb free, ring tidy).
        while self._tx_reclaimed < consumed:
            self._tx_reclaimed += 1
            yield from self.cpu.run(self.costs.nic_tx_submit,
                                    CAT.COMPLETION)

    # -- receive -------------------------------------------------------------

    def _on_rx_irq(self) -> None:
        if self._napi_running:
            return  # NAPI already polling; it will see the new frames
        self._napi_running = True
        self.sim.process(self._napi_poll())

    def _napi_poll(self):
        if self.deliver is None:
            raise ConfigurationError(
                "NIC driver received frames with no delivery callback")
        yield from self.cpu.run(self.costs.interrupt_entry, CAT.COMPLETION)
        progressed = True
        while progressed:
            progressed = False
            while (cmpl := self.rx_ring.poll_completion()) is not None:
                progressed = True
                yield from self.cpu.run(self.costs.nic_rx_per_frame,
                                        CAT.NETWORK)
                buf_addr = self._desc_buf.pop(cmpl.desc_index)
                raw = self.nic.fabric.address_map.read(
                    buf_addr, cmpl.payload_len)
                frame = parse_frame(raw)
                self.deliver(frame)
                # Recycle the buffer: repost and (cheaply) ring.
                self._post_buffer(buf_addr)
                yield from self.rx_ring.ring("host")
        self._napi_running = False
