"""CPU cores with per-category busy-time accounting."""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError
from repro.sim.kernel import Simulator
from repro.sim.resources import Resource
from repro.sim.stats import BusyTracker


class CpuPool:
    """A pool of identical cores.

    Software stages call :meth:`run` (a process) to consume CPU time:
    the stage holds one core for ``cost`` ns and the time is accounted
    to its category.  Contention between concurrent kernel paths falls
    out of the core Resource being FIFO-fair.
    """

    def __init__(self, sim: Simulator, cores: int = 1,
                 tracker: Optional[BusyTracker] = None,
                 owner: Optional[str] = None):
        if cores < 1:
            raise ConfigurationError(f"need at least one core, got {cores}")
        self.sim = sim
        self.cores = cores
        self.tracker = tracker if tracker is not None else BusyTracker(sim)
        self._cores = Resource(sim, capacity=cores)
        metrics = sim.metrics
        if metrics is not None and owner is not None:
            self.tracker.register("host.cpu.busy_ns", node=owner)
            metrics.polled("host.cpu.util", self.utilization, node=owner)
            metrics.polled("host.cpu.busy_cores",
                           lambda: self._cores.count, node=owner)

    def run(self, cost: int, category: str):
        """Process: execute ``cost`` ns of work accounted to ``category``."""
        if cost < 0:
            raise ConfigurationError(f"negative CPU cost: {cost}")
        with self._cores.request() as core:
            yield core
            yield self.sim.timeout(cost)
        self.tracker.add(category, cost)
        return cost

    def utilization(self, category: Optional[str] = None) -> float:
        """Busy fraction over the tracker window, normalized per pool."""
        return self.tracker.utilization(category, parallelism=self.cores)

    def utilization_by_category(self) -> dict[str, float]:
        """Per-category utilization over the tracker window."""
        return self.tracker.utilization_by_category(parallelism=self.cores)

    @property
    def busy_now(self) -> int:
        """Cores currently executing something."""
        return self._cores.count
