"""One simulated server node: fabric, devices, drivers, kernel, memory map.

:class:`Host` assembles everything a scheme needs on one machine.  The
physical address map mirrors the testbed in Table V / Fig 10:

====================  ===========================================
``0x0000_0000``        host DRAM (control structures + kernel buffers)
``0x8000_0000``        NVMe SSD BAR (doorbells)
``0x8100_0000``        NIC BAR (doorbells)
``0x9000_0000``        GPU memory BAR (GPUDirect window)
``0xB000_0000``        HDC Engine BRAM BAR (added by the DCS-ctrl scheme)
``0xC000_0000``        HDC Engine DDR3 (added by the DCS-ctrl scheme)
====================  ===========================================
"""

from __future__ import annotations

from typing import Optional

from repro.devices.gpu.gpu import Gpu
from repro.devices.nic.nic import Nic
from repro.devices.nvme.ssd import NvmeSsd
from repro.errors import AllocationError
from repro.host.cpu import CpuPool
from repro.host.costs import DEFAULT_COSTS, SoftwareCosts
from repro.host.drivers.gpu_driver import HostGpuDriver
from repro.host.drivers.nic_driver import HostNicDriver
from repro.host.drivers.nvme_driver import HostNvmeDriver
from repro.host.kernel.filesystem import MultiVolumeFs
from repro.host.kernel.interrupts import InterruptController
from repro.host.kernel.kernel import HostKernel
from repro.host.kernel.page_cache import PageCache
from repro.memory.allocator import ChunkAllocator
from repro.memory.region import MemoryRegion
from repro.net.wire import Wire
from repro.pcie.link import LINK_GEN2_X8
from repro.pcie.switch import Fabric
from repro.sim.kernel import Simulator
from repro.units import KIB, MIB

HOST_DRAM_BASE = 0x0000_0000
HOST_DRAM_SIZE = 512 * MIB
CONTROL_BASE = 0x0010_0000
BUFFER_BASE = 0x1000_0000
BUFFER_SIZE = 256 * MIB
BUFFER_CHUNK = 64 * KIB

SSD_BAR = 0x8000_0000
NIC_BAR = 0x8100_0000
GPU_BAR = 0x9000_0000
ENGINE_BAR = 0xB000_0000
ENGINE_DDR_BASE = 0xC000_0000


class Bump:
    """A trivial bump allocator for control structures (never freed)."""

    def __init__(self, base: int, size: int):
        self.base = base
        self.end = base + size
        self._next = base

    def take(self, size: int, align: int = 64) -> int:
        """Allocate ``size`` bytes aligned to ``align``."""
        addr = self._next + (-self._next % align)
        if addr + size > self.end:
            raise AllocationError("control memory exhausted")
        self._next = addr + size
        return addr


class Host:
    """A complete single node (host + SSD + NIC + optional GPU)."""

    def __init__(self, sim: Simulator, name: str = "node0", cores: int = 6,
                 costs: SoftwareCosts = DEFAULT_COSTS,
                 with_gpu: bool = True, n_ssds: int = 1):
        self.sim = sim
        self.name = name
        self.costs = costs
        self.fabric = Fabric(sim, name=name)
        self.fabric.add_port("host", LINK_GEN2_X8)
        self.fabric.add_region(MemoryRegion(
            "host-dram", base=HOST_DRAM_BASE, size=HOST_DRAM_SIZE,
            port="host", sparse=True, access_latency=300))
        self.cpu = CpuPool(sim, cores=cores, owner=name)
        self.control = Bump(CONTROL_BASE, BUFFER_BASE - CONTROL_BASE)
        self.buffers = ChunkAllocator(BUFFER_BASE, BUFFER_SIZE, BUFFER_CHUNK)

        if n_ssds < 1:
            raise AllocationError("need at least one SSD")
        # Fig 13's projection setup mounts six SSDs; every host supports
        # an array.  Volume 0 keeps the historical `host.ssd` alias.
        # BAR stride 128 KiB keeps every SSD window below the NIC BAR.
        self.ssds = [NvmeSsd(sim, self.fabric, f"ssd{i}" if i else "ssd",
                             bar_base=SSD_BAR + i * 0x0002_0000)
                     for i in range(n_ssds)]
        self.ssd = self.ssds[0]
        self.nic = Nic(sim, self.fabric, "nic", bar_base=NIC_BAR)
        self.gpu: Optional[Gpu] = (
            Gpu(sim, self.fabric, "gpu", bar_base=GPU_BAR)
            if with_gpu else None)
        # GPU memory offsets (not fabric addresses) for offload staging.
        self.gpu_mem: Optional[ChunkAllocator] = (
            ChunkAllocator(0, self.gpu.config.memory_bytes, BUFFER_CHUNK)
            if self.gpu is not None else None)

        self.irq = InterruptController(self.fabric)
        self.fs = MultiVolumeFs(self.ssds)
        self.page_cache = PageCache()

        self.nvme_drivers = [
            HostNvmeDriver(
                sim, self.fabric, self.cpu, costs, ssd, self.irq,
                sq_addr=self.control.take(64 * 256, align=4096),
                cq_addr=self.control.take(16 * 256, align=4096),
                prp_pool_addr=self.control.take(4096 * 256, align=4096))
            for ssd in self.ssds]
        self.nvme_driver = self.nvme_drivers[0]
        self.nic_driver = HostNicDriver(
            sim, self.cpu, costs, self.nic, self.irq,
            tx_ring_addr=self.control.take(32 * 256, align=4096),
            tx_status_addr=self.control.take(64, align=64),
            rx_desc_addr=self.control.take(32 * 256, align=4096),
            rx_cmpl_addr=self.control.take(32 * 256, align=4096),
            rx_status_addr=self.control.take(64, align=64),
            rx_buffer_base=self.control.take(2 * KIB * 256, align=4096),
            tx_hdr_area=self.control.take(64 * 256, align=64))
        self.gpu_driver: Optional[HostGpuDriver] = (
            HostGpuDriver(sim, self.cpu, costs, self.gpu)
            if self.gpu is not None else None)

        self.kernel = HostKernel(
            sim, self.fabric, self.cpu, costs, self.fs, self.page_cache,
            self.nvme_drivers, self.nic_driver, self.gpu_driver,
            header_pool_addr=self.control.take(64 * 1024, align=64))

    # -- wiring ---------------------------------------------------------------

    def connect_network(self, wire: Wire):
        """Attach the NIC to a wire and arm its receive ring.

        Returns the (already started) arming process; callers may run
        the simulator over it before traffic starts.
        """
        self.nic.connect(wire)
        return self.sim.process(self.nic_driver.start())

    # -- setup helpers ----------------------------------------------------------

    def install_file(self, name: str, data: bytes,
                     volume: Optional[int] = None) -> None:
        """Pre-load a file onto an SSD volume (functional, no timing)."""
        self.fs.install(name, data, volume=volume)

    def alloc_buffer(self, size: int) -> int:
        """Allocate a contiguous kernel data buffer; returns its address."""
        chunks = self.buffers.chunks_for(size)
        if chunks == 1:
            return self.buffers.alloc()
        return self.buffers.alloc_contiguous(chunks)

    def free_buffer(self, addr: int, size: int) -> None:
        """Free a buffer allocated by :meth:`alloc_buffer`."""
        self.buffers.free(addr, self.buffers.chunks_for(size))
