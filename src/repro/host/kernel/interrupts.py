"""Interrupt delivery from the fabric to driver handlers.

The fabric delivers MSIs as ``(source_port, vector)``; the controller
dispatches to whichever driver registered that pair.  Handler CPU cost
(IRQ prologue, handler body, wakeup) is charged by the drivers
themselves so it lands in the right accounting category.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.errors import ConfigurationError
from repro.pcie.switch import Fabric


class InterruptController:
    """Routes MSIs raised on the fabric to registered handlers."""

    def __init__(self, fabric: Fabric, host_port: str = "host"):
        self._handlers: Dict[Tuple[str, int], Callable[[], None]] = {}
        self.spurious = 0
        fabric.register_msi_handler(host_port, self._dispatch)

    def register(self, source_port: str, vector: int,
                 handler: Callable[[], None]) -> None:
        """Bind (device port, vector) to a zero-argument handler."""
        key = (source_port, vector)
        if key in self._handlers:
            raise ConfigurationError(f"IRQ {key} already registered")
        self._handlers[key] = handler

    def _dispatch(self, source_port: str, vector: int) -> None:
        handler = self._handlers.get((source_port, vector))
        if handler is None:
            self.spurious += 1
            return
        handler()
