"""The mini OS kernel: VFS/extent FS, page cache, sockets, interrupts.

Composable, *timed* kernel services used by the scheme implementations.
Every stage charges CPU time through the host's
:class:`~repro.host.cpu.CpuPool` under the category scheme of
:class:`~repro.host.costs.CAT`.
"""

from repro.host.kernel.filesystem import (ExtentFilesystem, FileExtent,
                                          MultiVolumeFs)
from repro.host.kernel.page_cache import PageCache
from repro.host.kernel.interrupts import InterruptController
from repro.host.kernel.kernel import HostKernel

__all__ = [
    "ExtentFilesystem",
    "FileExtent",
    "HostKernel",
    "InterruptController",
    "MultiVolumeFs",
    "PageCache",
]
