"""A page cache with LRU eviction and dirty-page tracking.

Two roles in the reproduction:

* the *Linux baseline* of Fig 8 pays page-cache management costs on
  every buffered I/O, which DCS-ctrl and the optimized baselines bypass
  with direct I/O;
* the HDC Driver must preserve consistency when bypassing it: "simply
  bypassing page caches violates the data consistency when the latest
  data are located in page caches" (paper §IV-B), so it asks this cache
  which pages are dirty before building D2D commands.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.units import PAGE


class PageCache:
    """(file, page index) → page bytes, LRU, with dirty bits."""

    def __init__(self, capacity_pages: int = 4096):
        if capacity_pages < 1:
            raise ConfigurationError("page cache needs at least one page")
        self.capacity_pages = capacity_pages
        self._pages: "OrderedDict[Tuple[str, int], bytes]" = OrderedDict()
        self._dirty: set[Tuple[str, int]] = set()
        self.hits = 0
        self.misses = 0

    def lookup(self, name: str, page_index: int) -> Optional[bytes]:
        """The cached page, refreshing LRU position; None on miss."""
        key = (name, page_index)
        page = self._pages.get(key)
        if page is None:
            self.misses += 1
            return None
        self._pages.move_to_end(key)
        self.hits += 1
        return page

    def insert(self, name: str, page_index: int, data: bytes,
               dirty: bool = False) -> None:
        """Cache one page, evicting LRU pages as needed."""
        if len(data) != PAGE:
            raise ConfigurationError(
                f"page cache stores whole {PAGE}-byte pages, got {len(data)}")
        key = (name, page_index)
        self._pages[key] = data
        self._pages.move_to_end(key)
        if dirty:
            self._dirty.add(key)
        while len(self._pages) > self.capacity_pages:
            victim, _ = self._pages.popitem(last=False)
            if victim in self._dirty:
                # The paper's workloads write through before D2D; a
                # dirty eviction would need writeback we don't model.
                raise ConfigurationError(
                    f"evicting dirty page {victim} without writeback")

    def mark_clean(self, name: str, page_index: int) -> None:
        """Clear the dirty bit (after writeback)."""
        self._dirty.discard((name, page_index))

    def dirty_pages(self, name: str, first_page: int,
                    npages: int) -> List[int]:
        """Dirty page indices intersecting [first_page, first_page+npages).

        This is the HDC Driver's consistency probe: any page returned
        here must be sourced from host memory, not from flash.
        """
        return [idx for idx in range(first_page, first_page + npages)
                if (name, idx) in self._dirty]

    def dirty_data(self, name: str, page_index: int) -> bytes:
        """The bytes of a dirty cached page."""
        key = (name, page_index)
        if key not in self._dirty:
            raise ConfigurationError(f"page {key} is not dirty")
        return self._pages[key]

    def invalidate(self, name: str) -> int:
        """Drop every clean page of ``name``; returns pages dropped."""
        doomed = [k for k in self._pages
                  if k[0] == name and k not in self._dirty]
        for key in doomed:
            del self._pages[key]
        return len(doomed)

    @property
    def resident_pages(self) -> int:
        return len(self._pages)

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
