"""An extent-based file system over the NVMe namespace.

Maps file names to runs of logical blocks so every design — the host
kernel's read path and the HDC Driver's metadata lookup (paper §IV-B:
"interacts with the existing kernel file system ... to find necessary
metadata such as block addresses") — resolves the same file to the same
LBAs.  Allocation is a simple append-only extent allocator; the paper's
experiments never fragment or delete.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.devices.nvme.commands import LBA_SIZE
from repro.devices.nvme.ssd import NvmeSsd
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class FileExtent:
    """A contiguous run of blocks belonging to a file."""

    slba: int
    nblocks: int

    @property
    def nbytes(self) -> int:
        return self.nblocks * LBA_SIZE


class ExtentFilesystem:
    """Name → extents mapping plus block allocation."""

    def __init__(self, capacity_blocks: int, first_lba: int = 64):
        self._files: Dict[str, List[FileExtent]] = {}
        self._sizes: Dict[str, int] = {}
        self._cursor = first_lba
        self._capacity_blocks = capacity_blocks

    def create(self, name: str, size: int) -> List[FileExtent]:
        """Allocate blocks for a new file of ``size`` bytes."""
        if name in self._files:
            raise ConfigurationError(f"file {name!r} already exists")
        if size <= 0:
            raise ConfigurationError(f"file size must be positive: {size}")
        nblocks = -(-size // LBA_SIZE)
        if self._cursor + nblocks > self._capacity_blocks:
            raise ConfigurationError("filesystem out of space")
        extent = FileExtent(slba=self._cursor, nblocks=nblocks)
        self._cursor += nblocks
        self._files[name] = [extent]
        self._sizes[name] = size
        return [extent]

    def exists(self, name: str) -> bool:
        return name in self._files

    def size_of(self, name: str) -> int:
        """Logical file size in bytes."""
        return self._sizes[self._lookup_name(name)]

    def extents_for(self, name: str, offset: int,
                    length: int) -> List[FileExtent]:
        """The extents covering [offset, offset+length) of ``name``.

        Offsets must be block-aligned — both the paper's direct-I/O
        path and the HDC Driver operate on whole blocks.
        """
        self._lookup_name(name)
        if offset % LBA_SIZE:
            raise ConfigurationError(
                f"offset {offset} is not block-aligned")
        if length <= 0:
            raise ConfigurationError(f"length must be positive: {length}")
        if offset + length > self._sizes[name] + (-self._sizes[name] % LBA_SIZE):
            raise ConfigurationError(
                f"range [{offset}, {offset + length}) beyond file of "
                f"{self._sizes[name]} bytes")
        spans: List[FileExtent] = []
        skip = offset // LBA_SIZE
        want = -(-length // LBA_SIZE)
        for extent in self._files[name]:
            if skip >= extent.nblocks:
                skip -= extent.nblocks
                continue
            take = min(extent.nblocks - skip, want)
            spans.append(FileExtent(slba=extent.slba + skip, nblocks=take))
            want -= take
            skip = 0
            if want == 0:
                break
        return spans

    def _lookup_name(self, name: str) -> str:
        if name not in self._files:
            raise ConfigurationError(f"no such file {name!r}")
        return name

    # -- test/benchmark setup ------------------------------------------------

    def install(self, ssd: NvmeSsd, name: str, data: bytes) -> None:
        """Create ``name`` with ``data`` written straight to flash.

        Functional setup only (no timing) — the experiments pre-populate
        storage the way the paper's testbed pre-loads its datasets.
        """
        extents = self.create(name, len(data))
        padded = data + bytes(-len(data) % LBA_SIZE)
        offset = 0
        for extent in extents:
            chunk = padded[offset:offset + extent.nbytes]
            ssd.flash.write_blocks(extent.slba, chunk)
            offset += extent.nbytes


class MultiVolumeFs:
    """One file namespace over several SSD volumes.

    The paper's Fig 13 setup mounts six NVMe SSDs per node; each volume
    keeps its own extent allocator, and files are placed round-robin
    (or explicitly) across volumes.  Single-volume hosts see the same
    API, so nothing upstack cares how many SSDs exist.
    """

    def __init__(self, ssds: List[NvmeSsd]):
        if not ssds:
            raise ConfigurationError("need at least one SSD volume")
        self.ssds = list(ssds)
        self.volumes = [ExtentFilesystem(ssd.flash.capacity_blocks)
                        for ssd in ssds]
        self._volume_of: Dict[str, int] = {}
        self._next = 0

    def create(self, name: str, size: int,
               volume: int | None = None) -> List[FileExtent]:
        """Allocate a new file on ``volume`` (round-robin by default)."""
        if name in self._volume_of:
            raise ConfigurationError(f"file {name!r} already exists")
        if volume is None:
            volume = self._next
            self._next = (self._next + 1) % len(self.volumes)
        extents = self.volumes[volume].create(name, size)
        self._volume_of[name] = volume
        return extents

    def exists(self, name: str) -> bool:
        return name in self._volume_of

    def volume_of(self, name: str) -> int:
        """Which SSD volume holds ``name``."""
        try:
            return self._volume_of[name]
        except KeyError:
            raise ConfigurationError(f"no such file {name!r}") from None

    def size_of(self, name: str) -> int:
        return self.volumes[self.volume_of(name)].size_of(name)

    def extents_for(self, name: str, offset: int,
                    length: int) -> List[FileExtent]:
        return self.volumes[self.volume_of(name)].extents_for(
            name, offset, length)

    def install(self, name: str, data: bytes,
                volume: int | None = None) -> None:
        """Create + write a file straight to its volume's flash."""
        if volume is not None:
            volume %= len(self.volumes)
        self.create(name, len(data), volume=volume)
        vol = self.volume_of(name)
        padded = data + bytes(-len(data) % LBA_SIZE)
        offset = 0
        for extent in self.volumes[vol].extents_for(name, 0, len(data)):
            chunk = padded[offset:offset + extent.nbytes]
            self.ssds[vol].flash.write_blocks(extent.slba, chunk)
            offset += extent.nbytes
