"""The host kernel facade: timed storage, network and checksum services.

Schemes compose these calls into end-to-end pipelines.  Each service
charges CPU through the host's pool (utilization figures) and annotates
the request's :class:`~repro.analysis.breakdown.LatencyTrace` (latency
figures).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.analysis.breakdown import NULL_TRACE
from repro.devices.nvme.commands import LBA_SIZE
from repro.errors import ConfigurationError, ProtocolError
from repro.host.cpu import CpuPool
from repro.host.costs import CAT, SoftwareCosts
from repro.host.kernel.filesystem import MultiVolumeFs

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.host.drivers.gpu_driver import HostGpuDriver
    from repro.host.drivers.nic_driver import HostNicDriver
    from repro.host.drivers.nvme_driver import HostNvmeDriver
from repro.host.kernel.page_cache import PageCache
from repro.net.headers import Ipv4Header
from repro.net.packet import Frame, HEADER_LEN, TCP_MSS
from repro.net.tcp import FlowTable, TcpFlow
from repro.pcie.switch import Fabric
from repro.sim.kernel import Simulator
from repro.units import KIB, PAGE


class _RxStream:
    """Per-flow in-order receive stream assembled by the NAPI path."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.buffer = bytearray()
        self._wake = sim.event()

    def append(self, payload: bytes) -> None:
        self.buffer.extend(payload)
        wake, self._wake = self._wake, self.sim.event()
        wake.succeed()

    def take(self, size: int):
        """Process: wait until ``size`` bytes are buffered, then pop them."""
        while len(self.buffer) < size:
            yield self._wake
        data = bytes(self.buffer[:size])
        del self.buffer[:size]
        return data


class HostKernel:
    """Composable kernel services for one host."""

    MAX_LSO = 64 * KIB

    def __init__(self, sim: Simulator, fabric: Fabric, cpu: CpuPool,
                 costs: SoftwareCosts, fs: "MultiVolumeFs",
                 page_cache: PageCache,
                 nvme_drivers: list["HostNvmeDriver"],
                 nic: Optional["HostNicDriver"],
                 gpu: Optional["HostGpuDriver"],
                 header_pool_addr: int):
        self.sim = sim
        self.fabric = fabric
        self.cpu = cpu
        self.costs = costs
        self.fs = fs
        self.page_cache = page_cache
        self.nvme_drivers = nvme_drivers
        self.nvme = nvme_drivers[0]
        self.nic = nic
        self.gpu = gpu
        self._header_pool_addr = header_pool_addr
        self._flows = FlowTable()
        self._streams: Dict[int, _RxStream] = {}   # flow.uid -> stream
        self._header_slots: Dict[int, int] = {}    # flow.uid -> header addr
        self._next_header_slot = 0
        if nic is not None:
            nic.deliver = self._deliver_frame

    # -- syscall boundary ------------------------------------------------------

    def syscall_enter(self, trace=NULL_TRACE):
        """Process: the user→kernel crossing."""
        with trace.span(CAT.KERNEL_OTHER):
            yield from self.cpu.run(self.costs.syscall_entry,
                                    CAT.KERNEL_OTHER)

    def syscall_exit(self, trace=NULL_TRACE):
        """Process: the kernel→user crossing."""
        with trace.span(CAT.KERNEL_OTHER):
            yield from self.cpu.run(self.costs.syscall_exit,
                                    CAT.KERNEL_OTHER)

    # -- storage ---------------------------------------------------------------

    def _resolve(self, name: str, offset: int, size: int, trace):
        """Process: VFS + extent lookup; returns the extent list."""
        with trace.span(CAT.FILESYSTEM):
            yield from self.cpu.run(
                self.costs.vfs_lookup + self.costs.extent_lookup,
                CAT.FILESYSTEM)
        return self.fs.extents_for(name, offset, _block_align(size))

    def _driver_for(self, name: str) -> "HostNvmeDriver":
        return self.nvme_drivers[self.fs.volume_of(name)]

    def file_read_direct(self, name: str, offset: int, size: int,
                         buf_addr: int, trace=NULL_TRACE):
        """Process: direct-I/O read (page cache bypassed) into ``buf_addr``.

        This is the optimized-software read path every measured design
        shares (paper §III-E); returns the number of bytes read.
        """
        extents = yield from self._resolve(name, offset, size, trace)
        driver = self._driver_for(name)
        dest = buf_addr
        for extent in extents:
            yield from driver.read(extent.slba, extent.nbytes, dest, trace)
            dest += extent.nbytes
        return size

    def file_write_direct(self, name: str, offset: int, size: int,
                          buf_addr: int, trace=NULL_TRACE):
        """Process: direct-I/O write from ``buf_addr``."""
        extents = yield from self._resolve(name, offset, size, trace)
        driver = self._driver_for(name)
        src = buf_addr
        for extent in extents:
            yield from driver.write(extent.slba, extent.nbytes, src, trace)
            src += extent.nbytes
        return size

    def file_read_buffered(self, name: str, offset: int, size: int,
                           buf_addr: int, trace=NULL_TRACE):
        """Process: the *unoptimized* buffered read path (Fig 8's "Linux").

        Pays page-cache lookup/insert per page and a kernel→user copy on
        top of the direct path.
        """
        npages = -(-_block_align(size) // PAGE)
        with trace.span(CAT.FILESYSTEM):
            yield from self.cpu.run(
                self.costs.page_cache_check
                + npages * self.costs.page_cache_per_page,
                CAT.FILESYSTEM)
        yield from self.file_read_direct(name, offset, size, buf_addr, trace)
        with trace.span(CAT.FILESYSTEM):
            yield from self.cpu.run(
                npages * self.costs.page_cache_per_page, CAT.FILESYSTEM)
        with trace.span(CAT.DATA_COPY):
            yield from self.cpu.run(self.costs.copy_cost(size), CAT.DATA_COPY)
        return size

    # -- network -----------------------------------------------------------------

    def register_flow(self, flow: TcpFlow) -> None:
        """Install an established connection into the socket layer."""
        self._flows.add(flow)
        self._streams[flow.uid] = _RxStream(self.sim)

    def _deliver_frame(self, frame: Frame) -> None:
        flow = self._flows.lookup(frame)
        if flow is None:
            raise ProtocolError(
                f"frame for unknown flow {frame.ip.dst_ip}:"
                f"{frame.tcp.dst_port}")
        payload = flow.accept(frame)
        if payload:
            self._streams[flow.uid].append(payload)

    def _build_header(self, flow: TcpFlow, payload_len: int) -> bytes:
        """The LSO header template for the next send on ``flow``."""
        header = (flow.eth_header().pack()
                  + Ipv4Header(src_ip=flow.local.ip, dst_ip=flow.remote.ip,
                               total_length=40).pack()
                  + flow.next_header(payload_len).pack(
                      flow.local.ip, flow.remote.ip, b""))
        assert len(header) == HEADER_LEN
        return header

    def socket_send(self, flow: TcpFlow, payload_addr: int, size: int,
                    trace=NULL_TRACE, copy_from_user: bool = False):
        """Process: send ``size`` bytes already staged at ``payload_addr``.

        CPU costs: socket call + buffer management + per-segment TCP
        work (network), one descriptor per 64 KiB LSO batch (device
        control via the driver).  ``copy_from_user`` adds the classic
        user→kernel copy the optimized stacks avoid.
        """
        if self.nic is None:
            raise ConfigurationError("host has no NIC")
        if copy_from_user:
            with trace.span(CAT.DATA_COPY):
                yield from self.cpu.run(self.costs.copy_cost(size),
                                        CAT.DATA_COPY)
        with trace.span(CAT.NETWORK):
            yield from self.cpu.run(
                self.costs.socket_call + self.costs.socket_buffer_mgmt,
                CAT.NETWORK)
        sent = 0
        while sent < size or (size == 0 and sent == 0):
            batch = min(self.MAX_LSO, size - sent)
            nsegs = max(1, -(-batch // TCP_MSS))
            with trace.span(CAT.NETWORK):
                yield from self.cpu.run(
                    self.costs.skb_alloc + nsegs * self.costs.tcp_per_segment,
                    CAT.NETWORK)
            header = self._build_header(flow, batch)
            yield from self.nic.send(header, payload_addr + sent, batch,
                                     trace)
            sent += batch
            if size == 0:
                break
        return size

    def socket_recv(self, flow: TcpFlow, size: int, gather_addr: int,
                    trace=NULL_TRACE):
        """Process: receive exactly ``size`` bytes into ``gather_addr``.

        Waits for the NAPI path to assemble the stream, then pays the
        gather copy into contiguous memory (the "data gathering
        problem", paper §V-C2) and writes the bytes there.
        """
        stream = self._streams.get(flow.uid)
        if stream is None:
            raise ConfigurationError("flow not registered")
        with trace.span(CAT.NETWORK):
            yield from self.cpu.run(
                self.costs.socket_call + self.costs.socket_buffer_mgmt,
                CAT.NETWORK)
        data = yield from stream.take(size)
        with trace.span(CAT.DATA_COPY):
            yield from self.cpu.run(self.costs.copy_cost(size),
                                    CAT.DATA_COPY)
        self.fabric.address_map.write(gather_addr, data)
        return data

    # -- CPU checksum ----------------------------------------------------------

    def cpu_checksum(self, kind: str, buf_addr: int, size: int,
                     trace=NULL_TRACE):
        """Process: checksum ``size`` bytes on a CPU core; returns digest."""
        from repro.algos import crc32_digest, md5_digest
        with trace.span(CAT.HASH):
            yield from self.cpu.run(self.costs.cpu_hash_cost(kind, size),
                                    CAT.HASH)
        data = self.fabric.address_map.read(buf_addr, size)
        if kind == "md5":
            return md5_digest(data)
        if kind == "crc32":
            return crc32_digest(data)
        raise ConfigurationError(f"unsupported CPU checksum {kind!r}")


def _block_align(size: int) -> int:
    return size + (-size % LBA_SIZE)
