"""The calibrated software cost model — every CPU-time constant, once.

Sources per constant are noted inline: the paper's own breakdowns
(Figs 3, 8, 11), the testbed era (Xeon E5-2630 v3 @ 2.3 GHz, CentOS 6.5
/ kernel 2.6.32, pre-KPTI), and published kernel-path measurements from
the same period (FlexSC [12], mTCP [15], Moneta [9], NVMeDirect [43]).
Absolute values are calibrated, not measured (DESIGN.md §4); the
experiments depend on their *relative* magnitudes, which follow the
literature.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import Rate, gibps, nsec, usec


class CAT:
    """Accounting categories: one per component in the paper's figures."""

    FILESYSTEM = "filesystem"        # VFS, extents, page cache, block layer
    NETWORK = "network"              # socket layer, TCP/IP, skbs
    DEVICE_CONTROL = "device-control"  # command build/submit, doorbells
    COMPLETION = "request-completion"  # IRQs, CQ handling, wakeups
    DATA_COPY = "data-copy"          # user<->kernel and staging memcpys
    GPU_COPY = "gpu-data-copy"       # CPU<->GPU transfers (driver side)
    GPU_CONTROL = "gpu-control"      # kernel launches, sync
    HASH = "hash"                    # checksum computed on the CPU
    KERNEL_OTHER = "kernel-other"    # syscall entry/exit, scheduling
    APPLICATION = "application"      # app-level work (Swift proxy, HDFS
                                     # datanode) — identical across schemes
    SCOREBOARD = "scoreboard"        # HDC Engine hardware stage (latency only)
    READ = "device-read"             # SSD media time (latency only)
    WRITE = "device-write"           # SSD media time (latency only)
    WIRE = "wire"                    # network serialization (latency only)
    NDP = "ndp"                      # NDP unit processing (latency only)
    HDC_DRIVER = "hdc-driver"        # DCS-ctrl's thin kernel module


@dataclass(frozen=True)
class SoftwareCosts:
    """All host-software CPU costs (ns unless noted)."""

    # --- boundaries (FlexSC measures ~1-2 us for a full syscall on
    # this era's hardware once argument checking is included) ---------
    syscall_entry: int = nsec(600)
    syscall_exit: int = nsec(500)
    ioctl_dispatch: int = nsec(500)      # extra demux for driver ioctls
    context_switch: int = usec(2.4)      # schedule + cache disturbance
    wakeup_blocked: int = usec(1.4)      # directed wakeup of an ioctl
                                         # sleeper (cheaper than a full
                                         # context switch)
    interrupt_entry: int = usec(1.0)     # IRQ prologue/epilogue

    # --- storage path (Moneta's breakdown of the 2.6-era block stack) -
    vfs_open: int = usec(1.5)
    vfs_lookup: int = usec(1.6)          # dentry/inode per request
    extent_lookup: int = usec(1.1)       # logical->LBA mapping per request
    page_cache_check: int = nsec(350)    # per request
    page_cache_per_page: int = nsec(120) # per 4 KiB page touched
    block_submit: int = usec(3.0)        # bio alloc, queue, plug/unplug
    nvme_submit: int = usec(1.0)         # SQE build + tail update
    nvme_complete: int = usec(2.2)       # CQ read, bio endio, unlock

    # --- network path (mTCP reports multi-us per-call kernel TX on
    # exactly this kernel generation) ----------------------------------
    socket_call: int = usec(3.0)         # sock_sendmsg/recvmsg fixed part
    tcp_per_segment: int = nsec(450)     # header build (csum offloaded)
    skb_alloc: int = nsec(350)           # per packet
    nic_tx_submit: int = nsec(700)       # per descriptor (LSO batches)
    nic_rx_per_frame: int = nsec(380)    # NAPI poll work per frame
    socket_buffer_mgmt: int = usec(1.0)  # per call: rmem/wmem accounting

    # --- memcpy (one core streaming: well below DRAM peak) -----------
    memcpy_rate: Rate = gibps(6.0)
    memcpy_call: int = nsec(250)         # fixed per copy_{to,from}_user

    # --- GPU driver (user-mode driver + ioctl + doorbell on K20m-era
    # CUDA: ~5-10 us launch, ~3 us per memcpy setup, sync polling) ----
    gpu_launch: int = usec(7)
    gpu_memcpy_setup: int = usec(3.0)
    gpu_sync: int = usec(2.0)

    # --- CPU-side checksum rates (single 2.3 GHz core) ----------------
    cpu_md5_rate: Rate = gibps(0.45)
    cpu_crc32_rate: Rate = gibps(1.8)

    # --- DCS-ctrl host components (thin by design, §IV-B) ------------
    hdc_metadata: int = usec(1.3)        # cached extent + connection lookup
    hdc_build_command: int = nsec(900)   # metadata -> D2D command bytes
    hdc_submit: int = nsec(300)          # command queue write + doorbell
    hdc_complete: int = nsec(800)        # IRQ handler + ioctl return

    def copy_cost(self, size: int) -> int:
        """CPU time for one memcpy of ``size`` bytes."""
        return self.memcpy_call + self.memcpy_rate.duration(size)

    def cpu_hash_cost(self, kind: str, size: int) -> int:
        """CPU time to checksum ``size`` bytes on a core."""
        if kind == "md5":
            return self.cpu_md5_rate.duration(size)
        if kind == "crc32":
            return self.cpu_crc32_rate.duration(size)
        raise ValueError(f"no CPU rate calibrated for {kind!r}")


DEFAULT_COSTS = SoftwareCosts()
