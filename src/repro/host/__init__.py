"""Host software substrate.

Models the part of the system the paper is trying to get out of the
way: CPU cores executing kernel code.  Every software stage consumes
simulated CPU time in a labelled category via :class:`CpuPool`, which
is where the CPU-utilization breakdowns (Figs 3b, 8, 12, 13) come from;
the same stages sit on request critical paths, which is where the
latency breakdowns (Figs 3a, 11) come from.

All timing constants live in :mod:`repro.host.costs` (one table,
documented per constant).
"""

from repro.host.cpu import CpuPool
from repro.host.costs import CAT, DEFAULT_COSTS, SoftwareCosts

__all__ = ["CAT", "CpuPool", "DEFAULT_COSTS", "SoftwareCosts"]
