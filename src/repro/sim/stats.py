"""Measurement helpers: busy-time accounting, histograms, throughput.

The evaluation in the paper reports three kinds of numbers and these
classes are their direct sources:

* **latency breakdowns** (Figs 3a, 11) — :class:`BusyTracker` with one
  category per software/hardware component;
* **CPU-utilization breakdowns** (Figs 3b, 8, 12) — :class:`BusyTracker`
  attached to CPU cores, normalised over a measurement window;
* **throughput** (Fig 13) — :class:`Meter`.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, Iterable, List, Optional

from repro.errors import SimulationError
from repro.sim.kernel import Simulator


class BusyTracker:
    """Accumulates busy time per named category.

    Components call :meth:`add` with an explicit duration (the usual
    case: a CPU model that just consumed ``cost`` ns doing "filesystem"
    work), and experiments read totals or utilizations over a window.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._busy: Dict[str, int] = defaultdict(int)
        self._window_start: int = 0

    def register(self, name: str, **labels: str) -> "BusyTracker":
        """Expose this tracker through the metrics registry as one
        polled counter series per category (``category=<key>`` added to
        ``labels``).  A no-op when no metrics session is installed, so
        callers can chain it unconditionally."""
        metrics = self.sim.metrics
        if metrics is not None:
            metrics.polled_map(name, "category", self.by_category, **labels)
        return self

    def add(self, category: str, duration: int) -> None:
        """Account ``duration`` ns of busy time to ``category``."""
        if duration < 0:
            raise SimulationError(f"negative busy duration: {duration}")
        self._busy[category] += duration

    def reset_window(self) -> None:
        """Start a fresh measurement window at the current time.

        Categories seen before the reset stay present (at zero) so that
        readers iterating a stable category set — e.g. a Fig 12 series
        differencing windows — see consistent keys rather than a
        KeyError or a stale pre-reset value.
        """
        for category in self._busy:
            self._busy[category] = 0
        self._window_start = self.sim.now

    def total(self, category: Optional[str] = None) -> int:
        """Total busy ns for one category, or across all categories."""
        if category is not None:
            return self._busy.get(category, 0)
        return sum(self._busy.values())

    def by_category(self) -> Dict[str, int]:
        """Busy ns per category (a copy)."""
        return dict(self._busy)

    def window(self) -> int:
        """Elapsed ns since the window started."""
        return self.sim.now - self._window_start

    def utilization(self, category: Optional[str] = None,
                    parallelism: int = 1) -> float:
        """Busy fraction of the window, spread over ``parallelism`` units.

        For a 4-core CPU pool pass ``parallelism=4`` so that the result
        is the familiar "fraction of the whole CPU" number.
        """
        elapsed = self.window()
        if elapsed <= 0:
            return 0.0
        return self.total(category) / (elapsed * parallelism)

    def utilization_by_category(self, parallelism: int = 1) -> Dict[str, float]:
        """Per-category utilization over the current window."""
        elapsed = self.window()
        if elapsed <= 0:
            return {k: 0.0 for k in self._busy}
        return {k: v / (elapsed * parallelism) for k, v in self._busy.items()}


class Histogram:
    """A simple sample collector with summary statistics.

    The sorted order is computed lazily and cached: figure experiments
    ask the same histogram for p50/p95/p99 (and min/max) back to back,
    so only the first rank query after an :meth:`add`/:meth:`extend`
    pays the sort.
    """

    def __init__(self):
        self._samples: List[float] = []
        self._sorted: Optional[List[float]] = None

    def add(self, sample: float) -> None:
        """Record one sample."""
        self._samples.append(sample)
        self._sorted = None

    def extend(self, samples: Iterable[float]) -> None:
        """Record many samples."""
        self._samples.extend(samples)
        self._sorted = None

    def _ordered(self) -> List[float]:
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        return self._sorted

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def count(self) -> int:
        return len(self._samples)

    def mean(self) -> float:
        """Arithmetic mean; 0.0 when empty."""
        if not self._samples:
            return 0.0
        return sum(self._samples) / len(self._samples)

    def stdev(self) -> float:
        """Population standard deviation; 0.0 for fewer than 2 samples."""
        n = len(self._samples)
        if n < 2:
            return 0.0
        mu = self.mean()
        return math.sqrt(sum((x - mu) ** 2 for x in self._samples) / n)

    def percentile(self, pct: float) -> float:
        """Nearest-rank percentile, ``pct`` in [0, 100]."""
        if not self._samples:
            raise SimulationError("percentile() of an empty histogram")
        if not 0 <= pct <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {pct}")
        ordered = self._ordered()
        rank = max(0, math.ceil(pct / 100 * len(ordered)) - 1)
        return ordered[rank]

    def min(self) -> float:
        if not self._samples:
            raise SimulationError("min() of an empty histogram")
        return self._ordered()[0]

    def max(self) -> float:
        if not self._samples:
            raise SimulationError("max() of an empty histogram")
        return self._ordered()[-1]


class Meter:
    """Counts bytes (or any unit) to derive throughput over a window."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._count: int = 0
        self._window_start: int = 0

    def register(self, name: str, **labels: str) -> "Meter":
        """Expose this meter's running count through the metrics
        registry as a polled counter.  A no-op when no metrics session
        is installed, so callers can chain it unconditionally."""
        metrics = self.sim.metrics
        if metrics is not None:
            metrics.polled(name, lambda: self._count, **labels)
        return self

    def add(self, amount: int) -> None:
        """Record ``amount`` units moved."""
        if amount < 0:
            raise SimulationError(f"negative meter amount: {amount}")
        self._count += amount

    def reset_window(self) -> None:
        """Start a fresh measurement window at the current time."""
        self._count = 0
        self._window_start = self.sim.now

    @property
    def count(self) -> int:
        return self._count

    def rate_per_sec(self) -> float:
        """Units per simulated second over the current window."""
        elapsed = self.sim.now - self._window_start
        if elapsed <= 0:
            return 0.0
        return self._count * 1e9 / elapsed

    def gbps(self) -> float:
        """Throughput in Gbps, interpreting units as bytes."""
        return self.rate_per_sec() * 8 / 1e9
