"""The simulation event loop and generator-based processes.

:class:`Simulator` owns integer simulated time and a binary-heap event
queue.  :class:`Process` wraps a Python generator: the generator yields
:class:`~repro.sim.events.Event` objects to wait on, receives each
event's value back from ``yield``, and its ``return`` value becomes the
process's own event value (a :class:`Process` is itself an event, so
processes can wait on each other).

Determinism: events scheduled for the same tick are processed in exact
scheduling order (a monotonically increasing sequence number breaks heap
ties), so identical inputs always produce identical traces.
"""

from __future__ import annotations

import heapq
from typing import Any, Generator, Iterable, Optional

from repro.errors import SimulationError
from repro.metrics.session import metrics_for_new_sim
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.trace.tracer import tracer_for_new_sim


class Process(Event):
    """A running simulation process wrapping a generator.

    The process is itself an :class:`Event` that triggers when the
    generator finishes: it succeeds with the generator's return value,
    or fails with any exception the generator let escape.
    """

    def __init__(self, sim: "Simulator", generator: Generator[Event, Any, Any]):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(
                f"process body must be a generator, got {type(generator).__name__}; "
                "did you forget to call the generator function?")
        super().__init__(sim)
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        tracer = sim.tracer
        if tracer is None:
            self._span = None
        else:
            code = getattr(generator, "gi_code", None)
            self._span = tracer.begin(
                "proc.run", track="processes",
                name=code.co_name if code is not None else "process")
        # Bootstrap: resume the generator as soon as the loop starts.
        bootstrap = Event(sim)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def _finish_span(self, failed: bool = False) -> None:
        if self._span is not None:
            span, self._span = self._span, None
            span.end(failed=True) if failed else span.end()

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        try:
            if event._exception is not None:
                target = self._generator.throw(event._exception)
            else:
                target = self._generator.send(event._value)
        except StopIteration as stop:
            self._finish_span()
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self._finish_span(failed=True)
            self.fail(exc)
            return
        if not isinstance(target, Event):
            exc = SimulationError(
                f"process yielded {target!r}; processes may only yield Events")
            # Deliver the error into the generator so it can't silently hang.
            try:
                self._generator.throw(exc)
            except StopIteration as stop:
                self._finish_span()
                self.succeed(stop.value)
            except BaseException as inner:
                self._finish_span(failed=True)
                self.fail(inner)
            return
        if target.sim is not self.sim:
            self._finish_span(failed=True)
            self.fail(SimulationError("yielded an event from another simulator"))
            return
        self._waiting_on = target
        if target.processed:
            # Already concluded: resume on a fresh tick to preserve ordering.
            relay = Event(self.sim)
            relay.callbacks.append(self._resume)
            if target._exception is not None:
                relay.fail(target._exception)
            else:
                relay.succeed(target._value)
        else:
            target.callbacks.append(self._resume)


class Simulator:
    """A deterministic discrete-event simulator.

    The only state is the current time (:attr:`now`, integer ns) and a
    heap of ``(time, sequence, event)`` entries.  All model components
    hold a reference to their simulator and create events through it.
    """

    def __init__(self):
        self.now: int = 0
        self._heap: list[tuple[int, int, Event]] = []
        self._sequence: int = 0
        self._event_count: int = 0
        self._active: bool = False
        # None unless a repro.trace.TraceSession is installed — every
        # instrumentation site guards on this, so tracing costs one
        # attribute check when off.
        self.tracer = tracer_for_new_sim(self)
        # None unless a repro.faults.FaultPlan is installed; like the
        # tracer, every injection site guards with one `is not None`
        # check, so the fault-free hot path pays a single branch.
        self.faults = None
        # None unless a repro.metrics.MetricsSession is installed.
        # Sampling is driven from step() (see below) rather than by
        # scheduled events, so the metrics plane can never perturb
        # event order or keep a drain-mode run() alive.
        self.metrics = metrics_for_new_sim(self)

    # -- event construction ---------------------------------------------

    def _next_event_id(self) -> int:
        """Creation ordinal for the next event (run-stable identity)."""
        self._event_count += 1
        return self._event_count

    def event(self) -> Event:
        """Create a pending event that some model will trigger later."""
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` ns from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any]) -> Process:
        """Start a process from a generator and return it."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """An event that triggers once every event in ``events`` has."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """An event that triggers once any event in ``events`` has."""
        return AnyOf(self, events)

    # -- queue ----------------------------------------------------------

    def _enqueue(self, delay: int, event: Event) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        heapq.heappush(self._heap, (self.now + delay, self._sequence, event))
        self._sequence += 1

    def peek(self) -> Optional[int]:
        """Time of the next queued event, or None if the queue is empty."""
        return self._heap[0][0] if self._heap else None

    def step(self) -> None:
        """Process exactly one event (advancing time to it)."""
        if not self._heap:
            raise SimulationError("step() on an empty event queue")
        when, _seq, event = heapq.heappop(self._heap)
        if when < self.now:
            raise SimulationError("event queue corrupted: time went backwards")
        self.now = when
        metrics = self.metrics
        if metrics is not None:
            metrics.advance(when)
        event._run_callbacks()

    # -- run loops --------------------------------------------------------

    def run(self, until: Optional[int | Event] = None) -> Any:
        """Run the simulation.

        * ``until=None`` — run until the event queue drains.
        * ``until=<int>`` — run until simulated time reaches that tick.
        * ``until=<Event>`` — run until that event has been processed and
          return its value (raising if it failed).
        """
        if self._active:
            raise SimulationError("run() is not reentrant")
        self._active = True
        try:
            if until is None:
                while self._heap:
                    self.step()
                return None
            if isinstance(until, Event):
                while not until.processed:
                    if not self._heap:
                        raise SimulationError(
                            "simulation deadlocked: queue drained before the "
                            "awaited event triggered")
                    self.step()
                return until.value
            if isinstance(until, int):
                if until < self.now:
                    raise SimulationError(
                        f"cannot run until {until}: already at {self.now}")
                while self._heap and self._heap[0][0] <= until:
                    self.step()
                self.now = until
                return None
            raise SimulationError(f"bad 'until' argument: {until!r}")
        finally:
            self._active = False
