"""Shared-resource primitives built on the event kernel.

* :class:`Resource` — a counted resource (e.g. a CPU core pool slot or a
  DMA channel): processes ``yield resource.request()`` and later call
  ``resource.release(req)``; requests are granted strictly FIFO.
* :class:`Store` — an unbounded-or-bounded FIFO channel of items, the
  basic building block for queues between hardware blocks.
* :class:`PriorityStore` — a store whose ``get`` returns the smallest
  item first (items must be orderable).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Deque, Optional

from repro.errors import SimulationError
from repro.sim.events import Event
from repro.sim.kernel import Simulator


class Request(Event):
    """A pending claim on a :class:`Resource`.

    Usable as a context manager so that ``with resource.request() as req:
    yield req`` releases on exit even if the process body raises.
    """

    def __init__(self, resource: "Resource"):
        super().__init__(resource.sim)
        self.resource = resource

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.resource.release(self)


class Resource:
    """A counted, FIFO-fair resource with ``capacity`` concurrent users."""

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._users: set[Request] = set()
        self._waiting: Deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of requests currently holding the resource."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for the resource."""
        return len(self._waiting)

    def request(self) -> Request:
        """Claim the resource; the returned event triggers when granted."""
        req = Request(self)
        if len(self._users) < self.capacity and not self._waiting:
            self._users.add(req)
            req.succeed()
        else:
            self._waiting.append(req)
        return req

    def release(self, req: Request) -> None:
        """Release a previously granted (or still-waiting) request."""
        if req in self._users:
            self._users.remove(req)
            self._grant_next()
        else:
            try:
                self._waiting.remove(req)
            except ValueError:
                raise SimulationError("release() of a request not held or queued")

    def _grant_next(self) -> None:
        while self._waiting and len(self._users) < self.capacity:
            nxt = self._waiting.popleft()
            self._users.add(nxt)
            nxt.succeed()


class Store:
    """A FIFO channel of items between processes.

    ``put(item)`` returns an event that triggers once the item is
    accepted (immediately unless the store is full); ``get()`` returns
    an event that triggers with the oldest item once one is available.
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        """True if a put() right now would have to wait."""
        return self.capacity is not None and len(self._items) >= self.capacity

    def put(self, item: Any) -> Event:
        """Offer an item; the event triggers once the store accepts it."""
        event = Event(self.sim)
        if self.is_full:
            self._putters.append((event, item))
        else:
            self._insert(item)
            event.succeed()
            self._wake_getters()
        return event

    def get(self) -> Event:
        """Take the oldest item; the event triggers with that item."""
        event = Event(self.sim)
        self._getters.append(event)
        self._wake_getters()
        return event

    def _insert(self, item: Any) -> None:
        self._items.append(item)

    def _extract(self) -> Any:
        return self._items.popleft()

    def _wake_getters(self) -> None:
        while self._getters and self._items:
            getter = self._getters.popleft()
            getter.succeed(self._extract())
            # A slot opened: admit a blocked putter, if any.
            while self._putters and not self.is_full:
                putter, item = self._putters.popleft()
                self._insert(item)
                putter.succeed()


class PriorityStore(Store):
    """A store whose ``get`` returns the smallest item first."""

    def _insert(self, item: Any) -> None:
        heapq.heappush(self._items, item)  # type: ignore[arg-type]

    def _extract(self) -> Any:
        return heapq.heappop(self._items)  # type: ignore[arg-type]

    def __init__(self, sim: Simulator, capacity: Optional[int] = None):
        super().__init__(sim, capacity)
        self._items = []  # type: ignore[assignment]
