"""Discrete-event simulation kernel.

A small, deterministic, generator-based process/event engine in the style
of simpy, written from scratch for this reproduction.  Simulated time is
integer nanoseconds (see :mod:`repro.units`).

Typical use::

    sim = Simulator()

    def worker(sim):
        yield sim.timeout(usec(5))
        return "done"

    proc = sim.process(worker(sim))
    sim.run()
    assert proc.value == "done"
"""

from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.kernel import Process, Simulator
from repro.sim.resources import PriorityStore, Resource, Store
from repro.sim.stats import BusyTracker, Histogram, Meter
from repro.sim.rng import RngHub, empirical, exponential_interarrivals

__all__ = [
    "AllOf",
    "AnyOf",
    "BusyTracker",
    "Event",
    "Histogram",
    "Meter",
    "PriorityStore",
    "Process",
    "Resource",
    "RngHub",
    "Simulator",
    "Store",
    "Timeout",
    "empirical",
    "exponential_interarrivals",
]
