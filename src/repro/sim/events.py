"""Event primitives for the simulation kernel.

An :class:`Event` is a one-shot occurrence that processes can wait on by
``yield``-ing it.  Events move through three stages:

* *pending* — created, not yet triggered;
* *triggered* — given a value (or an exception) and placed on the event
  queue;
* *processed* — the kernel has run its callbacks and resumed any waiting
  processes.

Composites :class:`AllOf` / :class:`AnyOf` wait on several events at once.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.kernel import Simulator

_PENDING = object()


class Event:
    """A one-shot event that processes can wait on.

    Events are created via :meth:`Simulator.event` (or subclasses) and
    triggered with :meth:`succeed` or :meth:`fail`.  A triggered event is
    scheduled on the simulator's queue; its callbacks run when the kernel
    reaches it.
    """

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        # Per-simulator creation ordinal: a run-stable identity for
        # reprs and debug logs, where id() would differ between
        # otherwise identical runs.
        self.eid = sim._next_event_id()
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._exception: Optional[BaseException] = None

    # -- state ---------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has been given an outcome."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the kernel has run this event's callbacks."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if not self.triggered:
            raise SimulationError("event has not been triggered yet")
        return self._exception is None

    @property
    def value(self) -> Any:
        """The event's value; raises the failure exception if it failed."""
        if not self.triggered:
            raise SimulationError("event has not been triggered yet")
        if self._exception is not None:
            raise self._exception
        return self._value

    # -- triggering ----------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self._value = value
        self.sim._enqueue(0, self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self.triggered:
            raise SimulationError("event already triggered")
        self._value = None
        self._exception = exception
        self.sim._enqueue(0, self)
        return self

    # -- kernel hook -----------------------------------------------------

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        assert callbacks is not None
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} #{self.eid} {state}>"


class Timeout(Event):
    """An event that triggers automatically after a fixed delay."""

    def __init__(self, sim: "Simulator", delay: int, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._scheduled_value = value
        sim._enqueue(delay, self)

    def _run_callbacks(self) -> None:
        # A timeout only counts as triggered once it actually fires.
        self._value = self._scheduled_value
        super()._run_callbacks()


class _Condition(Event):
    """Shared machinery for :class:`AllOf` and :class:`AnyOf`."""

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        for event in self.events:
            if event.sim is not sim:
                raise SimulationError("cannot mix events from different simulators")
        for event in self.events:
            if event.processed:
                self._observe(event)
            else:
                event.callbacks.append(self._observe)
        if not self.triggered and self._check():
            self.succeed(self._collect())

    def _observe(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event._exception)  # propagate the first failure
            return
        if self._check():
            self.succeed(self._collect())

    def _collect(self) -> dict[Event, Any]:
        return {e: e._value for e in self.events if e.triggered and e.ok}

    def _check(self) -> bool:  # pragma: no cover - overridden
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers when *all* component events have succeeded.

    Its value is a dict mapping each component event to its value.
    """

    def _check(self) -> bool:
        return all(e.triggered and e.ok for e in self.events)


class AnyOf(_Condition):
    """Triggers when *any* component event has succeeded.

    Its value is a dict of the component events that had already
    succeeded at trigger time.
    """

    def _check(self) -> bool:
        if not self.events:
            return True
        return any(e.triggered and e.ok for e in self.events)
