"""Deterministic random streams and the workload distributions.

Every source of randomness in an experiment draws from a named stream of
a single :class:`RngHub`, so that (a) runs are reproducible given a seed
and (b) changing how one component consumes randomness does not perturb
the others.

The file-size distribution follows the paper's workload methodology
(Drago et al., IMC 2012 — the Dropbox study): personal-cloud-storage
transfers are dominated by small files with a heavy tail, which we model
as the log-normal body + bounded tail in :func:`dropbox_file_sizes`.
"""

from __future__ import annotations

import hashlib
import random
from bisect import bisect_right
from itertools import accumulate
from typing import Iterator, List, Sequence, Tuple

from repro.units import KIB, MIB, SEC


class RngHub:
    """A factory of independent, reproducible random streams."""

    def __init__(self, seed: int = 0):
        self.seed = seed

    def stream(self, name: str) -> random.Random:
        """A :class:`random.Random` unique to (seed, name)."""
        digest = hashlib.sha256(f"{self.seed}/{name}".encode()).digest()
        return random.Random(int.from_bytes(digest[:8], "big"))


def exponential_interarrivals(rng: random.Random, rate_per_sec: float) -> Iterator[int]:
    """Poisson-process inter-arrival gaps in ns, forever."""
    if rate_per_sec <= 0:
        raise ValueError(f"arrival rate must be positive, got {rate_per_sec}")
    while True:
        yield max(1, round(rng.expovariate(rate_per_sec) * SEC))


def empirical(rng: random.Random,
              points: Sequence[Tuple[float, int]]) -> Iterator[int]:
    """Sample forever from a weighted discrete distribution.

    ``points`` is a sequence of ``(weight, value)`` pairs; weights need
    not sum to one.
    """
    if not points:
        raise ValueError("empirical distribution needs at least one point")
    weights = [w for w, _ in points]
    if any(w < 0 for w in weights) or sum(weights) <= 0:
        raise ValueError("weights must be non-negative and sum to > 0")
    values = [v for _, v in points]
    cumulative = list(accumulate(weights))
    total = cumulative[-1]
    while True:
        pick = rng.random() * total
        yield values[bisect_right(cumulative, pick)]


# Buckets approximating the Dropbox-study transfer-size distribution
# (Drago et al. [42]): mass concentrated below 1 MB with a tail of
# multi-megabyte objects.  (weight, size-in-bytes)
DROPBOX_SIZE_BUCKETS: List[Tuple[float, int]] = [
    (0.28, 4 * KIB),
    (0.22, 16 * KIB),
    (0.18, 64 * KIB),
    (0.14, 256 * KIB),
    (0.10, 1 * MIB),
    (0.05, 4 * MIB),
    (0.02, 16 * MIB),
    (0.01, 64 * MIB),
]


def dropbox_file_sizes(rng: random.Random) -> Iterator[int]:
    """Object sizes (bytes) following the Dropbox-like bucket mix."""
    return empirical(rng, DROPBOX_SIZE_BUCKETS)
