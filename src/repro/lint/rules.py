"""The simlint rule catalog: every invariant, one class each.

Three families (see ``docs/lint.md`` for the full catalog with
examples):

* **DET** — determinism: anything whose result can differ between two
  same-seed runs (process-global RNG, wall clocks, ``id()`` keys, set
  iteration order, float equality on timestamps) is banned from
  simulation code.
* **SIM** — scheduling: the event queue belongs to
  :mod:`repro.sim.kernel`; model code must neither manipulate it
  directly nor block the host thread.
* **PLANE** — plane contracts: metric names, trace event types and
  fault sites are closed, documented catalogs; a string literal that
  is not in its catalog would raise at runtime (or worse, silently
  drift the docs), so it is rejected statically.

Every rule checks *syntax that can be judged locally*; the PLANE rules
additionally consult the machine-readable catalog exports
(:func:`repro.metrics.catalog.metric_names`,
:func:`repro.trace.events.event_type_names`,
:func:`repro.faults.fault_site_names`) — cross-module semantic checks.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Tuple

from repro.faults import fault_site_names
from repro.lint.engine import ModuleContext, Rule, register
from repro.metrics.catalog import metric_names
from repro.trace.events import event_type_names

Hit = Iterator[Tuple[ast.AST, str]]


def _is_id_call(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "id"
            and len(node.args) == 1 and not node.keywords)


def _contains_id_call(node: ast.AST) -> bool:
    return any(_is_id_call(child) for child in ast.walk(node))


def _first_str_arg(node: ast.Call):
    if node.args and isinstance(node.args[0], ast.Constant) \
            and isinstance(node.args[0].value, str):
        return node.args[0].value
    return None


def _attr_call(node: ast.Call) -> str:
    """``attr`` when calling ``<expr>.attr(...)``, else ''."""
    return node.func.attr if isinstance(node.func, ast.Attribute) else ""


# ---------------------------------------------------------------------------
# E — engine-level findings
# ---------------------------------------------------------------------------

@register
class SyntaxErrorRule(Rule):
    """Emitted by the engine itself when a file fails to parse; has no
    checkers of its own (you cannot lint what you cannot parse)."""

    id = "E001"
    name = "syntax-error"
    rationale = ("a file that does not parse cannot be checked for any "
                 "other invariant")
    example = "def broken(:\n    pass"


# ---------------------------------------------------------------------------
# DET — determinism
# ---------------------------------------------------------------------------

@register
class UnseededRandom(Rule):
    id = "DET001"
    name = "unseeded-random"
    rationale = ("module-level random.* functions and unseeded Random() "
                 "draw from process-global state, so results depend on "
                 "import order and prior runs; all simulation randomness "
                 "must come from named repro.sim.rng.RngHub streams")
    example = "delay = random.randint(1, 10)"

    _MODULE_FNS = frozenset({
        "random", "randint", "randrange", "choice", "choices", "shuffle",
        "sample", "uniform", "expovariate", "gauss", "normalvariate",
        "lognormvariate", "betavariate", "paretovariate", "weibullvariate",
        "vonmisesvariate", "triangular", "getrandbits", "randbytes", "seed",
    })

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.module != "repro.sim.rng"

    def check_Call(self, node: ast.Call, ctx: ModuleContext) -> Hit:
        func = node.func
        if isinstance(func, ast.Attribute) and \
                isinstance(func.value, ast.Name) and \
                func.value.id == "random":
            if func.attr in self._MODULE_FNS:
                yield node, (f"random.{func.attr}() draws from the "
                             "process-global RNG; use an RngHub stream "
                             "(repro.sim.rng)")
            elif func.attr == "Random" and not node.args:
                yield node, ("unseeded random.Random() seeds from the OS; "
                             "pass an explicit seed or use an RngHub stream")

    def check_ImportFrom(self, node: ast.ImportFrom,
                         ctx: ModuleContext) -> Hit:
        if node.module == "random":
            names = sorted(alias.name for alias in node.names
                           if alias.name in self._MODULE_FNS)
            if names:
                yield node, ("importing module-level RNG functions "
                             f"({', '.join(names)}) from random; use an "
                             "RngHub stream (repro.sim.rng)")


@register
class WallClock(Rule):
    id = "DET002"
    name = "wall-clock"
    rationale = ("wall-clock reads leak host timing into simulation "
                 "state; simulated time is Simulator.now, and only the "
                 "experiments harness may measure real elapsed time")
    example = "started = time.time()"

    _TIME_FNS = frozenset({
        "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
        "perf_counter_ns", "process_time", "process_time_ns",
    })
    _DATETIME_FNS = frozenset({"now", "utcnow", "today"})

    def applies_to(self, ctx: ModuleContext) -> bool:
        return not ctx.module.startswith("repro.experiments")

    def check_Call(self, node: ast.Call, ctx: ModuleContext) -> Hit:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        value = func.value
        if isinstance(value, ast.Name) and value.id == "time" \
                and func.attr in self._TIME_FNS:
            yield node, (f"time.{func.attr}() reads the wall clock; "
                         "simulation code must use Simulator.now")
        holder = None
        if isinstance(value, ast.Name):
            holder = value.id
        elif isinstance(value, ast.Attribute):
            holder = value.attr
        if holder in ("datetime", "date") \
                and func.attr in self._DATETIME_FNS:
            yield node, (f"{holder}.{func.attr}() reads the wall clock; "
                         "simulation code must use Simulator.now")


@register
class IdAsKey(Rule):
    id = "DET003"
    name = "id-as-key"
    rationale = ("id() is a memory address: keying state on it makes "
                 "dict/set iteration (and anything derived from it) vary "
                 "between runs — the PR 1 switch lock-order bug; use a "
                 "monotonic identifier assigned at creation (flow.uid, "
                 "d2d_id, Event.eid)")
    example = "self._streams[id(flow)] = stream"

    _KEY_METHODS = frozenset({"get", "pop", "setdefault", "add", "remove",
                              "discard", "__contains__"})

    def check_Call(self, node: ast.Call, ctx: ModuleContext) -> Hit:
        if not _is_id_call(node):
            return
        parent = ctx.parent(node)
        if isinstance(parent, ast.Subscript) and parent.slice is node:
            yield node, "id() used as a container subscript key"
            return
        if isinstance(parent, ast.Tuple):
            grandparent = ctx.parent(parent)
            if isinstance(grandparent, ast.Subscript) \
                    and grandparent.slice is parent:
                yield node, "id() used inside a subscript key tuple"
                return
        if isinstance(parent, ast.Dict) and node in parent.keys:
            yield node, "id() used as a dict-literal key"
            return
        if isinstance(parent, ast.Call) \
                and _attr_call(parent) in self._KEY_METHODS \
                and node in parent.args:
            yield node, (f"id() passed to .{_attr_call(parent)}() — a "
                         "keyed container lookup")
            return
        if isinstance(parent, ast.Compare) and parent.left is node and \
                any(isinstance(op, (ast.In, ast.NotIn))
                    for op in parent.ops):
            yield node, "id() tested for container membership"
            return
        # The assignment idiom `key = (..., id(flow))`: catch id()
        # anywhere inside the value of an Assign to a *key-named* target.
        ancestor = parent
        while ancestor is not None and not isinstance(ancestor, ast.stmt):
            ancestor = ctx.parent(ancestor)
        if isinstance(ancestor, ast.Assign):
            for target in ancestor.targets:
                if isinstance(target, ast.Name) and "key" in target.id:
                    yield node, (f"id() stored in {target.id!r}, which "
                                 "names a lookup key")
                    return


@register
class IdAsSortKey(Rule):
    id = "DET004"
    name = "id-as-sort-key"
    rationale = ("sorting by id() orders objects by allocation address, "
                 "which differs between runs even for identical inputs; "
                 "sort by a stable attribute (name, uid, sequence number)")
    example = "for link in sorted(links, key=id): ..."

    _SORTERS = frozenset({"sorted", "min", "max", "sort"})

    def check_Call(self, node: ast.Call, ctx: ModuleContext) -> Hit:
        callee = ""
        if isinstance(node.func, ast.Name):
            callee = node.func.id
        elif isinstance(node.func, ast.Attribute):
            callee = node.func.attr
        if callee not in self._SORTERS:
            return
        for keyword in node.keywords:
            if keyword.arg != "key":
                continue
            value = keyword.value
            if isinstance(value, ast.Name) and value.id == "id":
                yield node, f"{callee}(..., key=id) sorts by memory address"
            elif isinstance(value, ast.Lambda) \
                    and _contains_id_call(value.body):
                yield node, (f"{callee}() key function calls id(); sort "
                             "by a stable attribute instead")


@register
class IdInString(Rule):
    id = "DET005"
    name = "id-in-string"
    rationale = ("an id() rendered into a repr, log line or key string "
                 "changes on every run, breaking byte-identical trace "
                 "and log comparisons; render a sequence number instead "
                 "(e.g. Event.eid)")
    example = 'return f"<Event at {hex(id(self))}>"'

    _RENDERERS = frozenset({"hex", "str", "format", "repr", "oct"})

    def check_Call(self, node: ast.Call, ctx: ModuleContext) -> Hit:
        if isinstance(node.func, ast.Name) \
                and node.func.id in self._RENDERERS \
                and node.args and _is_id_call(node.args[0]):
            yield node, (f"{node.func.id}(id(...)) renders a memory "
                         "address; use a run-stable sequence number")

    def check_FormattedValue(self, node: ast.FormattedValue,
                             ctx: ModuleContext) -> Hit:
        if _contains_id_call(node.value):
            yield node, ("id() interpolated into an f-string; use a "
                         "run-stable sequence number")


@register
class SetIteration(Rule):
    id = "DET006"
    name = "set-iteration"
    rationale = ("set iteration order depends on insertion history and "
                 "string hash randomization (PYTHONHASHSEED), so looping "
                 "over a bare set schedules events in a run-dependent "
                 "order; iterate sorted(s) or keep an insertion-ordered "
                 "dict")
    example = "for waiter in self._waiters_set: waiter.succeed()"

    _SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)

    def begin_module(self, ctx: ModuleContext) -> None:
        self._set_names: set = set()
        self._set_attrs: set = set()
        for node in ast.walk(ctx.tree):
            value = None
            targets = []
            if isinstance(node, ast.Assign):
                value, targets = node.value, node.targets
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                value, targets = node.value, [node.target]
            if value is None or not self._is_set_expr(value):
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    self._set_names.add(target.id)
                elif isinstance(target, ast.Attribute) and \
                        isinstance(target.value, ast.Name) and \
                        target.value.id == "self":
                    self._set_attrs.add(target.attr)

    @staticmethod
    def _is_set_expr(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) \
                    and node.func.id in ("set", "frozenset"):
                return True
            # dataclasses.field(default_factory=set)
            if isinstance(node.func, ast.Name) and node.func.id == "field":
                for keyword in node.keywords:
                    if keyword.arg == "default_factory" and \
                            isinstance(keyword.value, ast.Name) and \
                            keyword.value.id in ("set", "frozenset"):
                        return True
        return False

    def _is_set_valued(self, node: ast.AST) -> bool:
        if self._is_set_expr(node):
            return True
        if isinstance(node, ast.Name) and node.id in self._set_names:
            return True
        if isinstance(node, ast.Attribute) and \
                isinstance(node.value, ast.Name) and \
                node.value.id == "self" and node.attr in self._set_attrs:
            return True
        if isinstance(node, ast.BinOp) and isinstance(node.op,
                                                      self._SET_OPS):
            return (self._is_set_valued(node.left)
                    or self._is_set_valued(node.right))
        return False

    def _flag(self, iterable: ast.AST, where: ast.AST) -> Hit:
        if self._is_set_valued(iterable):
            yield where, ("iteration over a set is order-nondeterministic "
                          "across runs; iterate sorted(...) instead")

    def check_For(self, node: ast.For, ctx: ModuleContext) -> Hit:
        yield from self._flag(node.iter, node)

    def _check_comprehension(self, node, ctx: ModuleContext) -> Hit:
        for generator in node.generators:
            yield from self._flag(generator.iter, node)

    check_ListComp = _check_comprehension
    check_SetComp = _check_comprehension
    check_DictComp = _check_comprehension
    check_GeneratorExp = _check_comprehension


@register
class FloatEqTime(Rule):
    id = "DET007"
    name = "float-eq-time"
    rationale = ("simulated time is integer nanoseconds exactly so that "
                 "equality is exact; comparing a timestamp against a "
                 "float reintroduces platform-dependent rounding")
    example = "if sim.now == 1.5e6: ..."

    _TIMEISH = re.compile(
        r"(^|_)(now|time|ts|when|deadline|timestamp)($|_)|_ns$|_at$")

    def _timeish(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return bool(self._TIMEISH.search(node.id))
        if isinstance(node, ast.Attribute):
            return bool(self._TIMEISH.search(node.attr))
        return False

    @staticmethod
    def _floatish(node: ast.AST) -> bool:
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return True
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "float")

    def check_Compare(self, node: ast.Compare, ctx: ModuleContext) -> Hit:
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            return
        operands = [node.left, *node.comparators]
        if any(self._floatish(op) for op in operands) and \
                any(self._timeish(op) for op in operands):
            yield node, ("float equality against a simulation timestamp; "
                         "simulated time is exact integer ns")


# ---------------------------------------------------------------------------
# SIM — scheduling
# ---------------------------------------------------------------------------

@register
class RawHeapq(Rule):
    id = "SIM001"
    name = "raw-heapq"
    rationale = ("the event queue's determinism rests on the kernel's "
                 "(time, sequence) tie-break; a raw heapq in model code "
                 "bypasses that contract — schedule through Simulator "
                 "events or sim.resources containers")
    example = "import heapq  # in a device model"

    def applies_to(self, ctx: ModuleContext) -> bool:
        return not ctx.module.startswith("repro.sim")

    def check_Import(self, node: ast.Import, ctx: ModuleContext) -> Hit:
        if any(alias.name == "heapq" for alias in node.names):
            yield node, ("direct heapq use outside repro.sim bypasses the "
                         "kernel's deterministic tie-break")

    def check_ImportFrom(self, node: ast.ImportFrom,
                         ctx: ModuleContext) -> Hit:
        if node.module == "heapq":
            yield node, ("direct heapq use outside repro.sim bypasses the "
                         "kernel's deterministic tie-break")


@register
class KernelInternals(Rule):
    id = "SIM002"
    name = "kernel-internals"
    rationale = ("Simulator._heap/_enqueue are load-bearing internals: "
                 "touching them from model code can reorder same-tick "
                 "events; use sim.event()/timeout()/process() instead")
    example = "sim._enqueue(0, my_event)"

    _PRIVATE = frozenset({"_heap", "_enqueue"})

    def applies_to(self, ctx: ModuleContext) -> bool:
        return not ctx.module.startswith("repro.sim")

    def check_Attribute(self, node: ast.Attribute,
                        ctx: ModuleContext) -> Hit:
        if node.attr in self._PRIVATE:
            yield node, (f"access to Simulator internal .{node.attr}; "
                         "go through the public event API")


@register
class BlockingCall(Rule):
    id = "SIM003"
    name = "blocking-call"
    rationale = ("event handlers run inline in the event loop; a host "
                 "blocking call (sleep, subprocess, console input, "
                 "network I/O) freezes every simulator in the process "
                 "— waiting is expressed as yielded simulation Events")
    example = "time.sleep(0.1)  # inside a process generator"

    _MODULE_CALLS = {
        "time": frozenset({"sleep"}),
        "os": frozenset({"system"}),
        "subprocess": frozenset({"run", "call", "check_call",
                                 "check_output", "Popen"}),
        "socket": frozenset({"socket", "create_connection"}),
        "requests": frozenset({"get", "post", "put", "delete", "request"}),
        "select": frozenset({"select", "poll"}),
    }

    def applies_to(self, ctx: ModuleContext) -> bool:
        return not ctx.module.startswith("repro.experiments")

    def check_Call(self, node: ast.Call, ctx: ModuleContext) -> Hit:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "input":
            yield node, "input() blocks the event loop on the console"
        if isinstance(func, ast.Attribute) and \
                isinstance(func.value, ast.Name):
            allowed = self._MODULE_CALLS.get(func.value.id)
            if allowed and func.attr in allowed:
                yield node, (f"{func.value.id}.{func.attr}() blocks the "
                             "host thread; simulation code waits on "
                             "yielded Events")


# ---------------------------------------------------------------------------
# PLANE — observability-plane contracts
# ---------------------------------------------------------------------------

@register
class UnknownMetric(Rule):
    id = "PLANE001"
    name = "unknown-metric"
    rationale = ("metric names are a closed, documented catalog "
                 "(repro/metrics/catalog.py + docs/metrics.md); an "
                 "uncataloged literal would raise MetricsError at "
                 "runtime on the first metered run — reject it at lint "
                 "time instead")
    example = 'metrics.counter("nvme.tyop_bytes", dev=name)'

    _METHODS = frozenset({"counter", "gauge", "timegauge", "histogram",
                          "polled", "polled_map", "kind_of"})
    _DOTTED = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)+$")

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.module != "repro.metrics.catalog"

    def check_Call(self, node: ast.Call, ctx: ModuleContext) -> Hit:
        callee = _attr_call(node)
        if not callee and isinstance(node.func, ast.Name):
            callee = node.func.id
        name = _first_str_arg(node)
        if name is None:
            return
        checkable = callee in self._METHODS or (
            callee == "register" and self._DOTTED.match(name))
        if checkable and name not in metric_names():
            yield node, (f"metric name {name!r} is not in the documented "
                         "catalog (repro/metrics/catalog.py)")


@register
class UnknownTraceEvent(Rule):
    id = "PLANE002"
    name = "unknown-trace-event"
    rationale = ("trace event types are a closed, documented taxonomy "
                 "(repro/trace/events.py + docs/tracing.md); an "
                 "unregistered literal would raise TraceError on the "
                 "first traced run — reject it at lint time instead")
    example = 'tracer.instant("nvme.oops", track="ssd")'

    _METHODS = frozenset({"begin", "instant", "complete", "span"})

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.module != "repro.trace.events"

    def check_Call(self, node: ast.Call, ctx: ModuleContext) -> Hit:
        callee = _attr_call(node)
        if callee not in self._METHODS:
            return
        # Every Tracer method requires a track (second positional or
        # track= keyword); LatencyTrace.span(category) takes neither,
        # so its free-form categories are not flagged.
        has_track = (len(node.args) >= 2
                     or any(kw.arg == "track" for kw in node.keywords))
        if not has_track:
            return
        name = _first_str_arg(node)
        if name is not None and name not in event_type_names():
            yield node, (f"trace event type {name!r} is not in the "
                         "documented taxonomy (repro/trace/events.py)")


@register
class UnknownFaultSite(Rule):
    id = "PLANE003"
    name = "unknown-fault-site"
    rationale = ("fault sites are the fixed set wired into the models "
                 "(repro/faults.py FAULT_SITES); a rule naming an "
                 "unknown site would raise ConfigurationError — and a "
                 "fires() probe on one would silently never fire")
    example = 'plan = FaultPlan([FaultRule(site="nvme.cqe_dorp", ...)])'

    _METHODS = frozenset({"fires", "occurrences"})

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.module != "repro.faults"

    def check_Call(self, node: ast.Call, ctx: ModuleContext) -> Hit:
        callee = _attr_call(node)
        if not callee and isinstance(node.func, ast.Name):
            callee = node.func.id
        site = None
        if callee in self._METHODS:
            site = _first_str_arg(node)
        elif callee == "FaultRule":
            site = _first_str_arg(node)
            for keyword in node.keywords:
                if keyword.arg == "site" and \
                        isinstance(keyword.value, ast.Constant) and \
                        isinstance(keyword.value.value, str):
                    site = keyword.value.value
        if site is not None and site not in fault_site_names():
            yield node, (f"fault site {site!r} is not wired into the "
                         "models (repro/faults.py FAULT_SITES)")
