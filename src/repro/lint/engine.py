"""The simlint core: rule registry, per-file AST dispatch, suppressions.

A *rule* is a class with a unique ``id`` (``DET001``), a short ``name``
slug, a one-line ``rationale``, and any number of ``check_<NodeType>``
methods.  The engine parses each file once, builds a parent map, and
walks the tree a single time, dispatching every node to the rules that
declared a checker for its type.  Rules are instantiated fresh per file
(they may keep per-module state collected in :meth:`Rule.begin_module`).

Findings can be silenced two ways:

* inline — a ``# simlint: disable=DET003`` comment on the finding's
  line (comma-separate several ids; ``disable=all`` silences every
  rule on that line), or ``# simlint: skip-file`` in the first five
  lines of a file;
* the committed baseline — see :mod:`repro.lint.baseline`.

The walk is deliberately deterministic: findings are sorted by
``(path, line, col, rule)`` and fingerprints are content-addressed, so
the linter's own output is as reproducible as the simulator it guards.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from hashlib import sha256
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Type

_SUPPRESS = re.compile(r"#\s*simlint:\s*disable=([A-Za-z0-9_,\- ]+)")
_SKIP_FILE = re.compile(r"#\s*simlint:\s*skip-file")
_SKIP_SCAN_LINES = 5

#: Directory names the recursive walker never descends into.  The
#: deliberate-violation fixture tree lives in ``tests/lint_fixtures``
#: and is only ever linted explicitly by the lint test suite.
EXCLUDED_DIRS = frozenset({"__pycache__", ".git", ".hypothesis",
                           ".pytest_cache", "lint_fixtures"})


@dataclass
class Finding:
    """One rule violation at one source location."""

    rule: str
    name: str
    path: str            # posix-style path as scanned
    line: int
    col: int
    message: str
    line_text: str = ""
    fingerprint: str = ""

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"


class Rule:
    """Base class for lint rules; subclasses self-register via
    :func:`register`.

    ``scope`` documents *where the rule applies* (see
    :meth:`applies_to`); ``example`` is the canonical violating snippet
    shown in ``docs/lint.md``.
    """

    id: str = ""
    name: str = ""
    rationale: str = ""
    example: str = ""

    def applies_to(self, ctx: "ModuleContext") -> bool:
        """False exempts the whole module (e.g. the RNG hub itself)."""
        return True

    def begin_module(self, ctx: "ModuleContext") -> None:
        """Optional pre-pass over ``ctx.tree`` before node dispatch."""


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.id or not cls.name or not cls.rationale:
        raise ValueError(f"rule {cls.__name__} needs id, name, rationale")
    if cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id}")
    _REGISTRY[cls.id] = cls
    return cls


def rule_classes() -> List[Type[Rule]]:
    """Every registered rule class, sorted by id (imports the catalog)."""
    from repro.lint import rules as _rules  # noqa: F401  (self-registers)
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def rule_ids() -> List[str]:
    return [cls.id for cls in rule_classes()]


class ModuleContext:
    """Everything a rule may ask about the file being linted."""

    def __init__(self, source: str, path: str, tree: ast.AST):
        self.source = source
        self.path = path
        self.module = module_name(path)
        self.lines = source.splitlines()
        self.tree = tree
        self._parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


def module_name(path: str) -> str:
    """Dotted module name for scoping decisions.

    Anchored at the last ``repro`` path component when present
    (``src/repro/sim/rng.py`` → ``repro.sim.rng``); otherwise the
    path's parts (``tests/test_lint.py`` → ``tests.test_lint``).
    """
    parts = list(Path(path).with_suffix("").parts)
    if "repro" in parts:
        parts = parts[len(parts) - 1 - parts[::-1].index("repro"):]
    return ".".join(part for part in parts if part not in (".", ".."))


def _suppressions(lines: Sequence[str]) -> Dict[int, set]:
    table: Dict[int, set] = {}
    for lineno, text in enumerate(lines, start=1):
        match = _SUPPRESS.search(text)
        if match:
            ids = {token.strip().upper()
                   for token in match.group(1).split(",") if token.strip()}
            table[lineno] = ids
    return table


def _skip_file(lines: Sequence[str]) -> bool:
    return any(_SKIP_FILE.search(text)
               for text in lines[:_SKIP_SCAN_LINES])


def compute_fingerprint(rule: str, path: str, line_text: str,
                        occurrence: int) -> str:
    """Content-addressed, line-number-independent finding identity.

    Hashes the rule id, the file path, the *stripped source line* and
    the occurrence ordinal among identical lines — so findings survive
    unrelated edits that shift line numbers, but a second identical
    violation in the same file gets its own fingerprint.
    """
    payload = f"{rule}\0{path}\0{line_text.strip()}\0{occurrence}"
    return sha256(payload.encode("utf-8")).hexdigest()[:12]


def _assign_fingerprints(findings: List[Finding]) -> None:
    seen: Dict[tuple, int] = {}
    for finding in findings:
        key = (finding.rule, finding.path, finding.line_text.strip())
        occurrence = seen.get(key, 0)
        seen[key] = occurrence + 1
        finding.fingerprint = compute_fingerprint(
            finding.rule, finding.path, finding.line_text, occurrence)


def lint_source(source: str, path: str = "<string>",
                rules: Optional[Iterable[Type[Rule]]] = None
                ) -> List[Finding]:
    """Lint one source text; returns sorted findings with fingerprints."""
    classes = list(rules) if rules is not None else rule_classes()
    lines = source.splitlines()
    if _skip_file(lines):
        return []
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        finding = Finding(
            rule="E001", name="syntax-error", path=path,
            line=exc.lineno or 1, col=(exc.offset or 1) - 1,
            message=f"file does not parse: {exc.msg}",
            line_text=(exc.text or "").rstrip("\n"))
        _assign_fingerprints([finding])
        return [finding]
    ctx = ModuleContext(source, path, tree)
    suppressed = _suppressions(lines)
    active: List[Rule] = []
    dispatch: Dict[str, List] = {}
    for cls in classes:
        rule = cls()
        if not rule.applies_to(ctx):
            continue
        active.append(rule)
        rule.begin_module(ctx)
        for attr in dir(rule):
            if attr.startswith("check_"):
                dispatch.setdefault(attr[len("check_"):], []).append(
                    (rule, getattr(rule, attr)))
    findings: List[Finding] = []
    for node in ast.walk(tree):
        for rule, checker in dispatch.get(type(node).__name__, ()):
            for where, message in checker(node, ctx):
                lineno = getattr(where, "lineno", 1)
                ids = suppressed.get(lineno)
                if ids and (rule.id in ids or "ALL" in ids):
                    continue
                findings.append(Finding(
                    rule=rule.id, name=rule.name, path=path,
                    line=lineno, col=getattr(where, "col_offset", 0),
                    message=message, line_text=ctx.line_text(lineno)))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    _assign_fingerprints(findings)
    return findings


def lint_file(path: Path,
              rules: Optional[Iterable[Type[Rule]]] = None,
              display_path: Optional[str] = None) -> List[Finding]:
    shown = display_path if display_path is not None else path.as_posix()
    return lint_source(path.read_text(encoding="utf-8"), shown, rules)


def iter_python_files(root: Path) -> Iterator[Path]:
    """Every ``*.py`` under ``root``, skipping :data:`EXCLUDED_DIRS`,
    in sorted order."""
    if root.is_file():
        if root.suffix == ".py":
            yield root
        return
    for path in sorted(root.rglob("*.py")):
        if EXCLUDED_DIRS.isdisjoint(path.parts):
            yield path


def lint_paths(paths: Sequence[Path],
               rules: Optional[Iterable[Type[Rule]]] = None,
               relative_to: Optional[Path] = None) -> List[Finding]:
    """Lint files and directory trees; paths in findings are shown
    relative to ``relative_to`` (when given and possible)."""
    findings: List[Finding] = []
    for root in paths:
        for file_path in iter_python_files(root):
            shown = file_path
            if relative_to is not None:
                try:
                    shown = file_path.resolve().relative_to(
                        relative_to.resolve())
                except ValueError:
                    pass
            findings.extend(lint_file(file_path, rules,
                                      display_path=shown.as_posix()))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings
