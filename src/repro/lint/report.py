"""Reporters: human text and machine JSON renderings of a lint run."""

from __future__ import annotations

import json
from typing import List, Optional, Sequence

from repro.lint.baseline import BaselineEntry
from repro.lint.engine import Finding


def render_text(new: Sequence[Finding],
                baselined: Sequence[Finding] = (),
                stale: Sequence[BaselineEntry] = (),
                files_scanned: Optional[int] = None) -> str:
    """The default report: one ``path:line:col: RULE message`` per
    finding, then a one-line summary."""
    lines: List[str] = []
    for finding in new:
        lines.append(f"{finding.location()}: {finding.rule}"
                     f"[{finding.name}] {finding.message}")
    for entry in stale:
        where = f" ({entry.location})" if entry.location else ""
        lines.append(f"stale baseline entry: {entry.rule} "
                     f"{entry.fingerprint}{where} no longer matches "
                     "anything — remove it")
    summary = [f"{len(new)} finding{'s' if len(new) != 1 else ''}"]
    if baselined:
        summary.append(f"{len(baselined)} baselined")
    if stale:
        summary.append(f"{len(stale)} stale baseline "
                       f"entr{'ies' if len(stale) != 1 else 'y'}")
    if files_scanned is not None:
        summary.append(f"{files_scanned} files scanned")
    lines.append("simlint: " + ", ".join(summary))
    return "\n".join(lines)


def render_json(new: Sequence[Finding],
                baselined: Sequence[Finding] = (),
                stale: Sequence[BaselineEntry] = (),
                files_scanned: Optional[int] = None) -> str:
    """Stable machine rendering (sorted keys, one document)."""

    def finding_dict(finding: Finding) -> dict:
        return {
            "rule": finding.rule,
            "name": finding.name,
            "path": finding.path,
            "line": finding.line,
            "col": finding.col,
            "message": finding.message,
            "fingerprint": finding.fingerprint,
        }

    document = {
        "findings": [finding_dict(f) for f in new],
        "baselined": [finding_dict(f) for f in baselined],
        "stale_baseline": [
            {"rule": entry.rule, "fingerprint": entry.fingerprint,
             "location": entry.location} for entry in stale],
        "summary": {
            "new": len(new),
            "baselined": len(baselined),
            "stale": len(stale),
            "files_scanned": files_scanned,
        },
    }
    return json.dumps(document, indent=2, sort_keys=True)
