"""The simlint CLI: ``python -m repro.lint [paths ...]``.

Exit codes:

* ``0`` — no findings outside the baseline (stale baseline entries are
  reported but do not fail the run);
* ``1`` — at least one non-baselined finding (each is printed with its
  rule id and location);
* ``2`` — usage error (unknown rule id, unreadable path, bad baseline).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List

from repro.lint.baseline import Baseline, DEFAULT_BASELINE_NAME
from repro.lint.engine import (Finding, iter_python_files, lint_file,
                               rule_classes)
from repro.lint.report import render_json, render_text


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="simlint: simulation-safety static analysis "
                    "(determinism, scheduling and plane-contract "
                    "invariants; see docs/lint.md)")
    parser.add_argument("paths", nargs="*", default=["src", "tests"],
                        help="files or directories to lint "
                             "(default: src tests)")
    parser.add_argument("--json", action="store_true",
                        help="emit a JSON report instead of text")
    parser.add_argument("--baseline", metavar="FILE",
                        default=DEFAULT_BASELINE_NAME,
                        help=f"baseline file (default: "
                             f"{DEFAULT_BASELINE_NAME})")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline file entirely")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline to pin every current "
                             "finding, then exit 0")
    parser.add_argument("--rules", metavar="IDS",
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    return parser


def _select_rules(spec: str) -> list:
    classes = {cls.id: cls for cls in rule_classes()}
    selected = []
    for token in spec.split(","):
        rule_id = token.strip().upper()
        if not rule_id:
            continue
        if rule_id not in classes:
            raise SystemExit(
                f"simlint: unknown rule id {rule_id!r} "
                f"(known: {', '.join(sorted(classes))})")
        selected.append(classes[rule_id])
    if not selected:
        raise SystemExit("simlint: --rules selected nothing")
    return selected


def main(argv: List[str] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for cls in rule_classes():
            print(f"{cls.id}  {cls.name}: {cls.rationale}")
        return 0

    try:
        selected = _select_rules(args.rules) if args.rules else None
    except SystemExit as exc:
        print(exc, file=sys.stderr)
        return 2

    findings: List[Finding] = []
    files_scanned = 0
    for raw in args.paths:
        root = Path(raw)
        if not root.exists():
            print(f"simlint: no such path: {raw}", file=sys.stderr)
            return 2
        for file_path in iter_python_files(root):
            files_scanned += 1
            findings.extend(lint_file(file_path, selected))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))

    baseline_path = Path(args.baseline)
    if args.no_baseline:
        baseline = Baseline([], baseline_path)
    else:
        try:
            baseline = Baseline.load(baseline_path)
        except ValueError as exc:
            print(f"simlint: {exc}", file=sys.stderr)
            return 2

    if args.update_baseline:
        baseline.write(findings)
        print(f"simlint: baseline {baseline_path} now pins "
              f"{len(findings)} finding"
              f"{'s' if len(findings) != 1 else ''}")
        return 0

    new, baselined, stale = baseline.split(findings)
    renderer = render_json if args.json else render_text
    print(renderer(new, baselined, stale, files_scanned))
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())
