"""The committed baseline: grandfathered findings, one per line.

A baseline entry pins one *specific* finding by its content-addressed
fingerprint (rule id + path + stripped source line + occurrence
ordinal — see :func:`repro.lint.engine.compute_fingerprint`), so it
keeps matching across unrelated edits that only shift line numbers,
but stops matching — and is reported as *stale* — the moment the
offending line is fixed or the file moves.

File format (``lint-baseline.txt`` at the repo root)::

    # comment lines and blanks are ignored
    DET003 1a2b3c4d5e6f src/repro/foo.py:42  # why this is grandfathered

Only the first two fields (rule id, fingerprint) are significant; the
location and trailing comment are for the human reading the diff.
Every entry is expected to carry a justification comment — the CI gate
admits baselined findings, so the comment is the review trail.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.lint.engine import Finding

DEFAULT_BASELINE_NAME = "lint-baseline.txt"

_HEADER = """\
# simlint baseline — grandfathered findings, one per line:
#   <rule-id> <fingerprint> <path>:<line>  # justification
# Regenerate with:  python -m repro.lint --update-baseline [paths]
# Entries stop matching (and are flagged as stale) once the finding
# is actually fixed; remove them then.
"""


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    fingerprint: str
    location: str = ""
    comment: str = ""


class Baseline:
    """A parsed baseline file plus matching against live findings."""

    def __init__(self, entries: Sequence[BaselineEntry] = (),
                 path: Path = None):
        self.entries = list(entries)
        self.path = path

    # -- I/O -------------------------------------------------------------

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        entries: List[BaselineEntry] = []
        if not path.exists():
            return cls([], path)
        for raw in path.read_text(encoding="utf-8").splitlines():
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            body, _, comment = line.partition("#")
            fields = body.split()
            if len(fields) < 2:
                raise ValueError(
                    f"{path}: malformed baseline line {raw!r} "
                    "(need '<rule-id> <fingerprint> [location]')")
            entries.append(BaselineEntry(
                rule=fields[0], fingerprint=fields[1],
                location=fields[2] if len(fields) > 2 else "",
                comment=comment.strip()))
        return cls(entries, path)

    @staticmethod
    def render(findings: Iterable[Finding],
               comments: Dict[str, str] = None) -> str:
        """The baseline text pinning ``findings`` (sorted, commented)."""
        comments = comments or {}
        lines = [_HEADER]
        for finding in sorted(findings,
                              key=lambda f: (f.path, f.line, f.rule)):
            comment = comments.get(
                finding.fingerprint, "justify or fix, then remove")
            lines.append(f"{finding.rule} {finding.fingerprint} "
                         f"{finding.location()}  # {comment}")
        return "\n".join(lines) + "\n"

    def write(self, findings: Iterable[Finding]) -> None:
        if self.path is None:
            raise ValueError("baseline has no backing path")
        # Preserve existing justification comments across regeneration.
        kept = {entry.fingerprint: entry.comment
                for entry in self.entries if entry.comment}
        self.path.write_text(self.render(findings, kept),
                             encoding="utf-8")

    # -- matching --------------------------------------------------------

    def split(self, findings: Sequence[Finding]
              ) -> Tuple[List[Finding], List[Finding],
                         List[BaselineEntry]]:
        """Partition ``findings`` into (new, baselined) and also return
        the stale baseline entries that matched nothing.

        Fingerprints are multiset-matched: two identical violations
        need two baseline entries.
        """
        budget: Dict[str, int] = {}
        for entry in self.entries:
            budget[entry.fingerprint] = budget.get(entry.fingerprint, 0) + 1
        new: List[Finding] = []
        baselined: List[Finding] = []
        for finding in findings:
            if budget.get(finding.fingerprint, 0) > 0:
                budget[finding.fingerprint] -= 1
                baselined.append(finding)
            else:
                new.append(finding)
        stale: List[BaselineEntry] = []
        for entry in self.entries:
            if budget.get(entry.fingerprint, 0) > 0:
                budget[entry.fingerprint] -= 1
                stale.append(entry)
        return new, baselined, stale
