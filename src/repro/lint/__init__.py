"""simlint: simulation-safety static analysis for this repository.

The repo's headline guarantees — byte-identical traces, golden metrics
CSVs, seeded fault streams — rest on invariants that code review keeps
missing (``id()``-keyed dicts, stray wall-clock reads, uncataloged
metric names).  This package turns each invariant into an AST-level
rule and a CI gate::

    python -m repro.lint src tests        # exit 0 = clean
    python -m repro.lint --list-rules

Three rule families: **DET** (determinism), **SIM** (event-loop
scheduling), **PLANE** (metrics/trace/fault catalog contracts).  The
full catalog, with rationale and examples per rule, is documented in
``docs/lint.md`` and kept in lock-step by ``tests/test_lint_docs.py``
— the same docs-contract pattern the metrics and tracing planes use.

Suppress a single finding inline with ``# simlint: disable=RULE``,
a whole file with ``# simlint: skip-file`` (first five lines), or
grandfather it in the committed ``lint-baseline.txt`` (see
:mod:`repro.lint.baseline`).
"""

from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.engine import (EXCLUDED_DIRS, Finding, ModuleContext, Rule,
                               compute_fingerprint, iter_python_files,
                               lint_file, lint_paths, lint_source,
                               module_name, register, rule_classes,
                               rule_ids)
from repro.lint.report import render_json, render_text

__all__ = [
    "Baseline", "BaselineEntry", "EXCLUDED_DIRS", "Finding",
    "ModuleContext", "Rule", "compute_fingerprint", "iter_python_files",
    "lint_file", "lint_paths", "lint_source", "module_name", "register",
    "rule_classes", "rule_ids", "render_json", "render_text",
]
