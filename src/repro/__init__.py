"""repro — a reproduction of DCS-ctrl (ISCA 2018) as a simulated system.

DCS-ctrl is a hardware-based device-control (HDC) mechanism for
device-centric servers: an independent FPGA "HDC Engine" that
orchestrates direct device-to-device (D2D) communication among
off-the-shelf NVMe SSDs, NICs and GPUs, with near-device processing
(NDP) units for intermediate data processing.

This package implements the complete system as a functional + timing
discrete-event simulation:

* :mod:`repro.sim` — the discrete-event kernel;
* :mod:`repro.pcie`, :mod:`repro.memory` — the interconnect and memory
  substrates;
* :mod:`repro.devices` — NVMe SSD, 10-GbE NIC and GPU models;
* :mod:`repro.net` — packets, TCP framing, the inter-node wire;
* :mod:`repro.host` — CPU accounting and the mini OS kernel;
* :mod:`repro.core` — **the paper's contribution**: HDC Engine
  (scoreboard, standard device controllers, NDP units), HDC Driver and
  HDC Library;
* :mod:`repro.schemes` — the four evaluated designs (software-optimized
  host-centric, software-controlled P2P, device integration, DCS-ctrl);
* :mod:`repro.apps` — Swift-like object store and HDFS-like balancer;
* :mod:`repro.experiments` — one runner per paper table/figure.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
