"""Ethernet / IPv4 / TCP headers, packed and parsed bit-exactly.

Only the fields the reproduction needs are modelled behaviourally, but
the wire layouts are the real ones (RFC 791/793, IEEE 802.3) including
the IPv4 header checksum and the TCP checksum over the pseudo-header,
so header-generation hardware (the engine's NIC controller) and the
host kernel interoperate on actual bytes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import ProtocolError

ETH_HLEN = 14
IP_HLEN = 20
TCP_HLEN = 20

ETHERTYPE_IPV4 = 0x0800
IPPROTO_TCP = 6

TCP_FLAG_FIN = 0x01
TCP_FLAG_SYN = 0x02
TCP_FLAG_RST = 0x04
TCP_FLAG_PSH = 0x08
TCP_FLAG_ACK = 0x10


def checksum16(data: bytes) -> int:
    """RFC 1071 ones-complement 16-bit checksum."""
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for (word,) in struct.iter_unpack("!H", data):
        total += word
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def _mac_bytes(mac: str) -> bytes:
    parts = mac.split(":")
    if len(parts) != 6:
        raise ProtocolError(f"bad MAC address {mac!r}")
    return bytes(int(p, 16) for p in parts)


def _mac_str(data: bytes) -> str:
    return ":".join(f"{b:02x}" for b in data)


def _ip_bytes(ip: str) -> bytes:
    parts = ip.split(".")
    if len(parts) != 4:
        raise ProtocolError(f"bad IPv4 address {ip!r}")
    return bytes(int(p) for p in parts)


def _ip_str(data: bytes) -> str:
    return ".".join(str(b) for b in data)


@dataclass(frozen=True)
class EthernetHeader:
    """An Ethernet II header."""

    dst_mac: str
    src_mac: str
    ethertype: int = ETHERTYPE_IPV4

    def pack(self) -> bytes:
        return (_mac_bytes(self.dst_mac) + _mac_bytes(self.src_mac)
                + struct.pack("!H", self.ethertype))

    @classmethod
    def unpack(cls, data: bytes) -> "EthernetHeader":
        if len(data) < ETH_HLEN:
            raise ProtocolError(f"ethernet header truncated: {len(data)} bytes")
        (ethertype,) = struct.unpack("!H", data[12:14])
        return cls(dst_mac=_mac_str(data[0:6]), src_mac=_mac_str(data[6:12]),
                   ethertype=ethertype)


@dataclass(frozen=True)
class Ipv4Header:
    """An IPv4 header without options."""

    src_ip: str
    dst_ip: str
    total_length: int
    ident: int = 0
    ttl: int = 64
    protocol: int = IPPROTO_TCP

    def pack(self) -> bytes:
        header = struct.pack(
            "!BBHHHBBH4s4s",
            (4 << 4) | 5,            # version 4, IHL 5
            0,                       # DSCP/ECN
            self.total_length,
            self.ident,
            0x4000,                  # don't-fragment
            self.ttl,
            self.protocol,
            0,                       # checksum placeholder
            _ip_bytes(self.src_ip),
            _ip_bytes(self.dst_ip))
        csum = checksum16(header)
        return header[:10] + struct.pack("!H", csum) + header[12:]

    @classmethod
    def unpack(cls, data: bytes) -> "Ipv4Header":
        if len(data) < IP_HLEN:
            raise ProtocolError(f"IPv4 header truncated: {len(data)} bytes")
        fields = struct.unpack("!BBHHHBBH4s4s", data[:IP_HLEN])
        version_ihl = fields[0]
        if version_ihl >> 4 != 4:
            raise ProtocolError(f"not IPv4: version {version_ihl >> 4}")
        if checksum16(data[:IP_HLEN]) != 0:
            raise ProtocolError("IPv4 header checksum mismatch")
        return cls(src_ip=_ip_str(fields[8]), dst_ip=_ip_str(fields[9]),
                   total_length=fields[2], ident=fields[3], ttl=fields[5],
                   protocol=fields[6])


@dataclass(frozen=True)
class TcpHeader:
    """A TCP header without options."""

    src_port: int
    dst_port: int
    seq: int
    ack: int = 0
    flags: int = TCP_FLAG_ACK
    window: int = 65535

    def pack(self, src_ip: str, dst_ip: str, payload: bytes) -> bytes:
        """Pack with a valid checksum over the pseudo-header + payload."""
        header = struct.pack(
            "!HHIIBBHHH",
            self.src_port, self.dst_port,
            self.seq & 0xFFFFFFFF, self.ack & 0xFFFFFFFF,
            5 << 4,                  # data offset 5 words
            self.flags, self.window,
            0,                       # checksum placeholder
            0)                       # urgent pointer
        pseudo = (_ip_bytes(src_ip) + _ip_bytes(dst_ip)
                  + struct.pack("!BBH", 0, IPPROTO_TCP,
                                TCP_HLEN + len(payload)))
        csum = checksum16(pseudo + header + payload)
        return header[:16] + struct.pack("!H", csum) + header[18:]

    @classmethod
    def unpack(cls, data: bytes) -> "TcpHeader":
        if len(data) < TCP_HLEN:
            raise ProtocolError(f"TCP header truncated: {len(data)} bytes")
        fields = struct.unpack("!HHIIBBHHH", data[:TCP_HLEN])
        return cls(src_port=fields[0], dst_port=fields[1], seq=fields[2],
                   ack=fields[3], flags=fields[5], window=fields[6])

    @staticmethod
    def verify_checksum(src_ip: str, dst_ip: str, segment: bytes) -> bool:
        """Validate the checksum of a TCP header+payload segment."""
        pseudo = (_ip_bytes(src_ip) + _ip_bytes(dst_ip)
                  + struct.pack("!BBH", 0, IPPROTO_TCP, len(segment)))
        return checksum16(pseudo + segment) == 0
