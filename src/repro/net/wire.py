"""The physical wire between two NICs.

Serialization at line rate plus propagation; frames are delivered in
order to the remote NIC's ingress queue.  The wire is where the 10 Gbps
(or, for Fig 13 projections, 40 Gbps) bottleneck physically lives.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import SimulationError
from repro.net.packet import wire_bytes
from repro.sim.kernel import Simulator
from repro.sim.resources import Resource, Store
from repro.units import Rate, gbps, usec


class Wire:
    """A full-duplex point-to-point Ethernet link."""

    def __init__(self, sim: Simulator, rate: Optional[Rate] = None,
                 propagation: int = usec(2)):
        self.sim = sim
        self.rate = rate if rate is not None else gbps(10)
        self.propagation = propagation
        self._tx: Dict[str, Resource] = {}
        self._ingress: Dict[str, Store] = {}

    def attach(self, name: str) -> Store:
        """Attach an endpoint; returns its ingress frame queue."""
        if name in self._ingress:
            raise SimulationError(f"endpoint {name!r} already attached")
        if len(self._ingress) >= 2:
            raise SimulationError("a Wire is point-to-point (two endpoints)")
        self._tx[name] = Resource(self.sim, capacity=1)
        self._ingress[name] = Store(self.sim)
        return self._ingress[name]

    def _peer(self, name: str) -> str:
        others = [n for n in self._ingress if n != name]
        if name not in self._ingress or not others:
            raise SimulationError(
                f"endpoint {name!r} not attached or peer missing")
        return others[0]

    def transmit(self, sender: str, frame: bytes):
        """Process: serialize ``frame`` and deliver it to the peer.

        Holds the sender's TX direction for the serialization time of
        the frame *plus* preamble/FCS/IFG overhead, which is exactly
        what caps effective TCP goodput below line rate.
        """
        peer = self._peer(sender)
        with self._tx[sender].request() as req:
            yield req
            yield self.sim.timeout(self.rate.duration(wire_bytes(len(frame))))
        # Propagation pipelines with the next frame's serialization, so
        # delivery runs as its own process.  Order is preserved: delivery
        # processes are spawned in serialization order and wait the same
        # propagation delay onto a FIFO store.
        self.sim.process(self._deliver(peer, frame))

    def _deliver(self, peer: str, frame: bytes):
        yield self.sim.timeout(self.propagation)
        yield self._ingress[peer].put(frame)
