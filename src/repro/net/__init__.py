"""Network substrate: real packet headers, TCP framing, a two-node wire.

The NIC controller in the HDC Engine "generates TCP/IP packet headers
and stores them in the header buffer" and on receive "parses the
received packet headers ... to identify a target connection and
destination location" (paper §III-C).  To reproduce that faithfully,
packets here are real byte strings with real Ethernet/IPv4/TCP headers
and checksums — the engine's NIC controller and the host kernel both
build and parse the same bytes.
"""

from repro.net.headers import (ETH_HLEN, IP_HLEN, TCP_HLEN, EthernetHeader,
                               Ipv4Header, TcpHeader, checksum16)
from repro.net.packet import (FRAME_WIRE_OVERHEAD, HEADER_LEN, MTU,
                              TCP_MSS, Frame, build_frame, parse_frame,
                              segment_payload, wire_bytes)
from repro.net.tcp import FlowTable, TcpEndpoint, TcpFlow
from repro.net.wire import Wire

__all__ = [
    "ETH_HLEN",
    "FRAME_WIRE_OVERHEAD",
    "Frame",
    "HEADER_LEN",
    "IP_HLEN",
    "MTU",
    "TCP_HLEN",
    "TCP_MSS",
    "EthernetHeader",
    "FlowTable",
    "Ipv4Header",
    "TcpEndpoint",
    "TcpFlow",
    "TcpHeader",
    "Wire",
    "build_frame",
    "checksum16",
    "parse_frame",
    "segment_payload",
    "wire_bytes",
]
