"""A lightweight established-TCP-connection abstraction.

The paper's experiments all run over pre-established TCP connections
(Swift REST transfers, HDFS balancer streams); connection setup is in
neither the latency nor the CPU breakdowns.  :class:`TcpFlow` therefore
models an *established* connection: per-direction sequence tracking,
in-order delivery and payload reassembly — enough for the engine's NIC
controller to "identify a target connection and destination location"
(paper §III-C) from parsed headers, and for receivers to detect losses
or reordering as protocol errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Optional

from repro.errors import ProtocolError
from repro.net.headers import EthernetHeader, TcpHeader
from repro.net.packet import Frame

# Monotonic flow identifiers, assigned at construction.  Keying
# per-flow state on ``flow.uid`` instead of ``id(flow)`` keeps every
# flow-indexed dict insertion-ordered by *creation order*, so iteration
# and sorting over those keys are identical across runs (``id()`` is a
# memory address and is not).  The uid must never be embedded in traces
# or exports: it is process-global, so a second run in the same process
# continues the count.  Enforced by ``repro.lint`` rule DET003.
_FLOW_UIDS = count(1)


@dataclass(frozen=True)
class TcpEndpoint:
    """One side of a connection."""

    mac: str
    ip: str
    port: int


class TcpFlow:
    """An established TCP connection between two endpoints.

    The *local* side sends with :meth:`next_header`; incoming frames
    are matched with :meth:`matches` and accepted in order with
    :meth:`accept`.
    """

    def __init__(self, local: TcpEndpoint, remote: TcpEndpoint,
                 initial_seq: int = 1, initial_ack: int = 1):
        self.uid = next(_FLOW_UIDS)  # stable per-flow key (see _FLOW_UIDS)
        self.local = local
        self.remote = remote
        self.snd_nxt = initial_seq   # next sequence number we will send
        self.rcv_nxt = initial_ack   # next sequence number we expect

    # -- transmit ---------------------------------------------------------

    def eth_header(self) -> EthernetHeader:
        """The Ethernet header for outgoing frames."""
        return EthernetHeader(dst_mac=self.remote.mac, src_mac=self.local.mac)

    def next_header(self, payload_len: int) -> TcpHeader:
        """TCP header for the next ``payload_len`` bytes; advances snd_nxt."""
        if payload_len < 0:
            raise ProtocolError(f"negative payload length: {payload_len}")
        header = TcpHeader(src_port=self.local.port, dst_port=self.remote.port,
                           seq=self.snd_nxt, ack=self.rcv_nxt)
        self.snd_nxt += payload_len
        return header

    # -- receive ----------------------------------------------------------

    def matches(self, frame: Frame) -> bool:
        """Does this frame belong to this connection (remote→local)?"""
        return (frame.ip.src_ip == self.remote.ip
                and frame.ip.dst_ip == self.local.ip
                and frame.tcp.src_port == self.remote.port
                and frame.tcp.dst_port == self.local.port)

    def accept(self, frame: Frame) -> bytes:
        """Accept an in-order frame; returns its payload.

        Raises :class:`ProtocolError` on a sequence gap or overlap —
        the simulated wire never reorders, so a gap means a model bug.
        """
        if not self.matches(frame):
            raise ProtocolError(
                f"frame for {frame.ip.dst_ip}:{frame.tcp.dst_port} delivered "
                f"to flow {self.local.ip}:{self.local.port}")
        if frame.tcp.seq != self.rcv_nxt:
            raise ProtocolError(
                f"out-of-order segment: expected seq {self.rcv_nxt}, "
                f"got {frame.tcp.seq}")
        self.rcv_nxt += len(frame.payload)
        return frame.payload

    def reverse(self) -> "TcpFlow":
        """The same connection as seen from the remote side."""
        flow = TcpFlow(local=self.remote, remote=self.local,
                       initial_seq=self.rcv_nxt, initial_ack=self.snd_nxt)
        return flow


@dataclass
class FlowTable:
    """Connection lookup by (remote ip, remote port, local port).

    Both the host kernel's socket layer and the engine's NIC controller
    keep one of these; the engine's copy is what lets it steer received
    payloads to the right destination buffers without the CPU.
    """

    _flows: dict[tuple[str, int, int], TcpFlow] = field(default_factory=dict)

    def add(self, flow: TcpFlow) -> None:
        key = (flow.remote.ip, flow.remote.port, flow.local.port)
        if key in self._flows:
            raise ProtocolError(f"duplicate flow {key}")
        self._flows[key] = flow

    def lookup(self, frame: Frame) -> Optional[TcpFlow]:
        """Find the flow a received frame belongs to (None if unknown)."""
        key = (frame.ip.src_ip, frame.tcp.src_port, frame.tcp.dst_port)
        return self._flows.get(key)

    def remove(self, flow: TcpFlow) -> None:
        key = (flow.remote.ip, flow.remote.port, flow.local.port)
        self._flows.pop(key, None)

    def __len__(self) -> int:
        return len(self._flows)
