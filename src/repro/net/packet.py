"""Frame building, parsing and MTU segmentation.

A :class:`Frame` is a fully serialized Ethernet frame carrying one TCP
segment.  :func:`segment_payload` reproduces what the NIC's large-send
offload (LSO) does in hardware: split one big payload into MSS-sized
segments, replicating and fixing up the headers for each.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ProtocolError
from repro.net.headers import (ETH_HLEN, ETHERTYPE_IPV4, IP_HLEN, TCP_HLEN,
                               EthernetHeader, Ipv4Header, TcpHeader)

MTU = 1500
HEADER_LEN = ETH_HLEN + IP_HLEN + TCP_HLEN  # 54: bytes the NIC splits off
TCP_MSS = MTU - IP_HLEN - TCP_HLEN          # 1460

# Per-frame wire overhead beyond the frame bytes themselves:
# preamble+SFD (8) + FCS (4) + inter-frame gap (12).
FRAME_WIRE_OVERHEAD = 24


@dataclass(frozen=True)
class Frame:
    """A parsed Ethernet/IPv4/TCP frame."""

    eth: EthernetHeader
    ip: Ipv4Header
    tcp: TcpHeader
    payload: bytes

    @property
    def raw_len(self) -> int:
        """Length of the serialized frame (headers + payload)."""
        return HEADER_LEN + len(self.payload)


def wire_bytes(frame_len: int) -> int:
    """Bytes a frame of ``frame_len`` serialized bytes occupies on the wire.

    This is what makes the NIC's *effective* throughput ~9.4 Gbps on a
    10 Gbps line (the paper's footnote 3: "around 9 Gbps due to packet
    overheads").
    """
    return max(frame_len, 60) + FRAME_WIRE_OVERHEAD


def build_frame(eth: EthernetHeader, ip_src: str, ip_dst: str,
                tcp: TcpHeader, payload: bytes) -> bytes:
    """Serialize one frame with correct lengths and checksums."""
    ip = Ipv4Header(src_ip=ip_src, dst_ip=ip_dst,
                    total_length=IP_HLEN + TCP_HLEN + len(payload))
    return (eth.pack() + ip.pack()
            + tcp.pack(ip_src, ip_dst, payload) + payload)


def parse_frame(data: bytes) -> Frame:
    """Parse and validate a serialized frame."""
    eth = EthernetHeader.unpack(data)
    if eth.ethertype != ETHERTYPE_IPV4:
        raise ProtocolError(f"unexpected ethertype {hex(eth.ethertype)}")
    ip = Ipv4Header.unpack(data[ETH_HLEN:])
    segment = data[ETH_HLEN + IP_HLEN:ETH_HLEN + ip.total_length]
    if len(segment) != ip.total_length - IP_HLEN:
        raise ProtocolError(
            f"frame truncated: IP says {ip.total_length - IP_HLEN} bytes of "
            f"L4, got {len(segment)}")
    if not TcpHeader.verify_checksum(ip.src_ip, ip.dst_ip, segment):
        raise ProtocolError("TCP checksum mismatch")
    tcp = TcpHeader.unpack(segment)
    return Frame(eth=eth, ip=ip, tcp=tcp, payload=segment[TCP_HLEN:])


def segment_payload(eth: EthernetHeader, ip_src: str, ip_dst: str,
                    tcp: TcpHeader, payload: bytes,
                    mss: int = TCP_MSS) -> List[bytes]:
    """LSO: split ``payload`` into per-MSS frames with fixed-up headers.

    Sequence numbers advance per segment exactly as TSO hardware does.
    An empty payload still produces one frame (a bare ACK).
    """
    if mss <= 0:
        raise ProtocolError(f"MSS must be positive: {mss}")
    if not payload:
        return [build_frame(eth, ip_src, ip_dst, tcp, b"")]
    frames = []
    offset = 0
    while offset < len(payload):
        chunk = payload[offset:offset + mss]
        seg_tcp = TcpHeader(src_port=tcp.src_port, dst_port=tcp.dst_port,
                            seq=tcp.seq + offset, ack=tcp.ack,
                            flags=tcp.flags, window=tcp.window)
        frames.append(build_frame(eth, ip_src, ip_dst, seg_tcp, chunk))
        offset += len(chunk)
    return frames
