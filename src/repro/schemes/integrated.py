"""Reference design — *device integration* (QuickSAN [20] / BlueDBM [21]).

Table I: fast (direct data copy, hardware control path) but inflexible
(aggregate implementation).  For the performance comparison of Fig 3
the integrated device behaves like DCS-ctrl's hardware path — that is
the paper's own point: DCS-ctrl matches integrated-device performance
*without* the integration.  We therefore model it as the DCS-ctrl
pipeline restricted to its fixed, built-in function set; the
flexibility gap is captured by :attr:`supported_processing` and by
:meth:`supports_device` (an integrated device cannot adopt new device
types at all).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError
from repro.schemes.dcs_ctrl import DcsCtrlScheme


class IntegratedScheme(DcsCtrlScheme):
    """A consolidated storage+network device with a fixed function set."""

    name = "integrated"
    # The consolidated device shipped with exactly one checksum block.
    supported_processing = ("crc32",)

    @staticmethod
    def supports_device(kind: str) -> bool:
        """Integrated devices cannot add off-the-shelf peripherals."""
        return kind in ("ssd", "nic")

    def send_file(self, node, conn, name, offset, size,
                  processing: Optional[str] = None, trace=None):
        if processing is not None and processing not in self.supported_processing:
            raise ConfigurationError(
                f"the integrated device has no {processing!r} block; "
                "adding one means respinning the whole device")
        return (yield from super().send_file(node, conn, name, offset, size,
                                             processing, trace))

    def receive_to_file(self, node, conn, name, offset, size,
                        processing: Optional[str] = None, trace=None):
        if processing is not None and processing not in self.supported_processing:
            raise ConfigurationError(
                f"the integrated device has no {processing!r} block; "
                "adding one means respinning the whole device")
        return (yield from super().receive_to_file(node, conn, name, offset,
                                                   size, processing, trace))
