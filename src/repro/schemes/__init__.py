"""The four evaluated designs (Table I) over a common two-node testbed.

* :class:`SwOptScheme` — host-centric with optimized software (direct
  I/O, zero-copy sendfile-style paths, LSO);
* :class:`SwP2pScheme` — the same software with peer-to-peer data
  paths where the devices allow them (SSD→GPU via the GPU's exposed
  memory window); control stays on the CPU;
* :class:`IntegratedScheme` — a device-integration reference
  (QuickSAN/BlueDBM-style): hardware data+control path, but fixed
  function (modeled as DCS-ctrl without the flexibility, for Fig 3);
* :class:`DcsCtrlScheme` — DCS-ctrl: HDC Library → HDC Driver → HDC
  Engine.
"""

from repro.schemes.testbed import Connection, Testbed
from repro.schemes.base import Scheme, TransferResult
from repro.schemes.sw_opt import SwOptScheme
from repro.schemes.sw_p2p import SwP2pScheme
from repro.schemes.integrated import IntegratedScheme
from repro.schemes.dcs_ctrl import DcsCtrlScheme

ALL_SCHEMES = {
    "sw-opt": SwOptScheme,
    "sw-p2p": SwP2pScheme,
    "integrated": IntegratedScheme,
    "dcs-ctrl": DcsCtrlScheme,
}

__all__ = [
    "ALL_SCHEMES",
    "Connection",
    "DcsCtrlScheme",
    "IntegratedScheme",
    "Scheme",
    "SwOptScheme",
    "SwP2pScheme",
    "Testbed",
    "TransferResult",
]
