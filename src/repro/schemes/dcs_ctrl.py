"""DCS-ctrl — the paper's design: HDC Library → Driver → Engine."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.schemes.base import Scheme, TransferResult
from repro.schemes.testbed import Connection, Node


class DcsCtrlScheme(Scheme):
    """Hardware-based device control with NDP intermediate processing."""

    name = "dcs-ctrl"
    supported_processing = ("md5", "crc32", "sha1", "sha256", "aes256",
                            "gzip")

    def __init__(self, testbed):
        super().__init__(testbed)
        # fd caches per (node, resource) so repeated requests reuse
        # descriptors the way a real server process would.
        self._file_fds: Dict[Tuple[int, str, bool], int] = {}
        self._socket_fds: Dict[Tuple[int, int], int] = {}

    def uses_offloaded_connections(self) -> bool:
        return True

    # -- descriptor management ------------------------------------------------

    def _node_index(self, node: Node) -> int:
        return 0 if node is self.tb.node0 else 1

    def _file_fd(self, node: Node, name: str, writable: bool) -> int:
        key = (self._node_index(node), name, writable)
        fd = self._file_fds.get(key)
        if fd is None:
            fd = node.library.open_file(name, readable=True,
                                        writable=writable)
            self._file_fds[key] = fd
        return fd

    def _socket_fd(self, node: Node, conn: Connection) -> int:
        flow = conn.flow0 if node is self.tb.node0 else conn.flow1
        key = (self._node_index(node), flow.uid)
        fd = self._socket_fds.get(key)
        if fd is None:
            fd = node.library.open_socket(flow)
            self._socket_fds[key] = fd
        return fd

    # -- the two data paths ----------------------------------------------------

    def send_file(self, node: Node, conn: Connection, name: str,
                  offset: int, size: int, processing: Optional[str] = None,
                  trace=None):
        self._check_processing(processing)
        trace = self._trace(trace, op="send", size=size,
                            processing=processing or "none")
        file_fd = self._file_fd(node, name, writable=False)
        sock_fd = self._socket_fd(node, conn)
        completion = yield from node.library.hdc_sendfile(
            sock_fd, file_fd, offset, size,
            func=processing if processing else "none", trace=trace)
        trace.finish()
        return TransferResult(bytes_moved=completion.result_length,
                              digest=completion.digest, trace=trace)

    def client_send(self, node: Node, conn: Connection, size: int):
        """Client pushes from host memory through its engine."""
        sock_fd = self._socket_fd(node, conn)
        buf = node.host.alloc_buffer(size)
        try:
            yield from node.library.hdc_send(sock_fd, buf, size)
        finally:
            node.host.free_buffer(buf, size)
        return size

    def client_recv(self, node: Node, conn: Connection, size: int):
        """Client drains into host memory through its engine."""
        sock_fd = self._socket_fd(node, conn)
        buf = node.host.alloc_buffer(size)
        try:
            yield from node.library.hdc_recv(sock_fd, size, buf)
        finally:
            node.host.free_buffer(buf, size)
        return size

    def receive_to_file(self, node: Node, conn: Connection, name: str,
                        offset: int, size: int,
                        processing: Optional[str] = None, trace=None):
        self._check_processing(processing)
        trace = self._trace(trace, op="recv", size=size,
                            processing=processing or "none")
        file_fd = self._file_fd(node, name, writable=True)
        sock_fd = self._socket_fd(node, conn)
        completion = yield from node.library.hdc_recvfile(
            sock_fd, file_fd, offset, size,
            func=processing if processing else "none", trace=trace)
        trace.finish()
        return TransferResult(bytes_moved=size, digest=completion.digest,
                              trace=trace)
