"""Baseline 1 — *Software optimization* (paper §V-A).

"The baseline system which uses the optimized software to minimize
latency and CPU utilization, but all data transfer go through CPU
memory."  Concretely: direct I/O (no page cache), kernel-resident
zero-copy buffers (no user/kernel data copies), LSO on the NIC — the
optimizations of [9], [16], [17], [19], [21], [26] — with the GPU as
the checksum accelerator, reached through classic driver-managed
copies.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError
from repro.schemes.base import Scheme, TransferResult
from repro.schemes.testbed import Connection, Node

class SwOptScheme(Scheme):
    """Host-centric, software-optimized (data staged in host DRAM)."""

    name = "sw-opt"

    def send_file(self, node: Node, conn: Connection, name: str,
                  offset: int, size: int, processing: Optional[str] = None,
                  trace=None):
        self._check_processing(processing)
        trace = self._trace(trace, op="send", size=size,
                            processing=processing or "none")
        kernel = node.host.kernel
        buf = node.host.alloc_buffer(size)
        try:
            # read(2): one user/kernel round trip.
            yield from kernel.syscall_enter(trace)
            yield from kernel.file_read_direct(name, offset, size, buf, trace)
            yield from kernel.syscall_exit(trace)
            digest = b""
            if processing is not None:
                digest = yield from self._gpu_checksum_host_data(
                    node, buf, size, processing, trace)
            # send(2): a second round trip.
            yield from kernel.syscall_enter(trace)
            yield from kernel.socket_send(conn.flow0 if node is self.tb.node0
                                          else conn.flow1, buf, size, trace)
            yield from kernel.syscall_exit(trace)
        finally:
            node.host.free_buffer(buf, size)
        trace.finish()
        return TransferResult(bytes_moved=size, digest=digest, trace=trace)

    def receive_to_file(self, node: Node, conn: Connection, name: str,
                        offset: int, size: int,
                        processing: Optional[str] = None, trace=None):
        self._check_processing(processing)
        trace = self._trace(trace, op="recv", size=size,
                            processing=processing or "none")
        kernel = node.host.kernel
        buf = node.host.alloc_buffer(size)
        try:
            # recv(2).
            yield from kernel.syscall_enter(trace)
            flow = conn.flow1 if node is self.tb.node1 else conn.flow0
            yield from kernel.socket_recv(flow, size, buf, trace)
            yield from kernel.syscall_exit(trace)
            digest = b""
            if processing is not None:
                digest = yield from self._gpu_checksum_host_data(
                    node, buf, size, processing, trace)
            # write(2).
            yield from kernel.syscall_enter(trace)
            yield from kernel.file_write_direct(name, offset, size, buf,
                                                trace)
            yield from kernel.syscall_exit(trace)
        finally:
            node.host.free_buffer(buf, size)
        trace.finish()
        return TransferResult(bytes_moved=size, digest=digest, trace=trace)

    # -- the classic GPU offload path -------------------------------------------

    def _gpu_checksum_host_data(self, node: Node, buf: int, size: int,
                                kind: str, trace):
        """Process: H2D copy, kernel, D2H digest fetch (paper Fig 3/11)."""
        gpu_driver = node.host.gpu_driver
        if gpu_driver is None:
            raise ConfigurationError("node built without a GPU")
        # Per-request GPU staging: digest slot at the region base, data
        # one page in.
        region_size = size + 4096
        chunks = node.host.gpu_mem.chunks_for(region_size)
        region = (node.host.gpu_mem.alloc() if chunks == 1
                  else node.host.gpu_mem.alloc_contiguous(chunks))
        data_off = region + 4096
        try:
            yield from gpu_driver.copy_to_gpu(buf, data_off, size, trace)
            digest = yield from gpu_driver.checksum(kind, data_off, size,
                                                    region, trace)
            # Fetch the checksum result into CPU memory (paper §V-B).
            digest_buf = node.host.alloc_buffer(len(digest))
            try:
                yield from gpu_driver.copy_from_gpu(region, digest_buf,
                                                    len(digest), trace)
            finally:
                node.host.free_buffer(digest_buf, len(digest))
        finally:
            node.host.gpu_mem.free(region, chunks)
        return digest
