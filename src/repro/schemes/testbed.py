"""The two-node testbed every experiment runs on (paper Fig 10, Table V).

Each node is a full :class:`~repro.host.machine.Host` (Xeon-class CPU,
Intel-750-class NVMe SSD, BCM57711-class 10-GbE NIC, K20m-class GPU)
with a DCS-ctrl stack (HDC Engine + Driver + Library) installed on its
fabric.  The nodes share one Ethernet wire.

Connections come in two flavours:

* *kernel connections* — terminated by the host network stack (the
  software baselines);
* *offloaded connections* — terminated by the HDC Engines (DCS-ctrl);
  the NICs' flow-steering tables send their frames to the engine
  channel, so the host CPUs never see them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.driver import HdcDriver
from repro.core.engine import HDCEngine
from repro.core.library import HdcLibrary
from repro.errors import ConfigurationError
from repro.faults import FaultPlan
from repro.host.costs import DEFAULT_COSTS, SoftwareCosts
from repro.host.machine import Host
from repro.net.tcp import TcpEndpoint, TcpFlow
from repro.net.wire import Wire
from repro.sim.kernel import Simulator
from repro.sim.rng import RngHub
from repro.units import Rate, gbps


@dataclass
class Node:
    """One server of the testbed."""

    host: Host
    driver: Optional[HdcDriver] = None
    engine: Optional[HDCEngine] = None
    library: Optional[HdcLibrary] = None


@dataclass
class Connection:
    """An established TCP connection between the two nodes.

    ``flow0`` is node0's view, ``flow1`` node1's.  ``offloaded`` says
    who terminates it (engines or host kernels).
    """

    flow0: TcpFlow
    flow1: TcpFlow
    offloaded: bool


class Testbed:
    """Two DCS-ctrl-capable nodes on one wire."""

    __test__ = False  # not a pytest class, despite the name

    _ENDPOINTS = (
        TcpEndpoint(mac="02:00:00:00:00:01", ip="10.0.0.1", port=0),
        TcpEndpoint(mac="02:00:00:00:00:02", ip="10.0.0.2", port=0),
    )

    def __init__(self, seed: int = 0, cores: int = 6,
                 wire_rate: Optional[Rate] = None,
                 costs: SoftwareCosts = DEFAULT_COSTS,
                 with_dcs: bool = True, with_gpu: bool = True,
                 in_order_completion: bool = True,
                 nvme_rings_in_host: bool = False,
                 bulk_transfer: bool = True,
                 n_ssds: int = 1,
                 ndp_target_gbps: float = 10.0,
                 faults: Optional[FaultPlan] = None):
        self.sim = Simulator()
        self.rng = RngHub(seed)
        self.node0 = Node(Host(self.sim, "node0", cores=cores, costs=costs,
                               with_gpu=with_gpu, n_ssds=n_ssds))
        self.node1 = Node(Host(self.sim, "node1", cores=cores, costs=costs,
                               with_gpu=with_gpu, n_ssds=n_ssds))
        self.wire = Wire(self.sim,
                         rate=wire_rate if wire_rate is not None else gbps(10))
        arm0 = self.node0.host.connect_network(self.wire)
        arm1 = self.node1.host.connect_network(self.wire)
        if with_dcs:
            for node in (self.node0, self.node1):
                node.driver, node.engine = HdcDriver.install(
                    node.host, in_order_completion=in_order_completion,
                    nvme_rings_in_host=nvme_rings_in_host,
                    bulk_transfer=bulk_transfer,
                    ndp_target_gbps=ndp_target_gbps)
                node.library = HdcLibrary(node.driver)
                self.sim.run(until=self.sim.process(node.driver.start()))
        self.sim.run(until=arm0)
        self.sim.run(until=arm1)
        self._next_port = 40000
        # Install the fault plan only after bring-up: injected faults
        # target steady-state operation, not queue creation or ARP.
        # Both nodes share one Simulator, so one plan covers both sides.
        if faults is not None:
            faults.install(self.sim, self.rng)
        self._leak_baseline = self._leak_state()

    # -- leak accounting -------------------------------------------------------

    def _leak_state(self) -> dict:
        """Snapshot every conserved resource the engines own."""
        state = {}
        for index, node in enumerate(self.nodes):
            if node.engine is None:
                continue
            engine = node.engine
            nic_ctrl = engine.nic_ctrl
            inflight = len(nic_ctrl._desc_slot_addr)
            state[f"node{index}.ddr_free_chunks"] = engine.buffers.free_chunks
            state[f"node{index}.rx_staging_slots"] = (
                len(nic_ctrl._slot_pool) + inflight)
            state[f"node{index}.rx_header_slots"] = (
                len(nic_ctrl._hdr_pool) + inflight)
        return state

    def assert_no_leaks(self) -> None:
        """Fail if buffers/slots did not return to their post-bring-up
        levels, or if engine/driver bookkeeping still holds live work.

        Call after ``sim.run()`` has drained — including runs where D2D
        commands failed, timed out or were aborted.
        """
        problems = []
        current = self._leak_state()
        for key, baseline in self._leak_baseline.items():
            if current[key] != baseline:
                problems.append(
                    f"{key}: {current[key]} != baseline {baseline}")
        for index, node in enumerate(self.nodes):
            if node.engine is not None:
                scoreboard = node.engine.scoreboard
                if scoreboard._tasks:
                    problems.append(
                        f"node{index}: scoreboard still holds "
                        f"{len(scoreboard._tasks)} task(s)")
                busy = {dev: n for dev, n in scoreboard._busy.items() if n}
                if busy:
                    problems.append(
                        f"node{index}: controllers still busy: {busy}")
            if node.driver is not None and node.driver._waiters:
                problems.append(
                    f"node{index}: driver still waits on D2D ids "
                    f"{sorted(node.driver._waiters)}")
        if problems:
            raise AssertionError("resource leaks: " + "; ".join(problems))

    @property
    def nodes(self) -> tuple[Node, Node]:
        return (self.node0, self.node1)

    def node(self, index: int) -> Node:
        return self.nodes[index]

    # -- connections -----------------------------------------------------------

    def _make_flows(self) -> tuple[TcpFlow, TcpFlow]:
        port0 = self._next_port
        port1 = self._next_port + 1
        self._next_port += 2
        ep0 = TcpEndpoint(mac=self._ENDPOINTS[0].mac,
                          ip=self._ENDPOINTS[0].ip, port=port0)
        ep1 = TcpEndpoint(mac=self._ENDPOINTS[1].mac,
                          ip=self._ENDPOINTS[1].ip, port=port1)
        flow0 = TcpFlow(local=ep0, remote=ep1)
        return flow0, flow0.reverse()

    def connect_kernel(self) -> Connection:
        """A connection terminated by the host network stacks."""
        flow0, flow1 = self._make_flows()
        self.node0.host.kernel.register_flow(flow0)
        self.node1.host.kernel.register_flow(flow1)
        return Connection(flow0=flow0, flow1=flow1, offloaded=False)

    def connect_offloaded(self) -> Connection:
        """A connection whose data path is offloaded to the engines."""
        if self.node0.driver is None or self.node1.driver is None:
            raise ConfigurationError("testbed built without DCS-ctrl")
        flow0, flow1 = self._make_flows()
        self.node0.driver.register_flow(flow0)
        self.node1.driver.register_flow(flow1)
        return Connection(flow0=flow0, flow1=flow1, offloaded=True)

    # -- measurement helpers -------------------------------------------------------

    def reset_cpu_windows(self) -> None:
        """Start fresh CPU-utilization windows on both nodes."""
        self.node0.host.cpu.tracker.reset_window()
        self.node1.host.cpu.tracker.reset_window()
