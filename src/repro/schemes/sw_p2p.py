"""Baseline 2 — *Software-controlled P2P* (paper §V-A).

"Software-controlled P2P uses optimized software and leverages direct
inter-device communication.  However, its control path is not
optimized and a CPU still controls all device operations."

What P2P buys, per the paper's own constraints:

* SSD→GPU direct (SPIN/Donard-style): the SSD DMAs straight into the
  GPU's exposed memory window — no host staging, no H2D driver copy;
* GPU→NIC direct (GPUDirect-RDMA-style): the NIC's TX engine fetches
  the payload from GPU memory;
* SSD↔NIC direct: **impossible** — "Both devices do not allow other
  devices to access their internal memory" (§V-A), so without
  processing this scheme degenerates to the SW-opt data path;
* NIC→GPU direct on receive: defeated by the data-gathering problem
  (split packets must be coalesced by the CPU first, §V-C2), so the
  receive side also stages in host memory.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError
from repro.schemes.sw_opt import SwOptScheme
from repro.schemes.testbed import Connection, Node
from repro.schemes.base import TransferResult


class SwP2pScheme(SwOptScheme):
    """Optimized software + peer-to-peer data paths where possible."""

    name = "sw-p2p"

    def send_file(self, node: Node, conn: Connection, name: str,
                  offset: int, size: int, processing: Optional[str] = None,
                  trace=None):
        if processing is None:
            # SSD<->NIC P2P impossible: identical to the SW-opt path.
            return (yield from super().send_file(node, conn, name, offset,
                                                 size, None, trace))
        self._check_processing(processing)
        trace = self._trace(trace, op="send", size=size,
                            processing=processing or "none")
        host = node.host
        kernel = host.kernel
        gpu = host.gpu
        gpu_driver = host.gpu_driver
        if gpu is None or gpu_driver is None:
            raise ConfigurationError("node built without a GPU")
        region_size = size + 4096
        chunks = host.gpu_mem.chunks_for(region_size)
        region = (host.gpu_mem.alloc() if chunks == 1
                  else host.gpu_mem.alloc_contiguous(chunks))
        data_off = region + 4096
        try:
            yield from kernel.syscall_enter(trace)
            # P2P: the SSD DMAs the file straight into GPU memory.
            yield from kernel.file_read_direct(name, offset, size,
                                               gpu.mem_addr(data_off), trace)
            digest = yield from gpu_driver.checksum(processing, data_off,
                                                    size, region, trace)
            digest_buf = host.alloc_buffer(len(digest))
            try:
                yield from gpu_driver.copy_from_gpu(region, digest_buf,
                                                    len(digest), trace)
            finally:
                host.free_buffer(digest_buf, len(digest))
            # P2P: the NIC fetches the payload from GPU memory directly.
            flow = conn.flow0 if node is self.tb.node0 else conn.flow1
            yield from kernel.socket_send(flow, gpu.mem_addr(data_off),
                                          size, trace)
            yield from kernel.syscall_exit(trace)
        finally:
            host.gpu_mem.free(region, chunks)
        trace.finish()
        return TransferResult(bytes_moved=size, digest=digest, trace=trace)

    # receive_to_file: inherited from SwOptScheme verbatim — the
    # data-gathering problem forces the host-staged path (paper §V-C2:
    # "software-controlled P2P cannot remove the GPU control overheads
    # due to the unavoidable data gathering process").
