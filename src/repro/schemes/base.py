"""The scheme interface: what every evaluated design must implement.

Both microbenchmarks and the Swift/HDFS application models drive
schemes through two operations, matching the paper's two pipelines:

* :meth:`Scheme.send_file` — the SSD→(processing)→NIC path (Fig 11,
  Swift GET, HDFS balancer sender);
* :meth:`Scheme.receive_to_file` — the NIC→(processing)→SSD path
  (Swift PUT, HDFS balancer receiver).

Each returns a :class:`TransferResult` carrying the checksum computed
in flight (empty when no processing was requested), so tests can check
functional equivalence across schemes against ``hashlib``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.breakdown import LatencyTrace
from repro.errors import ConfigurationError
from repro.schemes.testbed import Connection, Node, Testbed


@dataclass
class TransferResult:
    """Outcome of one scheme operation."""

    bytes_moved: int
    digest: bytes = b""
    trace: Optional[LatencyTrace] = None

    @property
    def latency_us(self) -> float:
        if self.trace is None:
            raise ConfigurationError("operation ran without a trace")
        return self.trace.total_us


class Scheme:
    """Base class; subclasses implement the two data paths as processes."""

    name = "abstract"
    # Which checksums this scheme can compute in flight.
    supported_processing = ("md5", "crc32", "sha1", "sha256")

    def __init__(self, testbed: Testbed):
        self.tb = testbed
        self.sim = testbed.sim

    # -- interface -----------------------------------------------------------

    def uses_offloaded_connections(self) -> bool:
        """True if connections must be engine-terminated."""
        return False

    def connect(self) -> Connection:
        """A connection of the flavour this scheme needs."""
        if self.uses_offloaded_connections():
            return self.tb.connect_offloaded()
        return self.tb.connect_kernel()

    def send_file(self, node: Node, conn: Connection, name: str,
                  offset: int, size: int, processing: Optional[str] = None,
                  trace=None):  # pragma: no cover - abstract
        """Process: read [offset, offset+size) of ``name`` from the
        node's SSD, optionally checksum it, transmit it on ``conn``."""
        raise NotImplementedError

    def receive_to_file(self, node: Node, conn: Connection, name: str,
                        offset: int, size: int,
                        processing: Optional[str] = None,
                        trace=None):  # pragma: no cover - abstract
        """Process: receive ``size`` bytes from ``conn``, optionally
        checksum them, store them into ``name`` on the node's SSD."""
        raise NotImplementedError

    def client_send(self, node: Node, conn: Connection, size: int):
        """Process: push ``size`` bytes of client payload onto ``conn``
        (the remote peer of a server PUT).  Default: the kernel path."""
        buf = node.host.alloc_buffer(size)
        try:
            flow = conn.flow0 if node is self.tb.node0 else conn.flow1
            yield from node.host.kernel.socket_send(flow, buf, size)
        finally:
            node.host.free_buffer(buf, size)
        return size

    def client_recv(self, node: Node, conn: Connection, size: int):
        """Process: drain ``size`` bytes from ``conn`` on the client
        side (the remote peer of a server GET).  Default: kernel path."""
        buf = node.host.alloc_buffer(size)
        try:
            flow = conn.flow0 if node is self.tb.node0 else conn.flow1
            yield from node.host.kernel.socket_recv(flow, size, buf)
        finally:
            node.host.free_buffer(buf, size)
        return size

    # -- helpers --------------------------------------------------------------

    def _check_processing(self, processing: Optional[str]) -> None:
        if processing is not None and processing not in self.supported_processing:
            raise ConfigurationError(
                f"{self.name} cannot compute {processing!r} in flight")

    def _trace(self, trace, op: str = "request", **args) -> LatencyTrace:
        if trace is None:
            trace = LatencyTrace(self.sim)
        # Root the request in the event trace (no-op when tracing is off
        # or the caller already bound the trace to an earlier operation).
        return trace.bind(op=f"{self.name}:{op}", scheme=self.name, **args)
