"""The request workload: Poisson arrivals, Dropbox sizes, PUT/GET mix.

Paper §V-C1: "To model a realistic user behavior, we generate user
requests with the parameters (e.g., PUT/GET ratio, file size
distribution) in [42] obtained from the real-world data-serving
service.  We also use the Poisson process to model request arrivals."

The Dropbox study's transfer mix skews toward retrieval with a solid
upload share; we use GET:PUT = 60:40.  Object sizes follow the bucket
mix in :data:`repro.sim.rng.DROPBOX_SIZE_BUCKETS`, capped by
``max_object`` to keep simulated transfers tractable (documented
substitution: the cap trims the >1 MiB tail, which affects absolute
bytes moved but not per-byte CPU costs).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List

from repro.sim.rng import RngHub, dropbox_file_sizes, exponential_interarrivals
from repro.units import MIB


class RequestKind(enum.Enum):
    GET = "GET"
    PUT = "PUT"


@dataclass(frozen=True)
class Request:
    """One client request."""

    kind: RequestKind
    size: int
    arrival: int  # ns offset from workload start


@dataclass(frozen=True)
class WorkloadConfig:
    """Workload shape parameters."""

    arrival_rate: float = 2000.0   # requests per second
    put_ratio: float = 0.4
    max_object: int = 1 * MIB
    count: int = 100               # requests to generate
    seed: int = 0


def requests(config: WorkloadConfig) -> List[Request]:
    """Generate the request list for a run (deterministic per seed)."""
    if not 0.0 <= config.put_ratio <= 1.0:
        raise ValueError(f"put_ratio must be in [0, 1]: {config.put_ratio}")
    if config.count <= 0:
        raise ValueError(f"count must be positive: {config.count}")
    hub = RngHub(config.seed)
    arrival_rng = hub.stream("arrivals")
    size_rng = hub.stream("sizes")
    kind_rng = hub.stream("kinds")
    gaps = exponential_interarrivals(arrival_rng, config.arrival_rate)
    sizes = dropbox_file_sizes(size_rng)
    out = []
    now = 0
    for _ in range(config.count):
        now += next(gaps)
        size = min(next(sizes), config.max_object)
        kind = (RequestKind.PUT if kind_rng.random() < config.put_ratio
                else RequestKind.GET)
        out.append(Request(kind=kind, size=size, arrival=now))
    return out


def bytes_by_kind(reqs: Iterator[Request]) -> dict:
    """Total payload bytes per request kind."""
    totals = {RequestKind.GET: 0, RequestKind.PUT: 0}
    for request in reqs:
        totals[request.kind] += request.size
    return totals
