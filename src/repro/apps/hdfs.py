"""An HDFS-balancer-like block mover (paper §V-C2).

"HDFS balancer distributes skewed data across nodes ...  a sender reads
data from an NVMe SSD and sends it to a receiver without the integrity
check.  On the opposite side, the receiver receives the data and
computes a CRC32 checksum of the data ...  After the receiver checks
the checksum, it stores the data into an NVMe SSD."

Block size substitution: HDFS moves 64-128 MiB blocks; we move 1 MiB
blocks by default so runs stay tractable — per-byte CPU costs (what
Fig 12b/13 report) are unchanged, per-block fixed costs are slightly
over-represented, which is *pessimistic* for DCS-ctrl.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.schemes.base import Scheme
from repro.units import MIB, SEC


@dataclass(frozen=True)
class HdfsConfig:
    """One balancer run."""

    block_size: int = 1 * MIB
    blocks: int = 24
    streams: int = 2           # concurrent mover connections
    integrity: str = "crc32"   # Table II: HDFS checks CRC32
    # Datanode (Java) work per KiB moved — block/lease bookkeeping,
    # checksum-file management, protobuf framing.  Scheme-independent;
    # calibrated so the baseline's app:kernel CPU ratio matches the
    # paper's Fig 12b composition.
    sender_app_ns_per_kib: int = 250
    receiver_app_ns_per_kib: int = 500


@dataclass
class HdfsRun:
    """Results of one balancer run (sender = node0, receiver = node1)."""

    scheme: str
    duration_ns: int
    bytes_moved: int
    sender_cpu: Dict[str, float]
    receiver_cpu: Dict[str, float]

    @property
    def throughput_gbps(self) -> float:
        if self.duration_ns <= 0:
            return 0.0
        return self.bytes_moved * 8 / (self.duration_ns / SEC) / 1e9

    @property
    def sender_cpu_total(self) -> float:
        return sum(self.sender_cpu.values())

    @property
    def receiver_cpu_total(self) -> float:
        return sum(self.receiver_cpu.values())


def run_hdfs_balancer(scheme: Scheme, config: HdfsConfig) -> HdfsRun:
    """Move ``blocks`` blocks from node0 to node1 as fast as the scheme
    allows (back-to-back: the balancer saturates its streams)."""
    tb = scheme.tb
    sim = tb.sim
    sender = tb.node0
    receiver = tb.node1

    for index in range(config.blocks):
        sender.host.install_file(
            f"hdfs-src-{index}.blk",
            bytes((i * 17 + index) % 256 for i in range(config.block_size)))
    for stream in range(config.streams):
        receiver.host.install_file(f"hdfs-dst-{stream}.blk",
                                   bytes(config.block_size))

    work = list(range(config.blocks))

    start = sim.now
    tb.reset_cpu_windows()

    from repro.host.costs import CAT
    kib_per_block = config.block_size // 1024
    # Software designs move every byte through the datanode process
    # (user-space buffers); DCS-ctrl's sendfile-like calls keep data
    # out of host memory entirely (paper §IV-A), so the per-byte copy
    # only exists for the non-offloaded schemes.
    user_copy = (0 if scheme.uses_offloaded_connections()
                 else sender.host.costs.copy_cost(config.block_size))

    def sender_side(conn, index):
        yield from sender.host.cpu.run(
            config.sender_app_ns_per_kib * kib_per_block + user_copy,
            CAT.APPLICATION)
        yield from scheme.send_file(sender, conn, f"hdfs-src-{index}.blk",
                                    0, config.block_size, processing=None)

    def receiver_side(conn, stream):
        yield from receiver.host.cpu.run(
            config.receiver_app_ns_per_kib * kib_per_block + user_copy,
            CAT.APPLICATION)
        yield from scheme.receive_to_file(receiver, conn,
                                          f"hdfs-dst-{stream}.blk", 0,
                                          config.block_size,
                                          processing=config.integrity)

    def mover(stream: int, conn):
        moved = 0
        while work:
            index = work.pop(0)  # no yield between check and pop
            send_proc = sim.process(sender_side(conn, index))
            recv_proc = sim.process(receiver_side(conn, stream))
            yield sim.all_of([send_proc, recv_proc])
            moved += config.block_size
        return moved

    movers = [sim.process(mover(stream, scheme.connect()))
              for stream in range(config.streams)]
    total = 0
    for proc in movers:
        total += sim.run(until=proc)

    return HdfsRun(scheme=scheme.name, duration_ns=sim.now - start,
                   bytes_moved=total,
                   sender_cpu=sender.host.cpu.utilization_by_category(),
                   receiver_cpu=receiver.host.cpu.utilization_by_category())
