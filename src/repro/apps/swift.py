"""An OpenStack-Swift-like object server (paper §V-C1).

The served path is exactly what the paper measures: a client sends REST
PUT/GET requests; the storage server moves object data between SSD and
NIC with MD5 data-integrity processing in between, using whichever
scheme is under test (GPU offload for the software baselines, NDP for
DCS-ctrl).

Server-side request handling (HTTP parse, auth, ring lookup) costs CPU
per request on top of the data path; it is identical across schemes,
as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.host.costs import CAT
from repro.apps.workload import Request, RequestKind, WorkloadConfig, requests
from repro.schemes.base import Scheme
from repro.sim.resources import Store
from repro.sim.stats import Histogram
from repro.units import SEC, to_usec, usec


@dataclass(frozen=True)
class SwiftConfig:
    """One Swift run."""

    workload: WorkloadConfig = WorkloadConfig()
    connections: int = 4
    # Swift's Python proxy/object-server work per request (HTTP parse,
    # auth, ring lookup, ETag bookkeeping) — scheme-independent, and a
    # big share of real deployments' CPU.
    request_cpu: int = usec(40)
    integrity: str = "md5"         # Table II: Swift checks MD5


@dataclass
class SwiftRun:
    """Results of one Swift run."""

    scheme: str
    duration_ns: int
    bytes_get: int
    bytes_put: int
    requests_done: int
    server_cpu: Dict[str, float]      # utilization by category
    server_cpu_get: Dict[str, float]  # kernel-side split, GET phase style
    server_cpu_put: Dict[str, float]
    latencies: Histogram = field(default_factory=Histogram)

    @property
    def throughput_gbps(self) -> float:
        if self.duration_ns <= 0:
            return 0.0
        return ((self.bytes_get + self.bytes_put) * 8
                / (self.duration_ns / SEC) / 1e9)

    @property
    def server_cpu_total(self) -> float:
        return sum(self.server_cpu.values())


def run_swift(scheme: Scheme, config: SwiftConfig) -> SwiftRun:
    """Execute a Swift workload on ``scheme``'s testbed; node0 serves."""
    tb = scheme.tb
    sim = tb.sim
    server = tb.node0
    client = tb.node1
    reqs = requests(config.workload)

    # Pre-install one GET object per distinct size and per-connection
    # PUT targets (the paper pre-loads its datasets).
    get_names: Dict[int, str] = {}
    for request in reqs:
        if request.kind is RequestKind.GET and request.size not in get_names:
            name = f"swift-get-{request.size}.dat"
            server.host.install_file(
                name, bytes((i * 31) % 256 for i in range(request.size)))
            get_names[request.size] = name
    put_names: List[str] = []
    for index in range(config.connections):
        name = f"swift-put-{index}.dat"
        server.host.install_file(name, bytes(config.workload.max_object))
        put_names.append(name)

    conn_pool = Store(sim)
    for index in range(config.connections):
        conn_pool.put((index, scheme.connect()))

    stats = SwiftRun(scheme=scheme.name, duration_ns=0, bytes_get=0,
                     bytes_put=0, requests_done=0, server_cpu={},
                     server_cpu_get={}, server_cpu_put={})
    start = sim.now
    tb.reset_cpu_windows()
    done_events = []

    # Software designs shuttle object bytes through Swift's Python
    # process; DCS-ctrl replaces those routines with one API call, so
    # the per-byte user-space handling disappears (paper §IV-A).
    offloaded = scheme.uses_offloaded_connections()

    def handle(request: Request):
        index, conn = yield conn_pool.get()
        began = sim.now
        # Request handling on the server (HTTP/proxy), scheme-agnostic.
        app_cpu = config.request_cpu
        if not offloaded:
            app_cpu += server.host.costs.copy_cost(request.size)
        yield from server.host.cpu.run(app_cpu, CAT.APPLICATION)
        if request.kind is RequestKind.GET:
            server_op = scheme.send_file(
                server, conn, get_names[request.size], 0, request.size,
                processing=config.integrity)
            client_op = scheme.client_recv(client, conn, request.size)
            stats.bytes_get += request.size
        else:
            server_op = scheme.receive_to_file(
                server, conn, put_names[index], 0, request.size,
                processing=config.integrity)
            client_op = scheme.client_send(client, conn, request.size)
            stats.bytes_put += request.size
        server_proc = sim.process(server_op)
        client_proc = sim.process(client_op)
        yield sim.all_of([server_proc, client_proc])
        stats.latencies.add(to_usec(sim.now - began))
        stats.requests_done += 1
        yield conn_pool.put((index, conn))

    def arrivals():
        t0 = sim.now
        for request in reqs:
            wait = (t0 + request.arrival) - sim.now
            if wait > 0:
                yield sim.timeout(wait)
            done_events.append(sim.process(handle(request)))

    arrival_proc = sim.process(arrivals())
    sim.run(until=arrival_proc)
    for event in done_events:
        sim.run(until=event)

    stats.duration_ns = sim.now - start
    stats.server_cpu = server.host.cpu.utilization_by_category()
    return stats


def run_swift_split(scheme: Scheme, config: SwiftConfig
                    ) -> tuple[SwiftRun, SwiftRun]:
    """Run a GET-only and a PUT-only workload (paper Fig 12a's
    Kernel(GET)/Kernel(PUT) split) on fresh connections."""
    get_cfg = SwiftConfig(
        workload=WorkloadConfig(
            arrival_rate=config.workload.arrival_rate,
            put_ratio=0.0, max_object=config.workload.max_object,
            count=config.workload.count, seed=config.workload.seed),
        connections=config.connections, request_cpu=config.request_cpu,
        integrity=config.integrity)
    put_cfg = SwiftConfig(
        workload=WorkloadConfig(
            arrival_rate=config.workload.arrival_rate,
            put_ratio=1.0, max_object=config.workload.max_object,
            count=config.workload.count, seed=config.workload.seed + 1),
        connections=config.connections, request_cpu=config.request_cpu,
        integrity=config.integrity)
    get_run = run_swift(scheme, get_cfg)
    put_run = run_swift(scheme, put_cfg)
    return get_run, put_run
