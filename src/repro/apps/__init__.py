"""Scale-out storage applications (paper §V-C).

* :mod:`repro.apps.workload` — the request generator: Poisson arrivals
  with Dropbox-study object sizes and a PUT/GET mix [42];
* :mod:`repro.apps.swift` — an OpenStack-Swift-like object server
  (MD5 data integrity on both PUT and GET);
* :mod:`repro.apps.hdfs` — an HDFS-balancer-like block mover (plain
  read+send on the sender, CRC32 + store on the receiver).
"""

from repro.apps.workload import Request, RequestKind, WorkloadConfig, requests
from repro.apps.swift import SwiftConfig, SwiftRun, run_swift
from repro.apps.hdfs import HdfsConfig, HdfsRun, run_hdfs_balancer

__all__ = [
    "HdfsConfig",
    "HdfsRun",
    "Request",
    "RequestKind",
    "SwiftConfig",
    "SwiftRun",
    "WorkloadConfig",
    "requests",
    "run_hdfs_balancer",
    "run_swift",
]
