"""Units and unit helpers used across the simulator.

Simulated time is an integer number of **nanoseconds**; data sizes are
integer **bytes**.  Using integers keeps the event queue exactly ordered
and the simulation deterministic.  The helpers below exist so that model
constants read like the datasheets they were calibrated from
(``usec(15)``, ``gbps(17.2)``) instead of raw magic numbers.
"""

from __future__ import annotations

# --- time -----------------------------------------------------------------

NSEC = 1
USEC = 1_000
MSEC = 1_000_000
SEC = 1_000_000_000


def nsec(value: float) -> int:
    """Convert nanoseconds to simulation ticks (identity, rounded)."""
    return round(value)


def usec(value: float) -> int:
    """Convert microseconds to simulation ticks."""
    return round(value * USEC)


def msec(value: float) -> int:
    """Convert milliseconds to simulation ticks."""
    return round(value * MSEC)


def sec(value: float) -> int:
    """Convert seconds to simulation ticks."""
    return round(value * SEC)


def to_usec(ticks: int) -> float:
    """Render simulation ticks as microseconds (for reports)."""
    return ticks / USEC


def to_msec(ticks: int) -> float:
    """Render simulation ticks as milliseconds (for reports)."""
    return ticks / MSEC


def to_sec(ticks: int) -> float:
    """Render simulation ticks as seconds (for reports)."""
    return ticks / SEC


# --- sizes ----------------------------------------------------------------

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

SECTOR = 512
PAGE = 4 * KIB


def kib(value: float) -> int:
    """Convert KiB to bytes."""
    return round(value * KIB)


def mib(value: float) -> int:
    """Convert MiB to bytes."""
    return round(value * MIB)


def gib(value: float) -> int:
    """Convert GiB to bytes."""
    return round(value * GIB)


# --- rates ----------------------------------------------------------------


class Rate:
    """A data rate expressed internally as bytes per second.

    A :class:`Rate` knows how long a transfer of ``size`` bytes takes in
    simulation ticks, which is the only question the models ever ask.
    """

    __slots__ = ("bytes_per_sec",)

    def __init__(self, bytes_per_sec: float):
        if bytes_per_sec <= 0:
            raise ValueError(f"rate must be positive, got {bytes_per_sec}")
        self.bytes_per_sec = float(bytes_per_sec)

    def duration(self, size: int) -> int:
        """Return the time (ns) to move ``size`` bytes at this rate."""
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        return round(size * SEC / self.bytes_per_sec)

    def gbps(self) -> float:
        """Render as gigabits per second (for reports)."""
        return self.bytes_per_sec * 8 / 1e9

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Rate({self.gbps():.2f} Gbps)"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Rate) and self.bytes_per_sec == other.bytes_per_sec

    def __hash__(self) -> int:
        return hash(self.bytes_per_sec)


def gbps(value: float) -> Rate:
    """A rate in gigabits per second (decimal, as datasheets quote)."""
    return Rate(value * 1e9 / 8)


def mbps(value: float) -> Rate:
    """A rate in megabits per second."""
    return Rate(value * 1e6 / 8)


def gibps(value: float) -> Rate:
    """A rate in gibibytes per second."""
    return Rate(value * GIB)
