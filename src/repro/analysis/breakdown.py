"""Latency and CPU breakdown containers.

A :class:`LatencyTrace` rides along one request's critical path; every
pipeline stage wraps itself in ``with trace.span(category):`` so the
per-component latency decomposition of Figs 3a/11 falls out of the
simulation rather than being asserted.
"""

from __future__ import annotations

from collections import defaultdict
from contextlib import contextmanager
from typing import Dict, Optional

from repro.units import to_usec


class LatencyTrace:
    """Per-request latency segments, by component category."""

    def __init__(self, sim):
        self.sim = sim
        self.segments: Dict[str, int] = defaultdict(int)
        self.started_at = sim.now
        self.finished_at: Optional[int] = None

    @contextmanager
    def span(self, category: str):
        """Attribute the wall time spent inside the block to ``category``.

        Safe to wrap around ``yield``-ing simulation code: only the
        simulated clock is sampled.
        """
        start = self.sim.now
        try:
            yield
        finally:
            self.segments[category] += self.sim.now - start

    def add(self, category: str, duration: int) -> None:
        """Attribute ``duration`` ns directly."""
        self.segments[category] += duration

    def finish(self) -> None:
        """Mark the request complete (records end-to-end latency)."""
        self.finished_at = self.sim.now

    @property
    def total(self) -> int:
        """End-to-end ns (requires :meth:`finish`), else sum of segments."""
        if self.finished_at is not None:
            return self.finished_at - self.started_at
        return sum(self.segments.values())

    @property
    def total_us(self) -> float:
        return to_usec(self.total)

    def breakdown_us(self) -> Dict[str, float]:
        """Segments in microseconds, sorted by decreasing share."""
        items = sorted(self.segments.items(), key=lambda kv: -kv[1])
        return {k: to_usec(v) for k, v in items}

    def unattributed(self) -> int:
        """End-to-end time not covered by any span (overlap-free only)."""
        if self.finished_at is None:
            return 0
        return max(0, self.total - sum(self.segments.values()))


class NullTrace:
    """A trace that records nothing (for untraced requests)."""

    @contextmanager
    def span(self, category: str):
        yield

    def add(self, category: str, duration: int) -> None:
        pass

    def finish(self) -> None:
        pass


NULL_TRACE = NullTrace()


class CpuBreakdown:
    """A normalized CPU-utilization decomposition for reports."""

    def __init__(self, utilization_by_category: Dict[str, float],
                 cores: int = 1):
        self.by_category = dict(utilization_by_category)
        self.cores = cores

    @property
    def total(self) -> float:
        return sum(self.by_category.values())

    def normalized_to(self, reference_total: float) -> Dict[str, float]:
        """Scale so that ``reference_total`` maps to 1.0 (paper's Fig 3b)."""
        if reference_total <= 0:
            raise ValueError("reference total must be positive")
        return {k: v / reference_total for k, v in self.by_category.items()}

    def core_equivalents(self) -> float:
        """Busy time expressed in whole-core units."""
        return self.total * self.cores
