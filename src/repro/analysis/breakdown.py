"""Latency and CPU breakdown containers.

A :class:`LatencyTrace` rides along one request's critical path; every
pipeline stage wraps itself in ``with trace.span(category):`` so the
per-component latency decomposition of Figs 3a/11 falls out of the
simulation rather than being asserted.
"""

from __future__ import annotations

from collections import defaultdict
from contextlib import contextmanager
from typing import Dict, Optional

from repro.units import to_usec


class LatencyTrace:
    """Per-request latency segments, by component category.

    When the simulator has an attached :class:`~repro.trace.Tracer`
    (a ``TraceSession`` is installed), the trace mirrors itself into
    the event stream: :meth:`bind` opens a ``request`` root span, every
    :meth:`span`/:meth:`add` segment becomes a ``phase`` event under
    it, and :meth:`finish` closes the root.  The span-derived breakdown
    therefore equals :attr:`segments` by construction (asserted in
    ``tests/test_trace.py``).
    """

    def __init__(self, sim):
        self.sim = sim
        self.segments: Dict[str, int] = defaultdict(int)
        self.started_at = sim.now
        self.finished_at: Optional[int] = None
        self._tracer = sim.tracer
        self._root = None

    def bind(self, op: str = "request", **args) -> "LatencyTrace":
        """Open the ``request`` root span (no-op when tracing is off or
        already bound); schemes call this with their operation name."""
        if self._tracer is not None and self._root is None:
            self._root = self._tracer.begin("request", track="requests",
                                            name=op, **args)
        return self

    def _emit_phase(self, category: str, start: int, duration: int,
                    attributed: bool = False) -> None:
        if duration <= 0:
            return
        if attributed:
            self._tracer.complete("phase", track="requests", start=start,
                                  duration=duration, name=category,
                                  parent=self._root, attributed=True)
        else:
            self._tracer.complete("phase", track="requests", start=start,
                                  duration=duration, name=category,
                                  parent=self._root)

    @contextmanager
    def span(self, category: str):
        """Attribute the wall time spent inside the block to ``category``.

        Safe to wrap around ``yield``-ing simulation code: only the
        simulated clock is sampled.
        """
        start = self.sim.now
        try:
            yield
        finally:
            self.segments[category] += self.sim.now - start
            if self._tracer is not None:
                self._emit_phase(category, start, self.sim.now - start)

    def add(self, category: str, duration: int) -> None:
        """Attribute ``duration`` ns directly (after-the-fact, e.g. the
        engine's stage profile)."""
        self.segments[category] += duration
        if self._tracer is not None:
            self._emit_phase(category, max(0, self.sim.now - duration),
                             duration, attributed=True)

    def finish(self) -> None:
        """Mark the request complete (records end-to-end latency)."""
        self.finished_at = self.sim.now
        if self._root is not None:
            self._root.end()
            self._root = None

    @property
    def total(self) -> int:
        """End-to-end ns (requires :meth:`finish`), else sum of segments."""
        if self.finished_at is not None:
            return self.finished_at - self.started_at
        return sum(self.segments.values())

    @property
    def total_us(self) -> float:
        return to_usec(self.total)

    def breakdown_us(self) -> Dict[str, float]:
        """Segments in microseconds, sorted by decreasing share."""
        items = sorted(self.segments.items(), key=lambda kv: -kv[1])
        return {k: to_usec(v) for k, v in items}

    def unattributed(self) -> int:
        """End-to-end time not covered by any span (overlap-free only)."""
        if self.finished_at is None:
            return 0
        return max(0, self.total - sum(self.segments.values()))


class NullTrace:
    """A trace that records nothing (for untraced requests)."""

    def bind(self, op: str = "request", **args) -> "NullTrace":
        return self

    @contextmanager
    def span(self, category: str):
        yield

    def add(self, category: str, duration: int) -> None:
        pass

    def finish(self) -> None:
        pass


NULL_TRACE = NullTrace()


class CpuBreakdown:
    """A normalized CPU-utilization decomposition for reports."""

    def __init__(self, utilization_by_category: Dict[str, float],
                 cores: int = 1):
        self.by_category = dict(utilization_by_category)
        self.cores = cores

    @property
    def total(self) -> float:
        return sum(self.by_category.values())

    def normalized_to(self, reference_total: float) -> Dict[str, float]:
        """Scale so that ``reference_total`` maps to 1.0 (paper's Fig 3b)."""
        if reference_total <= 0:
            raise ValueError("reference total must be positive")
        return {k: v / reference_total for k, v in self.by_category.items()}

    def core_equivalents(self) -> float:
        """Busy time expressed in whole-core units."""
        return self.total * self.cores
