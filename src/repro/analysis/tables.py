"""Plain-text table rendering for experiment reports."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render an aligned ASCII table (the experiment runners' output)."""
    rendered_rows: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, header has {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
