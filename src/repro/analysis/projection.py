"""Scalability projection (paper Fig 13).

The paper measures throughput and CPU utilization on the 10 Gbps
testbed, derives CPU cost per byte, and extrapolates: with a 40 Gbps
NIC, six NVMe SSDs and a single 6-core Xeon, how many cores does each
design need — and what throughput fits when cores run out?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class ScalabilityProjection:
    """Result of projecting one design to a target line rate."""

    scheme: str
    measured_gbps: float
    measured_core_equivalents: float
    target_gbps: float
    cpu_core_budget: int

    @property
    def cores_per_gbps(self) -> float:
        if self.measured_gbps <= 0:
            raise ValueError("measured throughput must be positive")
        return self.measured_core_equivalents / self.measured_gbps

    @property
    def cores_needed_at_target(self) -> float:
        """Cores to sustain the full target rate (may exceed the budget)."""
        return self.cores_per_gbps * self.target_gbps

    @property
    def achievable_gbps(self) -> float:
        """Throughput once the core budget caps the design."""
        uncapped = self.target_gbps
        by_cpu = self.cpu_core_budget / self.cores_per_gbps
        return min(uncapped, by_cpu)

    def cores_at(self, gbps: float) -> float:
        """Projected core usage at an intermediate throughput."""
        return self.cores_per_gbps * gbps


def project_cores(measurements: Dict[str, tuple[float, float]],
                  target_gbps: float = 40.0,
                  cpu_core_budget: int = 6) -> List[ScalabilityProjection]:
    """Project every scheme; ``measurements`` maps scheme name to
    (measured_gbps, measured_core_equivalents)."""
    return [
        ScalabilityProjection(scheme=name, measured_gbps=gbps,
                              measured_core_equivalents=cores,
                              target_gbps=target_gbps,
                              cpu_core_budget=cpu_core_budget)
        for name, (gbps, cores) in measurements.items()
    ]
