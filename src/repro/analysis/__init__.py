"""Result containers, projections and table rendering for experiments."""

from repro.analysis.breakdown import (CpuBreakdown, LatencyTrace, NULL_TRACE,
                                      NullTrace)
from repro.analysis.tables import format_table
from repro.analysis.projection import ScalabilityProjection, project_cores

__all__ = [
    "CpuBreakdown",
    "LatencyTrace",
    "NULL_TRACE",
    "NullTrace",
    "ScalabilityProjection",
    "format_table",
    "project_cores",
]
