"""SHA-1 (FIPS 180-4), implemented from the specification."""

from __future__ import annotations

import struct

_INIT = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0)


def _left_rotate(value: int, amount: int) -> int:
    value &= 0xFFFFFFFF
    return ((value << amount) | (value >> (32 - amount))) & 0xFFFFFFFF


def _pad(message_len: int) -> bytes:
    padding = b"\x80" + b"\x00" * ((55 - message_len) % 64)
    return padding + struct.pack(">Q", message_len * 8)


def sha1_digest(data: bytes) -> bytes:
    """The 20-byte SHA-1 digest of ``data``."""
    h = list(_INIT)
    message = data + _pad(len(data))
    for block_start in range(0, len(message), 64):
        w = list(struct.unpack(">16I", message[block_start:block_start + 64]))
        for i in range(16, 80):
            w.append(_left_rotate(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1))
        a, b, c, d, e = h
        for i in range(80):
            if i < 20:
                f = (b & c) | (~b & d)
                k = 0x5A827999
            elif i < 40:
                f = b ^ c ^ d
                k = 0x6ED9EBA1
            elif i < 60:
                f = (b & c) | (b & d) | (c & d)
                k = 0x8F1BBCDC
            else:
                f = b ^ c ^ d
                k = 0xCA62C1D6
            temp = (_left_rotate(a, 5) + f + e + k + w[i]) & 0xFFFFFFFF
            e, d, c, b, a = d, c, _left_rotate(b, 30), a, temp
        h = [(x + y) & 0xFFFFFFFF for x, y in zip(h, (a, b, c, d, e))]
    return struct.pack(">5I", *h)


def sha1_hexdigest(data: bytes) -> str:
    """The SHA-1 digest as a lowercase hex string."""
    return sha1_digest(data).hex()
