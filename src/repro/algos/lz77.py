"""An LZ77 sliding-window compressor with a self-describing container.

Stands in for the Xilinx GZIP IP core the paper's NDP table lists
(Table III) — we cannot license that core, and bit-exact DEFLATE is not
needed for any measured behaviour; what the experiments need is a real
compressor with configurable effort whose output round-trips.  The
token stream uses hash-chain matching over a 32 KiB window (the same
window DEFLATE uses).

Container format (little-endian):

* magic ``LZRP`` (4 bytes), original length (8 bytes);
* a sequence of tokens: ``0x00 <len:u16> <literals>`` for literal runs
  and ``0x01 <distance:u16> <length:u16>`` for back-references.
"""

from __future__ import annotations

import struct

from repro.errors import ProtocolError

MAGIC = b"LZRP"
WINDOW = 32 * 1024
MIN_MATCH = 4
MAX_MATCH = 0xFFFF
MAX_LITERAL_RUN = 0xFFFF

_TOKEN_LITERAL = 0x00
_TOKEN_MATCH = 0x01


def _hash3(data: bytes, pos: int) -> int:
    return (data[pos] << 16 | data[pos + 1] << 8 | data[pos + 2]) % 65521


def lz77_compress(data: bytes, max_chain: int = 16) -> bytes:
    """Compress ``data``; ``max_chain`` bounds match-search effort."""
    out = bytearray(MAGIC + struct.pack("<Q", len(data)))
    if not data:
        return bytes(out)
    heads: dict[int, list[int]] = {}
    literals = bytearray()

    def flush_literals() -> None:
        start = 0
        while start < len(literals):
            run = literals[start:start + MAX_LITERAL_RUN]
            out.append(_TOKEN_LITERAL)
            out.extend(struct.pack("<H", len(run)))
            out.extend(run)
            start += len(run)
        literals.clear()

    pos = 0
    n = len(data)
    while pos < n:
        best_len = 0
        best_dist = 0
        if pos + MIN_MATCH <= n:
            key = _hash3(data, pos)
            chain = heads.get(key, [])
            tried = 0
            for candidate in reversed(chain):
                if pos - candidate > WINDOW:
                    break
                if tried >= max_chain:
                    break
                tried += 1
                length = 0
                limit = min(MAX_MATCH, n - pos)
                while (length < limit
                       and data[candidate + length] == data[pos + length]):
                    length += 1
                if length > best_len:
                    best_len = length
                    best_dist = pos - candidate
                    if length >= limit:
                        break
            chain.append(pos)
            heads[key] = chain
        if best_len >= MIN_MATCH:
            flush_literals()
            out.append(_TOKEN_MATCH)
            out += struct.pack("<HH", best_dist, best_len)
            # Index the skipped positions so later matches can find them.
            for skipped in range(pos + 1, min(pos + best_len, n - MIN_MATCH + 1)):
                heads.setdefault(_hash3(data, skipped), []).append(skipped)
            pos += best_len
        else:
            literals.append(data[pos])
            pos += 1
    flush_literals()
    return bytes(out)


def lz77_decompress(blob: bytes) -> bytes:
    """Decompress a container produced by :func:`lz77_compress`."""
    if len(blob) < 12 or blob[:4] != MAGIC:
        raise ProtocolError("not an LZRP container")
    (original_len,) = struct.unpack("<Q", blob[4:12])
    out = bytearray()
    pos = 12
    while pos < len(blob):
        token = blob[pos]
        pos += 1
        if token == _TOKEN_LITERAL:
            if pos + 2 > len(blob):
                raise ProtocolError("truncated literal token")
            (run_len,) = struct.unpack("<H", blob[pos:pos + 2])
            pos += 2
            if pos + run_len > len(blob):
                raise ProtocolError("truncated literal run")
            out += blob[pos:pos + run_len]
            pos += run_len
        elif token == _TOKEN_MATCH:
            if pos + 4 > len(blob):
                raise ProtocolError("truncated match token")
            distance, length = struct.unpack("<HH", blob[pos:pos + 4])
            pos += 4
            if distance == 0 or distance > len(out):
                raise ProtocolError(f"bad match distance {distance}")
            for _ in range(length):
                out.append(out[-distance])
        else:
            raise ProtocolError(f"unknown token {token}")
    if len(out) != original_len:
        raise ProtocolError(
            f"decompressed {len(out)} bytes, container says {original_len}")
    return bytes(out)
