"""MD5 (RFC 1321), implemented from the specification.

Swift uses MD5 ETags for data integrity (paper Table II), and the
SSD→Processing→NIC microbenchmark of Fig. 11b computes an MD5 checksum;
this is the functional core the NDP MD5 unit and the GPU MD5 kernel
share.
"""

from __future__ import annotations

import math
import struct

# Per-round shift amounts.
_SHIFTS = (
    [7, 12, 17, 22] * 4
    + [5, 9, 14, 20] * 4
    + [4, 11, 16, 23] * 4
    + [6, 10, 15, 21] * 4
)

# K[i] = floor(2^32 * |sin(i + 1)|), as the RFC defines them.
_K = [int(abs(math.sin(i + 1)) * 2 ** 32) & 0xFFFFFFFF for i in range(64)]

_INIT = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476)


def _left_rotate(value: int, amount: int) -> int:
    value &= 0xFFFFFFFF
    return ((value << amount) | (value >> (32 - amount))) & 0xFFFFFFFF


def _pad(message_len: int) -> bytes:
    padding = b"\x80" + b"\x00" * ((55 - message_len) % 64)
    return padding + struct.pack("<Q", (message_len * 8) & 0xFFFFFFFFFFFFFFFF)


def md5_digest(data: bytes) -> bytes:
    """The 16-byte MD5 digest of ``data``."""
    a0, b0, c0, d0 = _INIT
    message = data + _pad(len(data))
    for block_start in range(0, len(message), 64):
        block = message[block_start:block_start + 64]
        m = struct.unpack("<16I", block)
        a, b, c, d = a0, b0, c0, d0
        for i in range(64):
            if i < 16:
                f = (b & c) | (~b & d)
                g = i
            elif i < 32:
                f = (d & b) | (~d & c)
                g = (5 * i + 1) % 16
            elif i < 48:
                f = b ^ c ^ d
                g = (3 * i + 5) % 16
            else:
                f = c ^ (b | ~d)
                g = (7 * i) % 16
            f = (f + a + _K[i] + m[g]) & 0xFFFFFFFF
            a, d, c = d, c, b
            b = (b + _left_rotate(f, _SHIFTS[i])) & 0xFFFFFFFF
        a0 = (a0 + a) & 0xFFFFFFFF
        b0 = (b0 + b) & 0xFFFFFFFF
        c0 = (c0 + c) & 0xFFFFFFFF
        d0 = (d0 + d) & 0xFFFFFFFF
    return struct.pack("<4I", a0, b0, c0, d0)


def md5_hexdigest(data: bytes) -> str:
    """The MD5 digest as a lowercase hex string."""
    return md5_digest(data).hex()
