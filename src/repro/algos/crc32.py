"""CRC-32 (IEEE 802.3 / zlib polynomial), table-driven.

HDFS checksums blocks with CRC32 (paper Table II); this is the
functional core of the NDP CRC32 unit and the GPU CRC kernel.
"""

from __future__ import annotations

import struct

_POLY = 0xEDB88320


def _build_table() -> list[int]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ _POLY
            else:
                crc >>= 1
        table.append(crc)
    return table


_TABLE = _build_table()


def crc32(data: bytes, value: int = 0) -> int:
    """CRC-32 of ``data``; ``value`` chains partial results like zlib."""
    crc = (value & 0xFFFFFFFF) ^ 0xFFFFFFFF
    for byte in data:
        crc = (crc >> 8) ^ _TABLE[(crc ^ byte) & 0xFF]
    return crc ^ 0xFFFFFFFF


def crc32_digest(data: bytes) -> bytes:
    """CRC-32 as 4 big-endian bytes (how HDFS stores block checksums)."""
    return struct.pack(">I", crc32(data))
