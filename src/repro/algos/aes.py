"""AES-256 (FIPS 197) with CTR-mode streaming.

Swift/HDFS/S3/Azure all encrypt with AES-256 (paper Table II); the NDP
AES unit streams data through this cipher.  CTR mode is used because it
is length-preserving (ciphertext size == plaintext size), which is what
a transparent storage/network encryption stage needs, and decryption is
the same operation as encryption.
"""

from __future__ import annotations

from repro.errors import ProtocolError

_SBOX = None  # built lazily below


def _build_sbox() -> bytes:
    """Construct the AES S-box from GF(2^8) inverses (no magic tables)."""
    # Multiplicative inverse via exp/log tables over the AES field.
    exp = [0] * 512
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        # multiply x by the generator 0x03
        x ^= (x << 1) ^ (0x1B if x & 0x80 else 0)
        x &= 0xFF
    for i in range(255, 512):
        exp[i] = exp[i - 255]

    def inverse(value: int) -> int:
        if value == 0:
            return 0
        return exp[255 - log[value]]

    sbox = bytearray(256)
    for value in range(256):
        inv = inverse(value)
        result = 0x63
        for bit in range(8):
            result ^= (((inv >> bit) ^ (inv >> ((bit + 4) % 8))
                        ^ (inv >> ((bit + 5) % 8)) ^ (inv >> ((bit + 6) % 8))
                        ^ (inv >> ((bit + 7) % 8))) & 1) << bit
        sbox[value] = result
    return bytes(sbox)


def _sbox() -> bytes:
    global _SBOX
    if _SBOX is None:
        _SBOX = _build_sbox()
    return _SBOX


_RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36, 0x6C)


def expand_key_256(key: bytes) -> list[bytes]:
    """AES-256 key schedule: 15 round keys of 16 bytes each."""
    if len(key) != 32:
        raise ProtocolError(f"AES-256 key must be 32 bytes, got {len(key)}")
    sbox = _sbox()
    words = [key[i:i + 4] for i in range(0, 32, 4)]
    for i in range(8, 60):
        temp = words[i - 1]
        if i % 8 == 0:
            temp = bytes(sbox[b] for b in temp[1:] + temp[:1])
            temp = bytes([temp[0] ^ _RCON[i // 8 - 1]]) + temp[1:]
        elif i % 8 == 4:
            temp = bytes(sbox[b] for b in temp)
        words.append(bytes(a ^ b for a, b in zip(words[i - 8], temp)))
    return [b"".join(words[4 * r:4 * r + 4]) for r in range(15)]


def _xtime(value: int) -> int:
    value <<= 1
    if value & 0x100:
        value ^= 0x11B
    return value & 0xFF


def _mix_single_column(column: bytearray) -> None:
    a = list(column)
    total = a[0] ^ a[1] ^ a[2] ^ a[3]
    first = a[0]
    for i in range(4):
        nxt = a[(i + 1) % 4] if i < 3 else first
        column[i] = a[i] ^ total ^ _xtime(a[i] ^ nxt)


def _encrypt_block(block: bytes, round_keys: list[bytes]) -> bytes:
    """Encrypt one 16-byte block (column-major AES state)."""
    sbox = _sbox()
    state = bytearray(a ^ b for a, b in zip(block, round_keys[0]))
    for round_no in range(1, 15):
        # SubBytes
        for i in range(16):
            state[i] = sbox[state[i]]
        # ShiftRows (state is column-major: byte r + 4c)
        for row in range(1, 4):
            row_bytes = [state[row + 4 * col] for col in range(4)]
            row_bytes = row_bytes[row:] + row_bytes[:row]
            for col in range(4):
                state[row + 4 * col] = row_bytes[col]
        # MixColumns (skipped in the final round)
        if round_no < 14:
            for col in range(4):
                column = state[4 * col:4 * col + 4]
                _mix_single_column(column)
                state[4 * col:4 * col + 4] = column
        # AddRoundKey
        key = round_keys[round_no]
        for i in range(16):
            state[i] ^= key[i]
    return bytes(state)


def aes256_ctr(data: bytes, key: bytes, nonce: bytes) -> bytes:
    """Encrypt/decrypt ``data`` with AES-256 in CTR mode.

    ``nonce`` is 8 bytes; the remaining 8 bytes of each counter block
    are a big-endian block counter.  Applying the function twice with
    the same key/nonce returns the original data.
    """
    if len(nonce) != 8:
        raise ProtocolError(f"CTR nonce must be 8 bytes, got {len(nonce)}")
    round_keys = expand_key_256(key)
    out = bytearray(len(data))
    for block_no in range(0, (len(data) + 15) // 16):
        counter_block = nonce + block_no.to_bytes(8, "big")
        keystream = _encrypt_block(counter_block, round_keys)
        start = block_no * 16
        chunk = data[start:start + 16]
        out[start:start + len(chunk)] = bytes(
            a ^ b for a, b in zip(chunk, keystream))
    return bytes(out)
