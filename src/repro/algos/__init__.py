"""From-scratch data-processing algorithms.

These are the functional cores behind both the GPU's offload kernels
and the HDC Engine's NDP units (paper Table III): data-integrity hashes
(MD5, SHA-1, SHA-256, CRC32), AES-256 encryption, and a GZIP-style
LZ77 compressor.  All are implemented from first principles in this
repository and verified against the Python standard library (hashlib /
zlib / binascii) in the test suite; the LZ77 container is our own
(DESIGN.md §6) and round-trips through :func:`lz77_decompress`.
"""

from repro.algos.md5 import md5_digest, md5_hexdigest
from repro.algos.sha1 import sha1_digest, sha1_hexdigest
from repro.algos.sha256 import sha256_digest, sha256_hexdigest
from repro.algos.crc32 import crc32, crc32_digest
from repro.algos.aes import aes256_ctr, expand_key_256
from repro.algos.lz77 import lz77_compress, lz77_decompress

__all__ = [
    "aes256_ctr",
    "crc32",
    "crc32_digest",
    "expand_key_256",
    "lz77_compress",
    "lz77_decompress",
    "md5_digest",
    "md5_hexdigest",
    "sha1_digest",
    "sha1_hexdigest",
    "sha256_digest",
    "sha256_hexdigest",
]
