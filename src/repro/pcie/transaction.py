"""TLP-level cost constants for the PCIe model.

Rather than simulating every 256-byte TLP as its own event (which would
make million-packet app runs intractable), the link model charges each
DMA the *aggregate* serialization time of its TLPs: payload divided by
effective bandwidth, where effective bandwidth folds in the per-TLP
framing overhead computed here.  Small control transactions (doorbells,
read requests, MSI) are charged fixed latencies measured on real Gen2
switched fabrics.
"""

from __future__ import annotations

from repro.units import nsec

# Max payload size the fabric negotiates (bytes).  256 B is the typical
# value on Gen2 switches.
MAX_PAYLOAD = 256

# Per-TLP overhead: 2 B framing + 6 B DLL (seq + LCRC shares) + 16 B
# 64-bit-address memory-write header = 24 B, rounded up for flow-control
# DLLP traffic.
TLP_OVERHEAD = 26


def tlp_efficiency(max_payload: int = MAX_PAYLOAD,
                   overhead: int = TLP_OVERHEAD) -> float:
    """Fraction of raw link bandwidth available to payload bytes."""
    if max_payload <= 0:
        raise ValueError(f"max payload must be positive: {max_payload}")
    return max_payload / (max_payload + overhead)


# One switch hop: ingress buffering + routing + egress scheduling.
# Measured cut-through latencies on Gen2 switches are 150-200 ns.
HOP_FORWARD_NS = nsec(150)

# A posted 4/8-byte MMIO write (doorbell ring) end to end across the
# switch: serialization is negligible, latency is two hops + wire.
DOORBELL_WRITE_NS = nsec(400)

# A non-posted read request TLP reaching the completer (the data comes
# back at link speed and is charged separately).
READ_REQUEST_NS = nsec(350)

# MSI/MSI-X: a posted write to the root complex plus APIC delivery.
MSI_LATENCY_NS = nsec(500)
