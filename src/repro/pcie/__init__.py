"""PCIe interconnect substrate.

Models the testbed fabric of the paper: a five-slot PCIe Gen2 switch
(Cyclone Microsystems PCIe2-2707-like) connecting the host root complex,
the NVMe SSD, the 10-GbE NIC, the GPU and the HDC Engine.  The fabric
routes by physical address through an :class:`AddressMap` of
:class:`~repro.memory.region.MemoryRegion` windows, so peer-to-peer DMA
(device→device without touching host DRAM) falls out naturally: the
route is decided by who owns the target address.

All transfers are *functional* (real bytes move) and *timed* (links are
FIFO resources; serialization time follows lane count, generation and
TLP efficiency).
"""

from repro.pcie.address import AddressMap
from repro.pcie.link import (LINK_GEN2_X4, LINK_GEN2_X8, LINK_GEN2_X16,
                             LinkConfig, PcieLink)
from repro.pcie.switch import Fabric, PortStats
from repro.pcie.transaction import (DOORBELL_WRITE_NS, HOP_FORWARD_NS,
                                    MSI_LATENCY_NS, READ_REQUEST_NS,
                                    tlp_efficiency)

__all__ = [
    "AddressMap",
    "DOORBELL_WRITE_NS",
    "Fabric",
    "HOP_FORWARD_NS",
    "LINK_GEN2_X4",
    "LINK_GEN2_X8",
    "LINK_GEN2_X16",
    "LinkConfig",
    "MSI_LATENCY_NS",
    "PcieLink",
    "PortStats",
    "READ_REQUEST_NS",
    "tlp_efficiency",
]
