"""The simulated physical address map.

One global map per node.  Regions (BAR windows, DRAM, engine DDR3) are
registered once at machine-build time; lookups are binary searches over
the sorted bases.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import List, Optional

from repro.errors import AddressError
from repro.memory.region import MemoryRegion


class AddressMap:
    """A set of non-overlapping memory regions, addressable by byte."""

    def __init__(self):
        self._regions: List[MemoryRegion] = []
        self._bases: List[int] = []

    def add(self, region: MemoryRegion) -> MemoryRegion:
        """Register ``region``; rejects overlap with any existing region."""
        for existing in self._regions:
            if region.base < existing.end and existing.base < region.end:
                raise AddressError(
                    f"region {region.name} [{hex(region.base)}, "
                    f"{hex(region.end)}) overlaps {existing.name} "
                    f"[{hex(existing.base)}, {hex(existing.end)})")
        index = bisect_right(self._bases, region.base)
        self._regions.insert(index, region)
        self._bases.insert(index, region.base)
        return region

    def resolve(self, addr: int, length: int = 1) -> MemoryRegion:
        """The region containing [addr, addr+length), or raise.

        Accesses may not straddle region boundaries — real DMA engines
        split at window edges and so do our models, which size their
        transfers within one target region.
        """
        index = bisect_right(self._bases, addr) - 1
        if index >= 0:
            region = self._regions[index]
            if region.contains(addr, length):
                return region
            if region.contains(addr):
                raise AddressError(
                    f"access [{hex(addr)}, {hex(addr + length)}) straddles the "
                    f"end of region {region.name}")
        raise AddressError(f"unmapped address {hex(addr)}")

    def find(self, name: str) -> Optional[MemoryRegion]:
        """Look a region up by name (None if absent)."""
        for region in self._regions:
            if region.name == name:
                return region
        return None

    def read(self, addr: int, length: int) -> bytes:
        """Functional read (no timing) — used by models and tests."""
        return self.resolve(addr, length).read(addr, length)

    def write(self, addr: int, data: bytes) -> None:
        """Functional write (no timing) — used by models and tests."""
        self.resolve(addr, len(data)).write(addr, data)

    def regions(self) -> List[MemoryRegion]:
        """All regions, sorted by base (a copy)."""
        return list(self._regions)
