"""Point-to-point PCIe link model.

A link connects one port (device or root complex) to the switch.  Each
direction is a FIFO :class:`~repro.sim.resources.Resource`: a transfer
holds the direction for its serialization time, so concurrent transfers
on the same link share bandwidth by queueing — the same first-order
behaviour as credit-based flow control at full load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import DeviceTimeout
from repro.sim.kernel import Simulator
from repro.sim.resources import Resource
from repro.units import Rate, usec
from repro.pcie.transaction import tlp_efficiency

# Time a requester burns before declaring an injected completion
# timeout (the spec allows 50 µs - 50 ms; we model the floor).
COMPLETION_TIMEOUT_NS = usec(50)


@dataclass(frozen=True)
class LinkConfig:
    """Static link parameters.

    ``raw_per_lane`` is the post-line-coding data rate per lane per
    direction (Gen2 = 5 GT/s with 8b/10b → 500 MB/s/lane).
    """

    name: str
    lanes: int
    raw_per_lane_mbytes: float

    def effective_rate(self) -> Rate:
        """Payload bandwidth per direction after TLP overhead."""
        raw = self.lanes * self.raw_per_lane_mbytes * 1e6
        return Rate(raw * tlp_efficiency())


LINK_GEN2_X4 = LinkConfig("gen2-x4", lanes=4, raw_per_lane_mbytes=500.0)
LINK_GEN2_X8 = LinkConfig("gen2-x8", lanes=8, raw_per_lane_mbytes=500.0)
LINK_GEN2_X16 = LinkConfig("gen2-x16", lanes=16, raw_per_lane_mbytes=500.0)


class PcieLink:
    """A full-duplex link with FIFO per-direction occupancy."""

    def __init__(self, sim: Simulator, config: LinkConfig,
                 name: Optional[str] = None, node: str = ""):
        self.sim = sim
        self.config = config
        self.name = name if name is not None else config.name
        self.node = node
        self.rate = config.effective_rate()
        # Direction names follow the device's point of view.
        self.tx = Resource(sim, capacity=1)  # device -> switch
        self.rx = Resource(sim, capacity=1)  # switch -> device
        metrics = sim.metrics
        if metrics is None:
            self._m_tx = self._m_rx = None
        else:
            self._m_tx = metrics.timegauge(
                "pcie.link.inflight_bytes", node=node, link=self.name,
                dir="tx")
            self._m_rx = metrics.timegauge(
                "pcie.link.inflight_bytes", node=node, link=self.name,
                dir="rx")

    def serialization(self, size: int) -> int:
        """Time (ns) to clock ``size`` payload bytes through one direction."""
        return self.rate.duration(size)

    def occupy_tx(self, size: int):
        """Process: hold the TX direction for ``size`` bytes' worth of time."""
        return self._occupy(self.tx, size, "tx")

    def occupy_rx(self, size: int):
        """Process: hold the RX direction for ``size`` bytes' worth of time."""
        return self._occupy(self.rx, size, "rx")

    def _occupy(self, direction: Resource, size: int, label: str):
        tracer = self.sim.tracer
        span = None if tracer is None else tracer.begin(
            "tlp.send", track=f"link:{self.name}", name=f"{label} {size}B",
            link=self.name, direction=label, size=size)
        meter = self._m_tx if direction is self.tx else self._m_rx
        if meter is not None:
            meter.inc(size)
        try:
            faults = self.sim.faults
            if faults is not None and faults.fires(
                    "pcie.timeout", link=self.name, direction=label,
                    size=size):
                # The TLP never completes: the requester waits out its
                # completion timer and reports an error.
                yield self.sim.timeout(COMPLETION_TIMEOUT_NS)
                if span is not None:
                    span.end(failed=True)
                raise DeviceTimeout(
                    f"link {self.name} {label}: TLP completion timeout "
                    f"({size} B)")
            with direction.request() as req:
                yield req
                yield self.sim.timeout(self.serialization(size))
            if span is not None:
                span.end()
        finally:
            if meter is not None:
                meter.dec(size)
