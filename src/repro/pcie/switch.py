"""The switched PCIe fabric: ports, routing, timed+functional DMA.

:class:`Fabric` is the one object every device model talks to.  It owns
the :class:`~repro.pcie.address.AddressMap` and one
:class:`~repro.pcie.link.PcieLink` per port, and exposes generator
methods (to be driven with ``yield from`` inside simulation processes):

* :meth:`dma_write` / :meth:`dma_read` — bulk data, routed by target
  address.  Peer-to-peer transfers (initiator and owner both devices)
  never touch the host port — this is the data-path property the whole
  paper builds on.
* :meth:`mmio_write` / :meth:`mmio_read` — small register transactions
  (doorbells); writes trigger a region's MMIO hook.
* :meth:`msi` — message-signalled interrupt delivery to a registered
  handler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.errors import SimulationError
from repro.memory.region import MemoryRegion
from repro.pcie.address import AddressMap
from repro.pcie.link import LinkConfig, PcieLink
from repro.pcie.transaction import (DOORBELL_WRITE_NS, HOP_FORWARD_NS,
                                    MSI_LATENCY_NS, READ_REQUEST_NS)
from repro.sim.kernel import Simulator


@dataclass
class PortStats:
    """Byte counters per port (for utilization reports)."""

    tx_bytes: int = 0
    rx_bytes: int = 0
    doorbells: int = 0
    interrupts: int = 0


@dataclass
class _Port:
    name: str
    link: PcieLink
    stats: PortStats = field(default_factory=PortStats)
    # Metric instruments; None unless a MetricsSession is installed.
    m_tx: Optional[object] = None
    m_rx: Optional[object] = None
    m_db: Optional[object] = None


class Fabric:
    """A single-switch PCIe fabric with address-routed DMA."""

    def __init__(self, sim: Simulator, name: str = "fabric"):
        self.sim = sim
        self.name = name
        self.address_map = AddressMap()
        self._ports: Dict[str, _Port] = {}
        self._msi_handlers: Dict[str, Callable[[str, int], None]] = {}
        self.p2p_bytes = 0       # device<->device traffic (never sees host)
        self.host_bytes = 0      # traffic with the host port on one end

    # -- topology construction -------------------------------------------

    def add_port(self, name: str, link_config: LinkConfig) -> None:
        """Attach a device (or the root complex) to the switch."""
        if name in self._ports:
            raise SimulationError(f"duplicate port {name!r}")
        port = _Port(name, PcieLink(self.sim, link_config, name=name,
                                    node=self.name))
        metrics = self.sim.metrics
        if metrics is not None:
            port.m_tx = metrics.counter("pcie.port.tx_bytes",
                                        node=self.name, port=name)
            port.m_rx = metrics.counter("pcie.port.rx_bytes",
                                        node=self.name, port=name)
            port.m_db = metrics.counter("pcie.port.doorbells",
                                        node=self.name, port=name)
        self._ports[name] = port

    def add_region(self, region: MemoryRegion) -> MemoryRegion:
        """Register an addressable window owned by one of the ports."""
        if region.port not in self._ports:
            raise SimulationError(
                f"region {region.name} owned by unknown port {region.port!r}")
        return self.address_map.add(region)

    def port_names(self) -> list[str]:
        """All attached port names."""
        return list(self._ports)

    def stats(self, port: str) -> PortStats:
        """Byte/doorbell counters for one port."""
        return self._port(port).stats

    def _port(self, name: str) -> _Port:
        try:
            return self._ports[name]
        except KeyError:
            raise SimulationError(f"unknown port {name!r}") from None

    # -- interrupts --------------------------------------------------------

    def register_msi_handler(self, port: str,
                             handler: Callable[[str, int], None]) -> None:
        """Install the interrupt sink for ``port`` (normally ``host``)."""
        self._port(port)  # validate
        self._msi_handlers[port] = handler

    # -- transactions ------------------------------------------------------

    def dma_write(self, initiator: str, addr: int, data: bytes):
        """Process: move ``data`` from ``initiator`` into the region at ``addr``.

        Timing: the initiator's TX and the owner's RX are held for the
        serialization time (bottleneck link dominates via sequential
        holds), plus two switch hops.  Functional: the bytes land in the
        target region (or fire its MMIO hook).
        """
        region = self.address_map.resolve(addr, len(data))
        src = self._port(initiator)
        if region.port == initiator:
            # Device-local access never crosses the fabric.
            region.write(addr, data)
            return len(data)
        dst = self._port(region.port)
        tracer = self.sim.tracer
        span = None if tracer is None else tracer.begin(
            "dma.write", track=f"pcie:{initiator}",
            name=f"dma.write -> {region.port}", initiator=initiator,
            target=region.port, addr=addr, size=len(data))
        yield self.sim.timeout(2 * HOP_FORWARD_NS + region.access_latency)
        yield from self._occupy_path(src.link, dst.link, len(data))
        region.write(addr, data)
        self._account(src, dst, len(data))
        if span is not None:
            span.end()
        return len(data)

    def dma_read(self, initiator: str, addr: int, length: int):
        """Process: fetch ``length`` bytes at ``addr`` into ``initiator``.

        Returns the bytes read.  Timing: non-posted read request to the
        owner, then completion data clocked owner→switch→initiator.
        """
        region = self.address_map.resolve(addr, length)
        dst = self._port(initiator)
        if region.port == initiator:
            return region.read(addr, length)
        src = self._port(region.port)
        tracer = self.sim.tracer
        span = None if tracer is None else tracer.begin(
            "dma.read", track=f"pcie:{initiator}",
            name=f"dma.read <- {region.port}", initiator=initiator,
            target=region.port, addr=addr, size=length)
        yield self.sim.timeout(READ_REQUEST_NS + 2 * HOP_FORWARD_NS
                               + region.access_latency)
        yield from self._occupy_path(src.link, dst.link, length)
        data = region.read(addr, length)
        self._account(src, dst, length)
        if span is not None:
            span.end()
        return data

    def _occupy_path(self, src_link, dst_link, size: int):
        """Hold src TX and dst RX concurrently; the transfer lasts the
        bottleneck link's serialization time, but each direction is
        *held* only for its own time — a fast port trickle-receiving
        from a slow sender still has capacity for other peers, which is
        how switched PCIe behaves (TLPs from different sources
        interleave).

        The two directions are acquired in a single global order (link
        name + direction, a stable total order over the per-direction
        resources), so transfers contending for overlapping link pairs
        can never hold-and-wait in a cycle (no deadlock).  The order
        must not depend on object identity: ``id()`` varies between
        runs in one process and would break trace determinism.
        """
        tracer = self.sim.tracer
        span = None if tracer is None else tracer.begin(
            "tlp.send", track=f"link:{src_link.name}",
            name=f"{src_link.name}->{dst_link.name} {size}B",
            src=src_link.name, dst=dst_link.name, size=size)
        m_src, m_dst = src_link._m_tx, dst_link._m_rx
        if m_src is not None:
            m_src.inc(size)
            m_dst.inc(size)
        src_dur = src_link.serialization(size)
        dst_dur = dst_link.serialization(size)
        first, second = (src_link.tx, src_dur), (dst_link.rx, dst_dur)
        if (dst_link.name or "", "rx") < (src_link.name or "", "tx"):
            first, second = second, first
        req_a = first[0].request()
        yield req_a
        req_b = second[0].request()
        yield req_b
        # Release each direction after its own serialization time; the
        # transfer as a whole completes with the slower one.
        short, long = sorted((first, second), key=lambda pair: pair[1])
        held = {first[0]: req_a, second[0]: req_b}
        yield self.sim.timeout(short[1])
        short[0].release(held[short[0]])
        if m_src is not None:
            (m_src if short[0] is src_link.tx else m_dst).dec(size)
        yield self.sim.timeout(long[1] - short[1])
        long[0].release(held[long[0]])
        if m_src is not None:
            (m_src if long[0] is src_link.tx else m_dst).dec(size)
        if span is not None:
            span.end()

    def mmio_write(self, initiator: str, addr: int, data: bytes):
        """Process: a small posted register write (doorbell-class).

        Fires the target region's MMIO hook after the posted-write
        latency.  Does not contend the bulk links (negligible payload).
        """
        region = self.address_map.resolve(addr, len(data))
        port = self._port(initiator)
        port.stats.doorbells += 1
        if port.m_db is not None:
            port.m_db.inc()
        tracer = self.sim.tracer
        span = None if tracer is None else tracer.begin(
            "doorbell.ring", track=f"pcie:{initiator}",
            name=f"doorbell -> {region.port}", initiator=initiator,
            target=region.port, addr=addr, size=len(data))
        if region.port != initiator:
            yield self.sim.timeout(DOORBELL_WRITE_NS)
        region.write(addr, data)
        if span is not None:
            span.end()

    def mmio_read(self, initiator: str, addr: int, length: int):
        """Process: a small non-posted register read; returns the bytes."""
        region = self.address_map.resolve(addr, length)
        tracer = self.sim.tracer
        span = None if tracer is None else tracer.begin(
            "mmio.read", track=f"pcie:{initiator}",
            name=f"mmio.read <- {region.port}", initiator=initiator,
            target=region.port, addr=addr, size=length)
        if region.port != initiator:
            # Round trip: request out, completion back.
            yield self.sim.timeout(READ_REQUEST_NS + DOORBELL_WRITE_NS)
        if span is not None:
            span.end()
        return region.read(addr, length)

    def msi(self, initiator: str, target_port: str = "host", vector: int = 0):
        """Process: deliver a message-signalled interrupt."""
        handler = self._msi_handlers.get(target_port)
        if handler is None:
            raise SimulationError(
                f"no MSI handler registered on port {target_port!r}")
        self._port(initiator).stats.interrupts += 1
        tracer = self.sim.tracer
        span = None if tracer is None else tracer.begin(
            "irq.deliver", track=f"pcie:{initiator}",
            name=f"irq {initiator}#{vector}", initiator=initiator,
            target=target_port, vector=vector)
        yield self.sim.timeout(MSI_LATENCY_NS)
        if span is not None:
            span.end()
        handler(initiator, vector)

    # -- accounting --------------------------------------------------------

    def _account(self, src: _Port, dst: _Port, size: int) -> None:
        src.stats.tx_bytes += size
        dst.stats.rx_bytes += size
        if src.m_tx is not None:
            src.m_tx.inc(size)
            dst.m_rx.inc(size)
        if "host" in (src.name, dst.name):
            self.host_bytes += size
        else:
            self.p2p_bytes += size

    # -- functional back door (no timing; for setup and assertions) -------

    def poke(self, addr: int, data: bytes) -> None:
        """Write bytes with no timing — test/setup helper."""
        self.address_map.write(addr, data)

    def peek(self, addr: int, length: int) -> bytes:
        """Read bytes with no timing — test/setup helper."""
        return self.address_map.read(addr, length)
