"""Bench: transfer-size sweep (extension beyond the paper's figures)."""

from repro.experiments.sweep import run_sweep


def test_size_sweep(once):
    result = once(run_sweep)
    print("\n" + result.render())
    # DCS-ctrl wins end-to-end latency decisively at the paper's
    # per-command sizes...
    assert result.metrics["total_gain_4k"] > 0.2
    # ...but its per-command store-and-forward pipeline gives the raw
    # latency advantage back on large single transfers (the engine
    # stages read -> NDP -> send), even though the *software* latency
    # and CPU savings persist.  This crossover is why the paper
    # evaluates large-transfer workloads by CPU utilization and
    # throughput (Figs 12/13), not single-request latency.
    assert result.metrics["total_gain_256k"] < result.metrics[
        "total_gain_4k"]
    assert result.metrics["software_gain_4k"] > 0.5
    assert result.metrics["software_gain_256k"] > 0.4
