"""Bench: regenerate Fig 11 (latency breakdown of D2D communication)."""

from repro.experiments import run_fig11


def test_fig11(once):
    result = once(run_fig11)
    print("\n" + result.render())
    # Paper headlines: 42 % software-latency reduction without NDP and
    # 72 % with NDP, vs software-controlled P2P.
    assert 0.35 < result.metrics["fig11a_software_reduction"] < 0.70
    assert 0.55 < result.metrics["fig11b_software_reduction"] < 0.85
    # Total latency must also drop, decisively so with NDP.
    assert result.metrics["fig11a_total_reduction"] > 0.10
    assert result.metrics["fig11b_total_reduction"] > 0.30
