"""Bench: regenerate Fig 8 (kernel-side CPU, Linux vs DCS-ctrl)."""

from repro.experiments import run_fig8


def test_fig8(once):
    result = once(run_fig8)
    print("\n" + result.render())
    # Shape: DCS-ctrl cuts kernel CPU at least as much as software
    # optimization does.
    assert result.metrics["swopt_vs_linux"] < 0.85
    assert result.metrics["dcs_vs_linux"] < result.metrics["swopt_vs_linux"]
    assert result.metrics["dcs_vs_linux"] < 0.35
