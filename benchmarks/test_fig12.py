"""Bench: regenerate Fig 12 (Swift and HDFS CPU-utilization breakdowns)."""

from repro.experiments import run_fig12_hdfs, run_fig12_swift


def test_fig12a_swift(once):
    result = once(run_fig12_swift)
    print("\n" + result.render())
    # Paper: ~52 % CPU reduction; shape bound: DCS uses well under
    # 60 % of the software baseline's CPU at matched load.
    assert result.metrics["swift_dcs_vs_swopt_cpu"] < 0.60
    assert result.metrics["swift_dcs_vs_p2p_cpu"] < 0.60


def test_fig12b_hdfs(once):
    result = once(run_fig12_hdfs)
    print("\n" + result.render())
    assert result.metrics["hdfs_dcs_vs_swopt_cpu"] < 0.60
    # "software-controlled P2P cannot improve the performance of HDFS"
    assert 0.9 < result.metrics["hdfs_p2p_vs_swopt_cpu"] < 1.15
    # Matched bandwidth between the compared designs.
    assert (abs(result.metrics["hdfs_dcs_gbps"]
                - result.metrics["hdfs_swopt_gbps"])
            < 0.25 * result.metrics["hdfs_swopt_gbps"])
