"""Bench: regenerate Table III (NDP unit resources and throughput)."""

from repro.experiments import run_table3


def test_table3(once):
    result = once(run_table3)
    print("\n" + result.render())
    # Paper: "on average, only 3.28% slice LUT and 1.02% slice register
    # of a Virtex 7 FPGA are required".
    assert abs(result.metrics["avg_lut_pct"] - 3.28) < 0.15
    assert abs(result.metrics["avg_reg_pct"] - 1.02) < 0.10
