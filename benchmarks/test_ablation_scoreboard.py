"""Ablation: in-order vs dependency-order completion delivery.

The prototype "issues D2D commands in a requested order and notifies
HDC Driver of their completions in the same order" — a simplification
the scoreboard does not need.  A small fast command queued behind a
large one shows what in-order delivery costs.
"""

from repro.schemes import DcsCtrlScheme, Testbed
from repro.units import KIB, to_usec

BIG = 256 * KIB
SMALL = 4 * KIB


def _small_behind_big(in_order: bool) -> float:
    """Latency of a small send submitted right after a big one."""
    tb = Testbed(seed=44, in_order_completion=in_order)
    scheme = DcsCtrlScheme(tb)
    tb.node0.host.install_file("big.dat", bytes(BIG))
    tb.node0.host.install_file("small.dat", bytes(SMALL))
    conn_big = scheme.connect()
    conn_small = scheme.connect()

    def big(sim):
        yield from scheme.send_file(tb.node0, conn_big, "big.dat", 0, BIG)

    def small(sim):
        start = sim.now
        yield from scheme.send_file(tb.node0, conn_small, "small.dat", 0,
                                    SMALL)
        return sim.now - start

    big_proc = tb.sim.process(big(tb.sim))
    small_proc = tb.sim.process(small(tb.sim))
    small_latency = tb.sim.run(until=small_proc)
    tb.sim.run(until=big_proc)
    return to_usec(small_latency)


def test_ablation_completion_order(once):
    def run():
        return _small_behind_big(True), _small_behind_big(False)

    in_order_us, out_of_order_us = once(run)
    print(f"\nsmall-behind-big, in-order completion:  {in_order_us:.2f} us")
    print(f"small-behind-big, dependency order:      {out_of_order_us:.2f} us")
    # Head-of-line blocking: the prototype's in-order delivery makes the
    # small command wait for the big one.
    assert out_of_order_us < in_order_us
    assert in_order_us / out_of_order_us > 1.5
