"""Bench: regenerate Fig 13 (scalability projection to 40 Gbps)."""

from repro.experiments import run_fig13


def test_fig13(once):
    result = once(run_fig13)
    print("\n" + result.render())
    # Paper: DCS-ctrl needs "three or fewer" cores to drive 40 Gbps
    # (Swift) and stays within the 6-core budget for HDFS, while the
    # software designs blow past the budget for HDFS.
    assert result.metrics["swift_dcs_cores_at_40g"] < 3.5
    assert result.metrics["hdfs_dcs_cores_at_40g"] < 6.0
    # Paper: ~2x throughput for HDFS under the core budget.
    assert result.metrics["hdfs_throughput_ratio_dcs_vs_p2p"] > 1.5
    assert result.metrics["swift_throughput_ratio_dcs_vs_p2p"] > 1.0
