"""Bench: the abstract's headline numbers, paper vs measured."""

from repro.experiments import run_headline


def test_headline(once):
    result = once(run_headline)
    print("\n" + result.render())
    # "reduces the latency of software-based direct D2D communications
    # by 42 % (without NDP) and by 72 % (with NDP)"
    assert 0.35 < result.metrics["latency_reduction_no_ndp"] < 0.70
    assert 0.55 < result.metrics["latency_reduction_ndp"] < 0.85
    # "reduces the utilization of host-side CPUs by 52 %"
    assert result.metrics["cpu_reduction_swift"] > 0.40
    assert result.metrics["cpu_reduction_hdfs"] > 0.40
    # "or improves the throughput by roughly 2x"
    assert result.metrics["throughput_ratio_hdfs"] > 1.5
