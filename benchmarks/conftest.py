"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's tables or figures and
prints the reproduced rows (run with ``-s`` to see them inline; they
are also validated by assertions).  The simulations are deterministic,
so one round per benchmark is meaningful — pytest-benchmark's role here
is to time the reproduction itself and keep a uniform harness.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run an experiment exactly once under the benchmark clock."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return _run
