"""Bench: regenerate Table IV (HDC Engine resource utilization)."""

from repro.experiments import run_table4


def test_table4(once):
    result = once(run_table4)
    print("\n" + result.render())
    assert abs(result.metrics["lut_pct"] - 38) < 1.0
    assert abs(result.metrics["reg_pct"] - 15) < 1.0
    assert abs(result.metrics["bram_pct"] - 43) < 1.0
    assert result.metrics["fits_all_ndp"] == 1.0
