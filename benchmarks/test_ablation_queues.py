"""Ablation: engine queue pairs in BRAM vs host DRAM.

The paper allocates NVMe queue pairs in engine BRAM "to enable fast
access of the peripheral devices" (§IV-C) and minimizes host-side
memory accesses from devices (§IV-B).  Moving them to host DRAM makes
every SQE fetch and CQE write cross the switch to the host — this
bench quantifies the latency and host-traffic cost of that choice.
"""

from repro.analysis import LatencyTrace
from repro.schemes import DcsCtrlScheme, Testbed
from repro.units import KIB


def _dcs_latency_and_host_bytes(nvme_rings_in_host: bool):
    tb = Testbed(seed=41, nvme_rings_in_host=nvme_rings_in_host)
    scheme = DcsCtrlScheme(tb)
    data = bytes(4 * KIB)
    tb.node0.host.install_file("warm.dat", data)
    tb.node0.host.install_file("meas.dat", data)
    conn = scheme.connect()

    def one(name, trace=None):
        def body(sim):
            yield from scheme.send_file(tb.node0, conn, name, 0, len(data),
                                        trace=trace)
        tb.sim.run(until=tb.sim.process(body(tb.sim)))

    one("warm.dat")
    before = tb.node0.host.fabric.host_bytes
    trace = LatencyTrace(tb.sim)
    one("meas.dat", trace)
    trace.finish()
    return trace.total_us, tb.node0.host.fabric.host_bytes - before


def test_ablation_queue_placement(once):
    def run():
        bram = _dcs_latency_and_host_bytes(nvme_rings_in_host=False)
        host = _dcs_latency_and_host_bytes(nvme_rings_in_host=True)
        return bram, host

    (bram_us, bram_host_bytes), (host_us, host_host_bytes) = once(run)
    print(f"\nqueue pairs in BRAM:     {bram_us:.2f} us/request, "
          f"{bram_host_bytes} host-path bytes")
    print(f"queue pairs in host DRAM: {host_us:.2f} us/request, "
          f"{host_host_bytes} host-path bytes")
    # BRAM queues are faster and keep device traffic off the host path.
    assert bram_us < host_us
    assert bram_host_bytes < host_host_bytes
