"""Ablation: bulk transfers (PRP lists + LSO) on vs off.

Paper §IV-C: "we exploit bulk-transfer mechanisms of the existing
devices to further improve the throughput of direct D2D communications"
(PRP lists for multi-block NVMe commands, large send offload on the
NIC).  This bench disables both and measures a 64 KiB DCS-ctrl send.
"""

from repro.analysis import LatencyTrace
from repro.schemes import DcsCtrlScheme, Testbed
from repro.units import KIB

SIZE = 64 * KIB


def _dcs_latency(bulk_transfer: bool) -> float:
    tb = Testbed(seed=42, bulk_transfer=bulk_transfer)
    scheme = DcsCtrlScheme(tb)
    data = bytes(SIZE)
    tb.node0.host.install_file("warm.dat", data)
    tb.node0.host.install_file("meas.dat", data)
    conn = scheme.connect()

    def one(name, trace=None):
        def body(sim):
            yield from scheme.send_file(tb.node0, conn, name, 0, SIZE,
                                        trace=trace)
        tb.sim.run(until=tb.sim.process(body(tb.sim)))

    one("warm.dat")
    trace = LatencyTrace(tb.sim)
    one("meas.dat", trace)
    trace.finish()
    return trace.total_us


def test_ablation_bulk_transfer(once):
    def run():
        return _dcs_latency(True), _dcs_latency(False)

    bulk_us, single_us = once(run)
    print(f"\nbulk transfers (PRP+LSO): {bulk_us:.2f} us per 64 KiB")
    print(f"single-block/packet:      {single_us:.2f} us per 64 KiB")
    assert bulk_us < single_us
    # One command per 4 KiB block and one descriptor per packet cost
    # real time: expect a clearly visible gap.
    assert single_us / bulk_us > 1.15
