"""Bench: validate Fig 13 by *simulating* the projected 40 Gbps node.

The paper could only extrapolate its 40 Gbps / six-SSD configuration
from 10 Gbps measurements; the simulator builds that machine directly
(extension beyond the paper).
"""

from repro.experiments.fig13_validate import run_fig13_validate


def test_fig13_validated_by_simulation(once):
    result = once(run_fig13_validate)
    print("\n" + result.render())
    # The projection's shape holds when simulated directly: DCS-ctrl
    # delivers roughly the paper's ~2x over the software design at the
    # upgraded line rate, with a fraction of the CPU.
    assert result.metrics["throughput_ratio"] > 1.5
    assert result.metrics["dcs_cores"] < 3.0
    assert result.metrics["dcs_cores"] < result.metrics["sw_cores"]
