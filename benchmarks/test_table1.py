"""Bench: regenerate Table I (scheme comparison matrix)."""

from repro.experiments import run_table1


def test_table1(once):
    result = once(run_table1)
    print("\n" + result.render())
    assert result.metrics["dcs_functions"] > result.metrics[
        "integrated_functions"]
    assert len(result.rows) == 4
