"""Ablation: checksum placement — NDP unit vs GPU vs host CPU.

The paper argues NDP both shortens latency (no GPU control, no copies)
and frees the CPU (vs hashing on a core, which "decreases the server
throughput due to the increased CPU utilization", §V-B).
"""

from repro.experiments.common import measure_send
from repro.host.costs import CAT
from repro.schemes import DcsCtrlScheme, SwOptScheme, Testbed
from repro.units import KIB

SIZE = 4 * KIB


def _cpu_hash_latency_and_cpu():
    """The CPU-checksum variant: SW-opt path with MD5 on a core."""
    tb = Testbed(seed=43)
    host = tb.node0.host
    data = bytes(SIZE)
    host.install_file("cpu.dat", data)
    conn = tb.connect_kernel()
    buf = host.alloc_buffer(SIZE)

    def body(sim):
        kernel = host.kernel
        yield from kernel.syscall_enter()
        yield from kernel.file_read_direct("cpu.dat", 0, SIZE, buf)
        yield from kernel.cpu_checksum("md5", buf, SIZE)
        yield from kernel.socket_send(conn.flow0, buf, SIZE)
        yield from kernel.syscall_exit()

    def drain(sim):
        dst = tb.node1.host.alloc_buffer(SIZE)
        yield from tb.node1.host.kernel.socket_recv(conn.flow1, SIZE, dst)

    host.cpu.tracker.reset_window()
    start = tb.sim.now
    send = tb.sim.process(body(tb.sim))
    recv = tb.sim.process(drain(tb.sim))
    tb.sim.run(until=send)
    elapsed_us = (tb.sim.now - start) / 1000
    tb.sim.run(until=recv)
    return elapsed_us, host.cpu.tracker.total()


def test_ablation_checksum_placement(once):
    def run():
        ndp = measure_send(DcsCtrlScheme, "md5", size=SIZE)
        gpu = measure_send(SwOptScheme, "md5", size=SIZE)
        cpu_us, cpu_busy = _cpu_hash_latency_and_cpu()
        return ndp, gpu, cpu_us, cpu_busy

    ndp, gpu, cpu_us, cpu_busy = once(run)
    ndp_hash = ndp.trace.breakdown_us().get(CAT.NDP, 0.0)
    gpu_hash = gpu.trace.breakdown_us().get(CAT.HASH, 0.0)
    print(f"\nNDP checksum:  {ndp.latency_us:.2f} us total "
          f"({ndp_hash:.2f} us hashing)")
    print(f"GPU checksum:  {gpu.latency_us:.2f} us total "
          f"({gpu_hash:.2f} us hashing)")
    print(f"CPU checksum:  {cpu_us:.2f} us total "
          f"({cpu_busy / 1000:.2f} us of CPU busy)")
    # NDP wins on latency; the CPU variant burns far more host cycles.
    assert ndp.latency_us < gpu.latency_us
    assert cpu_busy > 3 * SIZE  # >3 ns per byte of host CPU for MD5
