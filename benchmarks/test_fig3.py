"""Bench: regenerate Fig 3 (software overheads of multi-device tasks)."""

from repro.experiments import run_fig3


def test_fig3(once):
    result = once(run_fig3)
    print("\n" + result.render())
    # Shape: P2P <= SW-opt in both latency and CPU; the integrated
    # device removes most of the software overhead.
    assert result.metrics["p2p_total_us"] <= result.metrics["sw_opt_total_us"]
    assert result.metrics["integrated_vs_swopt_latency"] < 0.7
    assert result.metrics["integrated_vs_swopt_cpu"] < 0.4
