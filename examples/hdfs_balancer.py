#!/usr/bin/env python3
"""HDFS-balancer block movement: sender/receiver CPU per design.

Moves a batch of blocks node0 → node1 with CRC32 integrity checking on
the receiver (the paper's §V-C2 workload) under all three designs, and
prints throughput plus both sides' CPU — showing the paper's two
observations: software-controlled P2P cannot help HDFS, and DCS-ctrl
slashes the CPU on both ends.

Run:  python examples/hdfs_balancer.py
"""

from repro.apps import HdfsConfig, run_hdfs_balancer
from repro.schemes import (DcsCtrlScheme, SwOptScheme, SwP2pScheme, Testbed)
from repro.units import MIB

CONFIG = HdfsConfig(blocks=16, block_size=1 * MIB, streams=4)


def main():
    results = {}
    for scheme_cls in (SwOptScheme, SwP2pScheme, DcsCtrlScheme):
        testbed = Testbed(seed=13)
        scheme = scheme_cls(testbed)
        run = run_hdfs_balancer(scheme, CONFIG)
        results[scheme.name] = run
        print(f"\n=== {scheme.name}")
        print(f"  moved {run.bytes_moved >> 20} MiB at "
              f"{run.throughput_gbps:.2f} Gbps")
        print(f"  sender CPU:   {run.sender_cpu_total * 100:6.2f} % "
              f"of 6 cores")
        print(f"  receiver CPU: {run.receiver_cpu_total * 100:6.2f} % "
              f"of 6 cores")
    sw = results["sw-opt"]
    dcs = results["dcs-ctrl"]
    reduction = 1 - ((dcs.sender_cpu_total + dcs.receiver_cpu_total)
                     / (sw.sender_cpu_total + sw.receiver_cpu_total))
    print(f"\nDCS-ctrl reduced balancer CPU by {reduction * 100:.0f} % at "
          "comparable bandwidth")
    print("(the paper reports a ~52 % reduction; P2P shows no gain on "
          "HDFS, as in Fig 12b)")


if __name__ == "__main__":
    main()
