#!/usr/bin/env python3
"""Near-device processing showcase: every NDP function in flight.

Streams one file through the HDC Engine with each configured NDP unit —
the integrity hashes (MD5/SHA-1/SHA-256/CRC32), AES-256 encryption and
GZIP compression — without the data ever touching host memory, then
verifies every result against an independent host-side computation.

This is the paper's applicability argument made concrete: the same
engine, the same off-the-shelf devices, six different intermediate
processing functions selected per command (Table III).

Run:  python examples/ndp_pipeline.py
"""

import hashlib
import zlib

from repro.algos import aes256_ctr, lz77_decompress
from repro.core.ndp.unit import _AES_KEY, _AES_NONCE
from repro.schemes import Testbed
from repro.units import KIB

SIZE = 32 * KIB


def main():
    testbed = Testbed(seed=17)
    node = testbed.node0
    payload = (b"The quick brown fox jumps over the lazy dog. " * 800)[:SIZE]
    node.host.install_file("pipeline.dat", payload)
    fd = node.library.open_file("pipeline.dat")

    checks = {
        "md5": lambda d, _: d == hashlib.md5(payload).digest(),
        "sha1": lambda d, _: d == hashlib.sha1(payload).digest(),
        "sha256": lambda d, _: d == hashlib.sha256(payload).digest(),
        "crc32": lambda d, _: int.from_bytes(d, "big") == zlib.crc32(payload),
        "aes256": lambda _, out: aes256_ctr(out, _AES_KEY,
                                            _AES_NONCE) == payload,
        "gzip": lambda _, out: lz77_decompress(out) == payload,
    }

    print(f"Streaming {SIZE // 1024} KiB through each NDP unit "
          "(SSD -> NDP -> host):\n")
    for func, check in checks.items():
        buf = node.host.alloc_buffer(SIZE + 64 * KIB)
        start = testbed.sim.now

        def body(sim, func=func, buf=buf):
            return (yield from node.library.hdc_readfile(
                fd, 0, SIZE, buf, func=func))

        completion = testbed.sim.run(until=testbed.sim.process(
            body(testbed.sim)))
        elapsed_us = (testbed.sim.now - start) / 1000
        output = node.host.fabric.peek(buf, completion.result_length)
        ok = check(completion.digest, output)
        extra = ""
        if func == "gzip":
            ratio = completion.result_length / SIZE
            extra = f"  (compressed to {ratio * 100:.0f} %)"
        print(f"  {func:8s} {elapsed_us:9.1f} us   "
              f"{'verified' if ok else 'MISMATCH'}{extra}")
        assert ok, func
        node.host.free_buffer(buf, SIZE + 64 * KIB)
    print("\nEvery NDP result matches an independent host-side "
          "computation.")


if __name__ == "__main__":
    main()
