#!/usr/bin/env python3
"""Swift-like object store under load: SW-opt vs DCS-ctrl.

Replays a Dropbox-shaped PUT/GET mix (Poisson arrivals) against a
Swift-like object server with MD5 data integrity, once on the
software-optimized baseline and once on DCS-ctrl, then prints each
server's CPU-utilization breakdown at matched offered load — the
reproduction of the paper's Fig 12a methodology at example scale.

Run:  python examples/swift_object_store.py
"""

from repro.apps import SwiftConfig, WorkloadConfig, run_swift
from repro.schemes import DcsCtrlScheme, SwOptScheme, Testbed
from repro.units import KIB

CONFIG = SwiftConfig(
    workload=WorkloadConfig(arrival_rate=2500.0, put_ratio=0.4,
                            max_object=256 * KIB, count=50, seed=9))


def main():
    totals = {}
    for scheme_cls in (SwOptScheme, DcsCtrlScheme):
        testbed = Testbed(seed=9)
        scheme = scheme_cls(testbed)
        run = run_swift(scheme, CONFIG)
        totals[scheme.name] = run.server_cpu_total
        print(f"\n=== {scheme.name}")
        print(f"  served {run.requests_done} requests "
              f"({run.bytes_get} B GET, {run.bytes_put} B PUT) "
              f"at {run.throughput_gbps:.2f} Gbps")
        print(f"  mean request latency: {run.latencies.mean():.1f} us "
              f"(p99 {run.latencies.percentile(99):.1f} us)")
        print(f"  server CPU: {run.server_cpu_total * 100:.2f} % of 6 cores")
        for category, util in sorted(run.server_cpu.items(),
                                     key=lambda kv: -kv[1]):
            if util > 0:
                print(f"    {category:20s} {util * 100:6.2f} %")
    ratio = totals["dcs-ctrl"] / totals["sw-opt"]
    print(f"\nDCS-ctrl used {ratio * 100:.0f} % of the baseline's CPU at "
          "the same offered load")
    print("(the paper reports a ~52 % CPU-utilization reduction)")


if __name__ == "__main__":
    main()
