#!/usr/bin/env python3
"""Quickstart: one direct D2D transfer under every scheme.

Builds the two-node testbed (SSD + NIC + GPU + HDC Engine per node),
stores a file on node0's SSD, and sends it to node1 with an MD5
integrity check computed in flight — by the GPU for the software
designs and by the MD5 NDP unit for DCS-ctrl.  Prints the latency
breakdown each scheme produced and verifies every digest against
hashlib.

Run:  python examples/quickstart.py
"""

import hashlib

from repro.analysis import LatencyTrace
from repro.schemes import (DcsCtrlScheme, SwOptScheme, SwP2pScheme, Testbed)
from repro.units import KIB

SIZE = 16 * KIB


def run_scheme(scheme_cls):
    testbed = Testbed(seed=7)
    scheme = scheme_cls(testbed)
    payload = bytes((i * 11) % 256 for i in range(SIZE))
    testbed.node0.host.install_file("object.dat", payload)
    conn = scheme.connect()
    trace = LatencyTrace(testbed.sim)

    def sender(sim):
        return (yield from scheme.send_file(
            testbed.node0, conn, "object.dat", 0, SIZE,
            processing="md5", trace=trace))

    procs = [testbed.sim.process(sender(testbed.sim))]
    if not conn.offloaded:
        # Kernel-terminated connections need a receiver to drain.
        dst = testbed.node1.host.alloc_buffer(SIZE)

        def receiver(sim):
            yield from testbed.node1.host.kernel.socket_recv(
                conn.flow1, SIZE, dst)

        procs.append(testbed.sim.process(receiver(testbed.sim)))
    result = testbed.sim.run(until=procs[0])
    for proc in procs[1:]:
        testbed.sim.run(until=proc)
    trace.finish()

    expected = hashlib.md5(payload).digest()
    status = "OK" if result.digest == expected else "MISMATCH"
    print(f"\n=== {scheme.name}")
    print(f"  end-to-end: {trace.total_us:8.2f} us   digest {status}")
    for category, us in trace.breakdown_us().items():
        print(f"    {category:20s} {us:8.2f} us")
    assert result.digest == expected


def main():
    print(f"Sending a {SIZE // 1024} KiB object SSD -> MD5 -> NIC "
          "under each design:")
    for scheme_cls in (SwOptScheme, SwP2pScheme, DcsCtrlScheme):
        run_scheme(scheme_cls)
    print("\nAll schemes moved the same bytes and computed the same MD5.")


if __name__ == "__main__":
    main()
