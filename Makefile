# Convenience targets; everything runs with the in-tree sources
# (PYTHONPATH=src) so no install step is required.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench experiments faults-smoke trace-demo docs-check clean

test:            ## tier-1 suite (ROADMAP.md verify command)
	$(PYTHON) -m pytest -x -q

bench:           ## regenerate every table & figure with assertions
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

experiments:     ## print all reproduced tables/figures
	$(PYTHON) -m repro.experiments

faults-smoke:    ## fault-rate sweep across all four schemes (docs/faults.md)
	$(PYTHON) -m repro.experiments faults

trace-demo:      ## traced headline run -> trace.json (ui.perfetto.dev)
	$(PYTHON) -m repro.experiments --trace trace.json headline
	@echo "wrote trace.json - load it in https://ui.perfetto.dev"

docs-check:      ## taxonomy <-> docs/tracing.md lock-step check
	$(PYTHON) -m pytest -q tests/test_trace_docs.py

clean:
	rm -rf .pytest_cache .hypothesis trace.json
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
