# Convenience targets; everything runs with the in-tree sources
# (PYTHONPATH=src) so no install step is required.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench experiments faults-smoke trace-demo metrics-smoke \
        docs-check lint clean

test:            ## tier-1 suite (ROADMAP.md verify command)
	$(PYTHON) -m pytest -x -q

bench:           ## regenerate every table & figure with assertions
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

experiments:     ## print all reproduced tables/figures
	$(PYTHON) -m repro.experiments

faults-smoke:    ## fault-rate sweep across all four schemes (docs/faults.md)
	$(PYTHON) -m repro.experiments faults

trace-demo:      ## traced headline run -> trace.json (ui.perfetto.dev)
	$(PYTHON) -m repro.experiments --trace trace.json headline
	@echo "wrote trace.json - load it in https://ui.perfetto.dev"

metrics-smoke:   ## metered headline: CSV non-empty + same-seed identical
	$(PYTHON) -m repro.experiments --metrics metrics-a.csv headline
	$(PYTHON) -m repro.experiments --metrics metrics-b.csv headline
	@test -s metrics-a.csv || (echo "metrics CSV is empty" && exit 1)
	@cmp metrics-a.csv metrics-b.csv \
	    || (echo "metrics CSV differs across same-seed runs" && exit 1)
	@echo "metrics-smoke OK: $$(wc -l < metrics-a.csv) rows, byte-identical"

docs-check:      ## catalogs <-> docs/{tracing,metrics,lint}.md lock-step check
	$(PYTHON) -m pytest -q tests/test_trace_docs.py tests/test_metrics_docs.py \
	    tests/test_lint_docs.py

lint:            ## simlint: determinism/scheduling/plane-contract rules
	$(PYTHON) -m repro.lint src tests

clean:
	rm -rf .pytest_cache .hypothesis trace.json metrics-a.csv metrics-b.csv
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
