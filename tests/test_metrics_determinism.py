"""Golden-metrics determinism: same seed => byte-identical CSV, and
sampling never perturbs the event order of the run it observes."""

from repro.core.command import D2DKind
from repro.experiments.common import measure_send
from repro.faults import FaultPlan, FaultRule
from repro.metrics import MetricsSession, csv_lines
from repro.metrics import jsonl_lines as metrics_jsonl_lines
from repro.schemes import DcsCtrlScheme, SwOptScheme, Testbed
from repro.trace import TraceSession, jsonl_lines
from repro.units import KIB


def _metered_run(scheme_cls, processing):
    with MetricsSession(label="golden") as session:
        measure_send(scheme_cls, processing, seed=7)
    return session


def _faulty_run():
    """A D2D transfer that injects a flash error and recovers."""
    with MetricsSession(label="faulty") as session:
        tb = Testbed(seed=21, faults=FaultPlan(
            (FaultRule("flash.read", occurrences={1}),)))
        buf = tb.node0.host.alloc_buffer(4 * KIB)
        driver = tb.node0.driver

        def body(sim):
            yield from driver.submit(D2DKind.SSD_TO_HOST, src=0, dst=buf,
                                     length=4 * KIB)

        proc = tb.sim.process(body(tb.sim))
        tb.sim.run()
        assert proc.ok
        assert tb.node0.engine.nvme_ctrl.retries == 1
    return session


class TestDeterminism:
    def test_csv_byte_identical_across_runs(self):
        first = "\n".join(csv_lines(_metered_run(DcsCtrlScheme, "md5")))
        second = "\n".join(csv_lines(_metered_run(DcsCtrlScheme, "md5")))
        assert first == second

    def test_csv_byte_identical_for_host_path_too(self):
        first = "\n".join(csv_lines(_metered_run(SwOptScheme, None)))
        second = "\n".join(csv_lines(_metered_run(SwOptScheme, None)))
        assert first == second

    def test_csv_byte_identical_with_faults_injected(self):
        # Recovery machinery (watchdogs, retries, backoff) runs under
        # sampling; the fault counters themselves are series.  The whole
        # thing must still replay byte-for-byte.
        first = "\n".join(csv_lines(_faulty_run()))
        second = "\n".join(csv_lines(_faulty_run()))
        assert first == second
        assert "faults.injected" in first
        assert "faults.retries" in first

    def test_jsonl_byte_identical_across_runs(self):
        first = "\n".join(
            metrics_jsonl_lines(_metered_run(DcsCtrlScheme, None)))
        second = "\n".join(
            metrics_jsonl_lines(_metered_run(DcsCtrlScheme, None)))
        assert first == second


class TestSamplingDoesNotPerturb:
    def test_trace_identical_with_and_without_metrics(self):
        # The strongest no-observer-effect statement available: the full
        # event trace of a sampled run is byte-identical to an unsampled
        # one, so sampling cannot have reordered or added any event.
        with TraceSession(label="plain") as plain:
            measure_send(DcsCtrlScheme, "md5", seed=7)
        with TraceSession(label="plain") as sampled:
            with MetricsSession(label="metered"):
                measure_send(DcsCtrlScheme, "md5", seed=7)
        assert ("\n".join(jsonl_lines(plain))
                == "\n".join(jsonl_lines(sampled)))

    def test_result_identical_with_and_without_metrics(self):
        bare = measure_send(DcsCtrlScheme, None, seed=7)
        with MetricsSession(label="metered"):
            metered = measure_send(DcsCtrlScheme, None, seed=7)
        assert bare.latency_us == metered.latency_us
        assert bare.trace.breakdown_us() == metered.trace.breakdown_us()
