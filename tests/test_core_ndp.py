"""Tests for NDP units, the function registry and the resource model."""

import hashlib
import zlib

import pytest

from repro.algos import aes256_ctr, lz77_decompress
from repro.core.ndp import (ENGINE_BASE_UTILIZATION, FUNC_AES256, FUNC_CRC32,
                            FUNC_GZIP, FUNC_MD5, NDP_CORES, NdpBank, func_id,
                            func_name)
from repro.core.ndp.unit import _AES_KEY, _AES_NONCE, NdpUnit
from repro.errors import ConfigurationError
from repro.memory import MemoryRegion
from repro.pcie import Fabric, LINK_GEN2_X8
from repro.sim import Simulator
from repro.units import KIB, MIB, usec


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def fabric(sim):
    fab = Fabric(sim)
    fab.add_port("engine", LINK_GEN2_X8)
    fab.add_region(MemoryRegion("ddr3", base=0x1000_0000, size=16 * MIB,
                                port="engine"))
    return fab


BUF = 0x1000_0000


class TestRegistry:
    def test_roundtrip(self):
        assert func_id("md5") == FUNC_MD5
        assert func_name(FUNC_MD5) == "md5"

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            func_id("rot13")
        with pytest.raises(ConfigurationError):
            func_name(99)


class TestResourceModel:
    def test_table3_instances_for_10g(self):
        # MD5 at 0.97 Gbps/unit needs ~10 instances; AES needs one.
        assert NDP_CORES["md5"].units_for_10g() == 10
        assert NDP_CORES["aes256"].units_for_10g() == 1
        assert NDP_CORES["crc32"].units_for_10g() == 1

    def test_table3_fractions_match_paper(self):
        # Paper: MD5 = 3.0 % LUTs, 0.69 % registers of a Virtex-7.
        assert NDP_CORES["md5"].lut_fraction() == pytest.approx(0.030, abs=0.002)
        assert NDP_CORES["md5"].register_fraction() == pytest.approx(
            0.0069, abs=0.0005)

    def test_table4_fractions_match_paper(self):
        # Paper Table IV: 38 % LUTs, 15 % registers, 43 % BRAMs.
        assert ENGINE_BASE_UTILIZATION.lut_fraction() == pytest.approx(
            0.38, abs=0.01)
        assert ENGINE_BASE_UTILIZATION.register_fraction() == pytest.approx(
            0.15, abs=0.01)
        assert ENGINE_BASE_UTILIZATION.bram_fraction() == pytest.approx(
            0.43, abs=0.01)

    def test_engine_plus_all_ndp_fits(self):
        # "the FPGA has enough remaining resources to add NDP units"
        assert ENGINE_BASE_UTILIZATION.fits_with_ndp(list(NDP_CORES))


class TestNdpUnits:
    def _run(self, sim, fabric, bank, fid, data):
        fabric.poke(BUF, data)

        def body(sim):
            result = yield from bank.process(fabric, fid, BUF, len(data))
            return result

        return sim.run(until=sim.process(body(sim)))

    def test_md5_matches_hashlib(self, sim, fabric):
        bank = NdpBank(sim)
        data = b"ndp checksum input" * 50
        result = self._run(sim, fabric, bank, FUNC_MD5, data)
        assert result.digest == hashlib.md5(data).digest()
        assert result.output_length == len(data)

    def test_crc32_matches_zlib(self, sim, fabric):
        bank = NdpBank(sim)
        data = bytes(range(256)) * 16
        result = self._run(sim, fabric, bank, FUNC_CRC32, data)
        assert int.from_bytes(result.digest, "big") == zlib.crc32(data)

    def test_aes_transforms_in_place(self, sim, fabric):
        bank = NdpBank(sim)
        data = b"secret" * 100
        result = self._run(sim, fabric, bank, FUNC_AES256, data)
        assert result.output_length == len(data)
        encrypted = fabric.peek(BUF, len(data))
        assert encrypted != data
        assert aes256_ctr(encrypted, _AES_KEY, _AES_NONCE) == data

    def test_gzip_shrinks_and_roundtrips(self, sim, fabric):
        bank = NdpBank(sim)
        data = b"compressible! " * 1000
        result = self._run(sim, fabric, bank, FUNC_GZIP, data)
        assert result.output_length < len(data)
        blob = fabric.peek(BUF, result.output_length)
        assert lz77_decompress(blob) == data

    def test_md5_timing_matches_provisioned_bank(self, sim, fabric):
        """64 KiB through the 10-instance (≈9.7 Gbps) MD5 bank: ~55 us."""
        bank = NdpBank(sim)
        data = bytes(64 * KIB)
        self._run(sim, fabric, bank, FUNC_MD5, data)
        assert usec(45) < sim.now < usec(80)

    def test_md5_bank_instances_match_table3(self, sim):
        bank = NdpBank(sim)
        assert bank.unit_for(FUNC_MD5).instances == 10
        assert bank.unit_for(FUNC_AES256).instances == 1
        assert bank.unit_for(FUNC_CRC32).instances == 1

    def test_aes_much_faster_than_md5(self, sim, fabric):
        data = bytes(64 * KIB)
        sim_md5 = Simulator()
        fab_md5 = Fabric(sim_md5)
        fab_md5.add_port("engine", LINK_GEN2_X8)
        fab_md5.add_region(MemoryRegion("ddr3", base=BUF, size=16 * MIB,
                                        port="engine"))
        self._run(sim_md5, fab_md5, NdpBank(sim_md5), FUNC_MD5, data)
        self._run(sim, fabric, NdpBank(sim), FUNC_AES256, data)
        # AES streams at 40.9 Gbps vs the MD5 bank's ~9.7 Gbps.
        assert sim.now < sim_md5.now / 2

    def test_concurrent_streams_share_bank_throughput(self, sim, fabric):
        """Four concurrent 16 KiB requests pipeline through the bank:
        aggregate throughput is the provisioned 10 Gbps, so the last
        finishes ~4x after the first."""
        bank = NdpBank(sim)
        data = bytes(16 * KIB)
        fabric.poke(BUF, data)
        finish = []

        def one(sim):
            yield from bank.process(fabric, FUNC_MD5, BUF, len(data))
            finish.append(sim.now)

        for _ in range(4):
            sim.process(one(sim))
        sim.run()
        assert finish == sorted(finish)
        assert 3.0 < max(finish) / min(finish) < 5.0

    def test_unconfigured_function_rejected(self, sim, fabric):
        bank = NdpBank(sim, functions=["crc32"])
        with pytest.raises(ConfigurationError):
            bank.unit_for(FUNC_MD5)

    def test_unit_counters(self, sim, fabric):
        bank = NdpBank(sim)
        data = bytes(4 * KIB)
        self._run(sim, fabric, bank, FUNC_CRC32, data)
        unit = bank.unit_for(FUNC_CRC32)
        assert unit.operations == 1
        assert unit.bytes_processed == len(data)
