"""Tests for the workload generator and the Swift/HDFS application models."""

import pytest

from repro.apps import (HdfsConfig, SwiftConfig, WorkloadConfig,
                        run_hdfs_balancer, run_swift, requests)
from repro.apps.workload import RequestKind, bytes_by_kind
from repro.schemes import DcsCtrlScheme, SwOptScheme, Testbed
from repro.units import KIB, MIB


class TestWorkload:
    def test_deterministic_per_seed(self):
        cfg = WorkloadConfig(count=50, seed=1)
        assert requests(cfg) == requests(cfg)

    def test_different_seeds_differ(self):
        a = requests(WorkloadConfig(count=50, seed=1))
        b = requests(WorkloadConfig(count=50, seed=2))
        assert a != b

    def test_put_ratio_respected(self):
        reqs = requests(WorkloadConfig(count=2000, put_ratio=0.4, seed=3))
        puts = sum(1 for r in reqs if r.kind is RequestKind.PUT)
        assert 0.35 < puts / len(reqs) < 0.45

    def test_put_ratio_extremes(self):
        all_get = requests(WorkloadConfig(count=100, put_ratio=0.0, seed=4))
        assert all(r.kind is RequestKind.GET for r in all_get)
        all_put = requests(WorkloadConfig(count=100, put_ratio=1.0, seed=4))
        assert all(r.kind is RequestKind.PUT for r in all_put)

    def test_sizes_capped(self):
        reqs = requests(WorkloadConfig(count=500, max_object=64 * KIB,
                                       seed=5))
        assert max(r.size for r in reqs) <= 64 * KIB

    def test_arrivals_monotone(self):
        reqs = requests(WorkloadConfig(count=200, seed=6))
        arrivals = [r.arrival for r in reqs]
        assert arrivals == sorted(arrivals)
        assert arrivals[0] > 0

    def test_arrival_rate_approximate(self):
        cfg = WorkloadConfig(count=2000, arrival_rate=1000.0, seed=7)
        reqs = requests(cfg)
        # 2000 requests at 1000/s should span ~2 s of simulated time.
        span_sec = reqs[-1].arrival / 1e9
        assert 1.6 < span_sec < 2.4

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            requests(WorkloadConfig(put_ratio=1.5))
        with pytest.raises(ValueError):
            requests(WorkloadConfig(count=0))

    def test_bytes_by_kind(self):
        reqs = requests(WorkloadConfig(count=300, seed=8))
        totals = bytes_by_kind(iter(reqs))
        assert totals[RequestKind.GET] + totals[RequestKind.PUT] == sum(
            r.size for r in reqs)


SMALL_SWIFT = SwiftConfig(
    workload=WorkloadConfig(arrival_rate=4000.0, count=12,
                            max_object=64 * KIB, seed=9),
    connections=2)

SMALL_HDFS = HdfsConfig(blocks=4, block_size=256 * KIB, streams=2)


class TestSwift:
    @pytest.mark.parametrize("scheme_cls", [SwOptScheme, DcsCtrlScheme])
    def test_all_requests_complete(self, scheme_cls):
        tb = Testbed(seed=51)
        run = run_swift(scheme_cls(tb), SMALL_SWIFT)
        assert run.requests_done == SMALL_SWIFT.workload.count
        assert run.bytes_get + run.bytes_put > 0
        assert run.throughput_gbps > 0

    def test_latencies_recorded(self):
        tb = Testbed(seed=52)
        run = run_swift(SwOptScheme(tb), SMALL_SWIFT)
        assert run.latencies.count == SMALL_SWIFT.workload.count
        assert run.latencies.mean() > 0

    def test_dcs_reduces_server_cpu(self):
        tb_sw = Testbed(seed=53)
        sw = run_swift(SwOptScheme(tb_sw), SMALL_SWIFT)
        tb_dcs = Testbed(seed=53)
        dcs = run_swift(DcsCtrlScheme(tb_dcs), SMALL_SWIFT)
        assert dcs.server_cpu_total < sw.server_cpu_total

    def test_cpu_breakdown_categories_sane(self):
        tb = Testbed(seed=54)
        run = run_swift(DcsCtrlScheme(tb), SMALL_SWIFT)
        # Engine-offloaded Swift must not touch the host network stack.
        assert run.server_cpu.get("network", 0.0) == 0.0
        assert run.server_cpu.get("hdc-driver", 0.0) > 0.0


class TestHdfs:
    @pytest.mark.parametrize("scheme_cls", [SwOptScheme, DcsCtrlScheme])
    def test_all_blocks_moved_and_stored(self, scheme_cls):
        tb = Testbed(seed=55)
        run = run_hdfs_balancer(scheme_cls(tb), SMALL_HDFS)
        assert run.bytes_moved == SMALL_HDFS.blocks * SMALL_HDFS.block_size
        # The last block written to each destination matches its source
        # block exactly (functional end-to-end integrity).
        for stream in range(SMALL_HDFS.streams):
            ext = tb.node1.host.fs.extents_for(
                f"hdfs-dst-{stream}.blk", 0, SMALL_HDFS.block_size)
            stored = tb.node1.host.ssd.flash.read_blocks(
                ext[0].slba, ext[0].nblocks)
            candidates = [
                tb.node0.host.ssd.flash.read_blocks(
                    tb.node0.host.fs.extents_for(
                        f"hdfs-src-{i}.blk", 0,
                        SMALL_HDFS.block_size)[0].slba,
                    ext[0].nblocks)
                for i in range(SMALL_HDFS.blocks)]
            assert stored in candidates, scheme_cls.name

    def test_dcs_reduces_both_sides_cpu(self):
        tb_sw = Testbed(seed=56)
        sw = run_hdfs_balancer(SwOptScheme(tb_sw), SMALL_HDFS)
        tb_dcs = Testbed(seed=56)
        dcs = run_hdfs_balancer(DcsCtrlScheme(tb_dcs), SMALL_HDFS)
        assert dcs.sender_cpu_total < sw.sender_cpu_total
        assert dcs.receiver_cpu_total < sw.receiver_cpu_total

    def test_throughput_positive_and_bounded(self):
        tb = Testbed(seed=57)
        run = run_hdfs_balancer(SwOptScheme(tb), SMALL_HDFS)
        assert 0 < run.throughput_gbps < 10.0
