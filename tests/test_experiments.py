"""Smoke tests for the fast experiment runners (the slow app-scale
runners are exercised by the benchmark suite)."""

import pytest

from repro.experiments import (run_fig11, run_fig3, run_fig8, run_table1,
                               run_table3, run_table4)
from repro.experiments.result import ExperimentResult


class TestResultContainer:
    def test_render_includes_rows_and_metrics(self):
        result = ExperimentResult(name="demo", headers=["a", "b"])
        result.add_row("x", 1)
        result.metrics["k"] = 2.5
        result.notes.append("a note")
        text = result.render()
        assert "demo" in text
        assert "k = 2.500" in text
        assert "note: a note" in text


class TestTables:
    def test_table1_rows(self):
        result = run_table1()
        assert len(result.rows) == 4
        assert result.metrics["dcs_functions"] == 6

    def test_table3_matches_paper_averages(self):
        result = run_table3()
        assert result.metrics["avg_lut_pct"] == pytest.approx(3.28, abs=0.15)
        assert result.metrics["avg_reg_pct"] == pytest.approx(1.02, abs=0.10)

    def test_table4_matches_paper(self):
        result = run_table4()
        assert result.metrics["lut_pct"] == pytest.approx(38, abs=1)
        assert result.metrics["bram_pct"] == pytest.approx(43, abs=1)
        assert result.metrics["fits_all_ndp"] == 1.0


class TestMicrobenchFigures:
    def test_fig8_ordering(self):
        result = run_fig8()
        assert (result.metrics["dcs_vs_linux"]
                < result.metrics["swopt_vs_linux"] < 1.0)

    def test_fig11_headline_bands(self):
        result = run_fig11()
        assert 0.35 < result.metrics["fig11a_software_reduction"] < 0.70
        assert 0.55 < result.metrics["fig11b_software_reduction"] < 0.85
        assert len(result.rows) == 6  # 3 schemes x 2 panels

    def test_fig3_integrated_wins(self):
        result = run_fig3()
        assert result.metrics["integrated_vs_swopt_cpu"] < 0.5
        assert result.metrics["integrated_total_us"] < result.metrics[
            "sw_opt_total_us"]
