"""Tests for the host substrate: CPU pool, FS, page cache, kernel services."""

import hashlib

import pytest

from repro.analysis import LatencyTrace
from repro.errors import ConfigurationError
from repro.host import CAT, CpuPool, DEFAULT_COSTS
from repro.host.kernel import ExtentFilesystem, PageCache
from repro.host.machine import Host
from repro.net import TcpEndpoint, TcpFlow, Wire
from repro.sim import Simulator
from repro.units import KIB, PAGE, usec


@pytest.fixture
def sim():
    return Simulator()


class TestCpuPool:
    def test_run_accounts_category(self, sim):
        cpu = CpuPool(sim, cores=2)

        def body(sim, cpu):
            yield from cpu.run(usec(3), CAT.FILESYSTEM)

        sim.run(until=sim.process(body(sim, cpu)))
        assert cpu.tracker.total(CAT.FILESYSTEM) == usec(3)

    def test_core_contention_serializes(self, sim):
        cpu = CpuPool(sim, cores=1)

        def body(sim, cpu):
            yield from cpu.run(usec(5), "a")

        sim.process(body(sim, cpu))
        sim.process(body(sim, cpu))
        sim.run()
        assert sim.now == usec(10)

    def test_multicore_parallelism(self, sim):
        cpu = CpuPool(sim, cores=4)

        def body(sim, cpu):
            yield from cpu.run(usec(5), "a")

        for _ in range(4):
            sim.process(body(sim, cpu))
        sim.run()
        assert sim.now == usec(5)
        assert cpu.utilization("a") == pytest.approx(1.0)

    def test_bad_config_rejected(self, sim):
        with pytest.raises(ConfigurationError):
            CpuPool(sim, cores=0)


class TestCosts:
    def test_copy_cost_scales(self):
        small = DEFAULT_COSTS.copy_cost(4 * KIB)
        big = DEFAULT_COSTS.copy_cost(64 * KIB)
        assert big > small

    def test_cpu_hash_rates_ordered(self):
        # CRC32 is much cheaper than MD5 on a CPU.
        assert (DEFAULT_COSTS.cpu_hash_cost("crc32", 1 << 20)
                < DEFAULT_COSTS.cpu_hash_cost("md5", 1 << 20))

    def test_unknown_hash_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_COSTS.cpu_hash_cost("blake3", 100)


class TestExtentFilesystem:
    def test_create_and_lookup(self):
        fs = ExtentFilesystem(capacity_blocks=1000)
        fs.create("a.dat", 10 * KIB)
        spans = fs.extents_for("a.dat", 0, 10 * KIB)
        assert sum(e.nblocks for e in spans) == 3  # ceil(10K/4K)

    def test_sequential_allocation(self):
        fs = ExtentFilesystem(capacity_blocks=1000, first_lba=64)
        (a,) = fs.create("a", 4 * KIB)
        (b,) = fs.create("b", 4 * KIB)
        assert a.slba == 64
        assert b.slba == 65

    def test_offset_lookup(self):
        fs = ExtentFilesystem(capacity_blocks=1000, first_lba=0)
        fs.create("f", 64 * KIB)
        spans = fs.extents_for("f", 8 * KIB, 8 * KIB)
        assert len(spans) == 1
        assert spans[0].slba == 2
        assert spans[0].nblocks == 2

    def test_out_of_range_rejected(self):
        fs = ExtentFilesystem(capacity_blocks=1000)
        fs.create("f", 8 * KIB)
        with pytest.raises(ConfigurationError):
            fs.extents_for("f", 0, 64 * KIB)

    def test_unaligned_offset_rejected(self):
        fs = ExtentFilesystem(capacity_blocks=1000)
        fs.create("f", 64 * KIB)
        with pytest.raises(ConfigurationError):
            fs.extents_for("f", 100, 4 * KIB)

    def test_duplicate_rejected(self):
        fs = ExtentFilesystem(capacity_blocks=1000)
        fs.create("f", 4 * KIB)
        with pytest.raises(ConfigurationError):
            fs.create("f", 4 * KIB)

    def test_out_of_space_rejected(self):
        fs = ExtentFilesystem(capacity_blocks=10, first_lba=0)
        with pytest.raises(ConfigurationError):
            fs.create("big", 11 * PAGE)


class TestPageCache:
    def test_hit_miss_accounting(self):
        cache = PageCache(capacity_pages=8)
        assert cache.lookup("f", 0) is None
        cache.insert("f", 0, bytes(PAGE))
        assert cache.lookup("f", 0) == bytes(PAGE)
        assert cache.hits == 1
        assert cache.misses == 1

    def test_lru_eviction(self):
        cache = PageCache(capacity_pages=2)
        cache.insert("f", 0, bytes(PAGE))
        cache.insert("f", 1, bytes(PAGE))
        cache.lookup("f", 0)              # 0 becomes MRU
        cache.insert("f", 2, bytes(PAGE))  # evicts 1
        assert cache.lookup("f", 1) is None
        assert cache.lookup("f", 0) is not None

    def test_dirty_tracking(self):
        cache = PageCache()
        cache.insert("f", 3, b"\x01" * PAGE, dirty=True)
        assert cache.dirty_pages("f", 0, 10) == [3]
        assert cache.dirty_data("f", 3) == b"\x01" * PAGE
        cache.mark_clean("f", 3)
        assert cache.dirty_pages("f", 0, 10) == []

    def test_dirty_eviction_refused(self):
        cache = PageCache(capacity_pages=1)
        cache.insert("f", 0, bytes(PAGE), dirty=True)
        with pytest.raises(ConfigurationError):
            cache.insert("f", 1, bytes(PAGE))

    def test_partial_page_rejected(self):
        cache = PageCache()
        with pytest.raises(ConfigurationError):
            cache.insert("f", 0, b"small")

    def test_invalidate_keeps_dirty(self):
        cache = PageCache()
        cache.insert("f", 0, bytes(PAGE))
        cache.insert("f", 1, bytes(PAGE), dirty=True)
        dropped = cache.invalidate("f")
        assert dropped == 1
        assert cache.dirty_pages("f", 0, 4) == [1]


class TestHostStorage:
    def test_direct_read_returns_data(self, sim):
        host = Host(sim, with_gpu=False)
        payload = bytes(range(256)) * 64  # 16 KiB
        host.install_file("obj", payload)
        buf = host.alloc_buffer(16 * KIB)
        trace = LatencyTrace(sim)

        def body(sim):
            yield from host.kernel.file_read_direct("obj", 0, 16 * KIB, buf,
                                                    trace)

        sim.run(until=sim.process(body(sim)))
        assert host.fabric.peek(buf, 16 * KIB) == payload
        # Latency components present: FS, device control, read, completion.
        for cat in (CAT.FILESYSTEM, CAT.DEVICE_CONTROL, CAT.READ,
                    CAT.COMPLETION):
            assert trace.segments[cat] > 0, cat

    def test_direct_write_roundtrip(self, sim):
        host = Host(sim, with_gpu=False)
        host.install_file("obj", bytes(16 * KIB))
        payload = b"\x5a" * (16 * KIB)
        buf = host.alloc_buffer(16 * KIB)
        host.fabric.poke(buf, payload)

        def body(sim):
            yield from host.kernel.file_write_direct("obj", 0, 16 * KIB, buf)

        sim.run(until=sim.process(body(sim)))
        extents = host.fs.extents_for("obj", 0, 16 * KIB)
        assert host.ssd.flash.read_blocks(extents[0].slba, 4) == payload

    def test_buffered_read_costs_more_cpu(self, sim):
        host = Host(sim, with_gpu=False)
        host.install_file("obj", bytes(64 * KIB))
        buf = host.alloc_buffer(64 * KIB)

        def run(path):
            host.cpu.tracker.reset_window()

            def body(sim):
                yield from path("obj", 0, 64 * KIB, buf)

            sim.run(until=sim.process(body(sim)))
            return host.cpu.tracker.total()

        direct = run(host.kernel.file_read_direct)
        buffered = run(host.kernel.file_read_buffered)
        assert buffered > direct * 1.5

    def test_cpu_checksum_matches_reference(self, sim):
        host = Host(sim, with_gpu=False)
        data = b"checksum me" * 100
        buf = host.alloc_buffer(len(data))
        host.fabric.poke(buf, data)

        def body(sim):
            digest = yield from host.kernel.cpu_checksum("md5", buf,
                                                         len(data))
            return digest

        digest = sim.run(until=sim.process(body(sim)))
        assert digest == hashlib.md5(data).digest()


class TestHostNetwork:
    def _linked_hosts(self, sim):
        a = Host(sim, name="a", with_gpu=False)
        b = Host(sim, name="b", with_gpu=False)
        wire = Wire(sim)
        arm_a = a.connect_network(wire)
        arm_b = b.connect_network(wire)
        ep_a = TcpEndpoint(mac="02:00:00:00:00:0a", ip="10.0.0.1", port=9000)
        ep_b = TcpEndpoint(mac="02:00:00:00:00:0b", ip="10.0.0.2", port=9001)
        flow_ab = TcpFlow(local=ep_a, remote=ep_b)
        flow_ba = flow_ab.reverse()
        a.kernel.register_flow(flow_ab)
        b.kernel.register_flow(flow_ba)
        sim.run(until=arm_a)
        sim.run(until=arm_b)
        return a, b, flow_ab, flow_ba

    def test_send_recv_roundtrip(self, sim):
        a, b, flow_ab, flow_ba = self._linked_hosts(sim)
        payload = bytes(range(256)) * 512  # 128 KiB, two LSO batches
        src = a.alloc_buffer(len(payload))
        dst = b.alloc_buffer(len(payload))
        a.fabric.poke(src, payload)

        def sender(sim):
            yield from a.kernel.socket_send(flow_ab, src, len(payload))

        def receiver(sim):
            data = yield from b.kernel.socket_recv(flow_ba, len(payload), dst)
            return data

        sim.process(sender(sim))
        proc = sim.process(receiver(sim))
        data = sim.run(until=proc)
        assert data == payload
        assert b.fabric.peek(dst, len(payload)) == payload

    def test_send_charges_network_cpu(self, sim):
        a, b, flow_ab, flow_ba = self._linked_hosts(sim)
        payload = bytes(32 * KIB)
        src = a.alloc_buffer(len(payload))
        a.fabric.poke(src, payload)
        a.cpu.tracker.reset_window()

        def sender(sim):
            yield from a.kernel.socket_send(flow_ab, src, len(payload))

        def receiver(sim):
            dst = b.alloc_buffer(len(payload))
            yield from b.kernel.socket_recv(flow_ba, len(payload), dst)

        sim.process(sender(sim))
        proc = sim.process(receiver(sim))
        sim.run(until=proc)
        assert a.cpu.tracker.total(CAT.NETWORK) > 0
        assert a.cpu.tracker.total(CAT.DEVICE_CONTROL) > 0
        assert b.cpu.tracker.total(CAT.NETWORK) > 0

    def test_unregistered_flow_rejected(self, sim):
        a, b, flow_ab, flow_ba = self._linked_hosts(sim)
        stranger = TcpFlow(
            local=TcpEndpoint(mac="02:00:00:00:00:0c", ip="10.0.0.3",
                              port=1234),
            remote=TcpEndpoint(mac="02:00:00:00:00:0d", ip="10.0.0.4",
                               port=4321))

        def body(sim):
            yield from b.kernel.socket_recv(stranger, 10, 0x1000)

        proc = sim.process(body(sim))
        sim.run()
        assert not proc.ok
