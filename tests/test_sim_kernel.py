"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator
from repro.units import usec


@pytest.fixture
def sim():
    return Simulator()


class TestTimeout:
    def test_time_starts_at_zero(self, sim):
        assert sim.now == 0

    def test_timeout_advances_time(self, sim):
        def body(sim):
            yield sim.timeout(100)

        sim.process(body(sim))
        sim.run()
        assert sim.now == 100

    def test_timeout_carries_value(self, sim):
        def body(sim):
            got = yield sim.timeout(5, value="payload")
            return got

        proc = sim.process(body(sim))
        sim.run()
        assert proc.value == "payload"

    def test_zero_delay_timeout_is_legal(self, sim):
        def body(sim):
            yield sim.timeout(0)
            return sim.now

        proc = sim.process(body(sim))
        sim.run()
        assert proc.value == 0

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(-1)

    def test_sequential_timeouts_accumulate(self, sim):
        def body(sim):
            yield sim.timeout(10)
            yield sim.timeout(20)
            yield sim.timeout(30)

        sim.process(body(sim))
        sim.run()
        assert sim.now == 60


class TestProcess:
    def test_return_value_becomes_event_value(self, sim):
        def body(sim):
            yield sim.timeout(1)
            return 42

        proc = sim.process(body(sim))
        sim.run()
        assert proc.value == 42

    def test_process_is_alive_until_done(self, sim):
        def body(sim):
            yield sim.timeout(10)

        proc = sim.process(body(sim))
        assert proc.is_alive
        sim.run()
        assert not proc.is_alive

    def test_process_can_wait_on_process(self, sim):
        def child(sim):
            yield sim.timeout(7)
            return "child-result"

        def parent(sim):
            result = yield sim.process(child(sim))
            return result

        proc = sim.process(parent(sim))
        sim.run()
        assert proc.value == "child-result"
        assert sim.now == 7

    def test_waiting_on_finished_process_resumes_immediately(self, sim):
        def child(sim):
            yield sim.timeout(3)
            return "early"

        def parent(sim, childproc):
            yield sim.timeout(10)
            result = yield childproc
            return (result, sim.now)

        childproc = sim.process(child(sim))
        proc = sim.process(parent(sim, childproc))
        sim.run()
        assert proc.value == ("early", 10)

    def test_exception_in_process_fails_its_event(self, sim):
        def body(sim):
            yield sim.timeout(1)
            raise ValueError("boom")

        proc = sim.process(body(sim))
        sim.run()
        assert proc.triggered and not proc.ok
        with pytest.raises(ValueError, match="boom"):
            _ = proc.value

    def test_failure_propagates_into_waiter(self, sim):
        def child(sim):
            yield sim.timeout(1)
            raise RuntimeError("child died")

        def parent(sim):
            try:
                yield sim.process(child(sim))
            except RuntimeError as exc:
                return f"caught: {exc}"
            return "not caught"

        proc = sim.process(parent(sim))
        sim.run()
        assert proc.value == "caught: child died"

    def test_yielding_non_event_raises_in_process(self, sim):
        def body(sim):
            try:
                yield "not an event"
            except SimulationError:
                return "rejected"

        proc = sim.process(body(sim))
        sim.run()
        assert proc.value == "rejected"

    def test_non_generator_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.process(lambda: None)

    def test_many_concurrent_processes_all_finish(self, sim):
        done = []

        def body(sim, i):
            yield sim.timeout(i)
            done.append(i)

        for i in range(100):
            sim.process(body(sim, i))
        sim.run()
        assert done == sorted(done)
        assert len(done) == 100


class TestEvent:
    def test_manual_succeed(self, sim):
        ev = sim.event()

        def waiter(sim, ev):
            value = yield ev
            return value

        proc = sim.process(waiter(sim, ev))

        def trigger(sim, ev):
            yield sim.timeout(50)
            ev.succeed("signal")

        sim.process(trigger(sim, ev))
        sim.run()
        assert proc.value == "signal"
        assert sim.now == 50

    def test_double_trigger_rejected(self, sim):
        ev = sim.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)

    def test_fail_requires_exception(self, sim):
        ev = sim.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_value_before_trigger_raises(self, sim):
        ev = sim.event()
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_same_tick_fifo_order(self, sim):
        order = []

        def body(sim, name):
            yield sim.timeout(10)
            order.append(name)

        for name in ("a", "b", "c", "d"):
            sim.process(body(sim, name))
        sim.run()
        assert order == ["a", "b", "c", "d"]


class TestConditions:
    def test_all_of_waits_for_slowest(self, sim):
        def body(sim):
            t1 = sim.timeout(10, value="x")
            t2 = sim.timeout(30, value="y")
            results = yield sim.all_of([t1, t2])
            return (sim.now, sorted(results.values()))

        proc = sim.process(body(sim))
        sim.run()
        assert proc.value == (30, ["x", "y"])

    def test_any_of_returns_on_fastest(self, sim):
        def body(sim):
            t1 = sim.timeout(10, value="fast")
            t2 = sim.timeout(30, value="slow")
            results = yield sim.any_of([t1, t2])
            return (sim.now, list(results.values()))

        proc = sim.process(body(sim))
        sim.run()
        assert proc.value == (10, ["fast"])

    def test_all_of_empty_triggers_immediately(self, sim):
        def body(sim):
            yield sim.all_of([])
            return sim.now

        proc = sim.process(body(sim))
        sim.run()
        assert proc.value == 0

    def test_all_of_propagates_failure(self, sim):
        def failing(sim):
            yield sim.timeout(5)
            raise ValueError("inner")

        def body(sim):
            try:
                yield sim.all_of([sim.timeout(100), sim.process(failing(sim))])
            except ValueError:
                return "failed"

        proc = sim.process(body(sim))
        sim.run()
        assert proc.value == "failed"


class TestRun:
    def test_run_until_time_stops_exactly(self, sim):
        def body(sim):
            while True:
                yield sim.timeout(10)

        sim.process(body(sim))
        sim.run(until=usec(1))
        assert sim.now == usec(1)

    def test_run_until_event_returns_value(self, sim):
        def body(sim):
            yield sim.timeout(25)
            return "finished"

        proc = sim.process(body(sim))
        assert sim.run(until=proc) == "finished"
        assert sim.now == 25

    def test_run_until_event_deadlock_detected(self, sim):
        ev = sim.event()  # nobody will ever trigger this
        with pytest.raises(SimulationError, match="deadlock"):
            sim.run(until=ev)

    def test_run_until_past_rejected(self, sim):
        sim.process(iter_timeout(sim, 100))
        sim.run(until=100)
        with pytest.raises(SimulationError):
            sim.run(until=50)

    def test_step_on_empty_queue_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.step()

    def test_determinism_two_runs_identical(self):
        def trace_run():
            sim = Simulator()
            trace = []

            def body(sim, name, delay):
                for _ in range(5):
                    yield sim.timeout(delay)
                    trace.append((sim.now, name))

            for i, name in enumerate("abcde"):
                sim.process(body(sim, name, 7 + i))
            sim.run()
            return trace

        assert trace_run() == trace_run()


def iter_timeout(sim, delay):
    yield sim.timeout(delay)
