"""The from-scratch algorithms must match the standard library bit-for-bit
(and the LZ77 container must round-trip)."""

import binascii
import hashlib
import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algos import (aes256_ctr, crc32, crc32_digest, expand_key_256,
                         lz77_compress, lz77_decompress, md5_digest,
                         md5_hexdigest, sha1_digest, sha1_hexdigest,
                         sha256_digest, sha256_hexdigest)
from repro.errors import ProtocolError

VECTORS = [
    b"",
    b"a",
    b"abc",
    b"message digest",
    b"abcdefghijklmnopqrstuvwxyz",
    b"The quick brown fox jumps over the lazy dog",
    bytes(range(256)),
    b"x" * 55,    # exactly one padding byte
    b"x" * 56,    # length spills into next block
    b"x" * 64,    # exact block
    b"x" * 1000,
]


class TestMd5:
    @pytest.mark.parametrize("data", VECTORS, ids=range(len(VECTORS)))
    def test_matches_hashlib(self, data):
        assert md5_digest(data) == hashlib.md5(data).digest()

    def test_rfc1321_vectors(self):
        assert md5_hexdigest(b"") == "d41d8cd98f00b204e9800998ecf8427e"
        assert md5_hexdigest(b"abc") == "900150983cd24fb0d6963f7d28e17f72"

    @settings(max_examples=50, deadline=None)
    @given(data=st.binary(max_size=2000))
    def test_matches_hashlib_property(self, data):
        assert md5_digest(data) == hashlib.md5(data).digest()


class TestSha1:
    @pytest.mark.parametrize("data", VECTORS, ids=range(len(VECTORS)))
    def test_matches_hashlib(self, data):
        assert sha1_digest(data) == hashlib.sha1(data).digest()

    def test_fips_vector(self):
        assert (sha1_hexdigest(b"abc")
                == "a9993e364706816aba3e25717850c26c9cd0d89d")

    @settings(max_examples=50, deadline=None)
    @given(data=st.binary(max_size=2000))
    def test_matches_hashlib_property(self, data):
        assert sha1_digest(data) == hashlib.sha1(data).digest()


class TestSha256:
    @pytest.mark.parametrize("data", VECTORS, ids=range(len(VECTORS)))
    def test_matches_hashlib(self, data):
        assert sha256_digest(data) == hashlib.sha256(data).digest()

    def test_fips_vector(self):
        assert (sha256_hexdigest(b"abc")
                == "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad")

    @settings(max_examples=50, deadline=None)
    @given(data=st.binary(max_size=2000))
    def test_matches_hashlib_property(self, data):
        assert sha256_digest(data) == hashlib.sha256(data).digest()


class TestCrc32:
    @pytest.mark.parametrize("data", VECTORS, ids=range(len(VECTORS)))
    def test_matches_zlib(self, data):
        assert crc32(data) == zlib.crc32(data)

    def test_chaining_matches_zlib(self):
        a, b = b"hello ", b"world"
        assert crc32(b, crc32(a)) == zlib.crc32(b, zlib.crc32(a))

    def test_matches_binascii(self):
        data = b"123456789"
        assert crc32(data) == binascii.crc32(data)
        assert crc32(data) == 0xCBF43926  # the canonical check value

    def test_digest_is_big_endian(self):
        assert crc32_digest(b"123456789") == bytes.fromhex("cbf43926")

    @settings(max_examples=50, deadline=None)
    @given(data=st.binary(max_size=4000))
    def test_matches_zlib_property(self, data):
        assert crc32(data) == zlib.crc32(data)


class TestAes256:
    KEY = bytes(range(32))
    NONCE = b"\x00" * 8

    def test_fips197_c3_key_expansion_first_round(self):
        # FIPS-197 Appendix A.3 key; first round key equals the key's
        # first 16 bytes.
        key = bytes.fromhex(
            "603deb1015ca71be2b73aef0857d7781"
            "1f352c073b6108d72d9810a30914dff4")
        round_keys = expand_key_256(key)
        assert round_keys[0] == key[:16]
        assert round_keys[1] == key[16:]
        # The final round key from the FIPS-197 expansion listing.
        assert round_keys[14].hex() == "fe4890d1e6188d0b046df344706c631e"

    def test_fips197_c3_block_vector(self):
        # FIPS-197 Appendix C.3: AES-256 ECB known-answer test, driven
        # through CTR with the counter block equal to the plaintext is
        # not possible, so test the core via the keystream: encrypting
        # zeros yields the raw block cipher output of the counter.
        from repro.algos.aes import _encrypt_block
        key = bytes.fromhex(
            "000102030405060708090a0b0c0d0e0f"
            "101112131415161718191a1b1c1d1e1f")
        plain = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("8ea2b7ca516745bfeafc49904b496089")
        assert _encrypt_block(plain, expand_key_256(key)) == expected

    def test_ctr_roundtrip(self):
        data = b"secret payload" * 10
        encrypted = aes256_ctr(data, self.KEY, self.NONCE)
        assert encrypted != data
        assert aes256_ctr(encrypted, self.KEY, self.NONCE) == data

    def test_ctr_length_preserving(self):
        for n in (0, 1, 15, 16, 17, 100):
            assert len(aes256_ctr(b"z" * n, self.KEY, self.NONCE)) == n

    def test_different_nonce_different_ciphertext(self):
        data = b"q" * 64
        c1 = aes256_ctr(data, self.KEY, b"\x00" * 8)
        c2 = aes256_ctr(data, self.KEY, b"\x01" * 8)
        assert c1 != c2

    def test_bad_key_rejected(self):
        with pytest.raises(ProtocolError):
            aes256_ctr(b"data", b"short", self.NONCE)

    def test_bad_nonce_rejected(self):
        with pytest.raises(ProtocolError):
            aes256_ctr(b"data", self.KEY, b"short")

    @settings(max_examples=25, deadline=None)
    @given(data=st.binary(max_size=500))
    def test_roundtrip_property(self, data):
        encrypted = aes256_ctr(data, self.KEY, self.NONCE)
        assert aes256_ctr(encrypted, self.KEY, self.NONCE) == data


class TestLz77:
    def test_roundtrip_simple(self):
        data = b"hello hello hello hello"
        assert lz77_decompress(lz77_compress(data)) == data

    def test_roundtrip_empty(self):
        assert lz77_decompress(lz77_compress(b"")) == b""

    def test_compresses_redundancy(self):
        data = b"abcdefgh" * 1000
        blob = lz77_compress(data)
        assert len(blob) < len(data) // 4

    def test_incompressible_grows_bounded(self):
        import random
        rng = random.Random(1)
        data = bytes(rng.randrange(256) for _ in range(10000))
        blob = lz77_compress(data)
        assert len(blob) < len(data) * 1.05 + 64

    def test_bad_magic_rejected(self):
        with pytest.raises(ProtocolError):
            lz77_decompress(b"NOPE" + bytes(20))

    def test_truncated_rejected(self):
        blob = lz77_compress(b"some data worth compressing, repeated twice. "
                             b"some data worth compressing, repeated twice.")
        with pytest.raises(ProtocolError):
            lz77_decompress(blob[:len(blob) - 3])

    def test_long_match_and_long_literal_runs(self):
        data = bytes(range(256)) * 300 + b"\x00" * 70000
        assert lz77_decompress(lz77_compress(data)) == data

    @settings(max_examples=50, deadline=None)
    @given(data=st.binary(max_size=5000))
    def test_roundtrip_property(self, data):
        assert lz77_decompress(lz77_compress(data)) == data

    @settings(max_examples=20, deadline=None)
    @given(data=st.text(alphabet="abcab ", min_size=0,
                        max_size=5000).map(str.encode))
    def test_roundtrip_redundant_property(self, data):
        assert lz77_decompress(lz77_compress(data)) == data
