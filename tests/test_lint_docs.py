"""docs-check: the rule registry and docs/lint.md stay in lock-step.

Same contract pattern as tests/test_metrics_docs.py and
tests/test_trace_docs.py: every registered rule has a '### `RULEID`'
section, every documented rule id is registered, no duplicates.
"""

import re
from pathlib import Path

from repro.lint import rule_classes, rule_ids

REPO_ROOT = Path(__file__).resolve().parent.parent
LINT_MD = REPO_ROOT / "docs" / "lint.md"

_HEADING = re.compile(r"^###\s+`([A-Z]+[0-9]+)`(.*)$", re.MULTILINE)


def _documented() -> list[tuple[str, str]]:
    """(rule id, rest-of-heading-line) for each doc section."""
    return [(rule_id, rest.strip()) for rule_id, rest
            in _HEADING.findall(LINT_MD.read_text(encoding="utf-8"))]


class TestContract:
    def test_every_registered_rule_is_documented(self):
        documented = {rule_id for rule_id, _ in _documented()}
        missing = [rule_id for rule_id in rule_ids()
                   if rule_id not in documented]
        assert not missing, (
            f"rules registered in repro/lint/rules.py but missing a "
            f"'### `RULEID`' section in docs/lint.md: {missing}")

    def test_every_documented_rule_is_registered(self):
        known = set(rule_ids())
        unknown = [rule_id for rule_id, _ in _documented()
                   if rule_id not in known]
        assert not unknown, (
            f"docs/lint.md documents rule ids that repro/lint/rules.py "
            f"does not register: {unknown}")

    def test_no_duplicate_doc_sections(self):
        ids = [rule_id for rule_id, _ in _documented()]
        assert len(ids) == len(set(ids))

    def test_headings_carry_the_rule_name_slug(self):
        names = {cls.id: cls.name for cls in rule_classes()}
        for rule_id, rest in _documented():
            assert rest == names[rule_id], (
                f"docs/lint.md heading for {rule_id} says {rest!r}; the "
                f"registered rule name is {names[rule_id]!r}")
