"""docs-check: the metric catalog and docs/metrics.md stay in lock-step.

Run via ``make docs-check`` (or as part of the normal suite).
"""

import re
from pathlib import Path

from repro.experiments.common import measure_send
from repro.metrics import KINDS, METRICS, MetricsSession
from repro.schemes import DcsCtrlScheme

REPO_ROOT = Path(__file__).resolve().parent.parent
METRICS_MD = REPO_ROOT / "docs" / "metrics.md"

_HEADING = re.compile(r"^###\s+`([a-z0-9_.-]+)`", re.MULTILINE)


def _documented_names() -> list[str]:
    return _HEADING.findall(METRICS_MD.read_text(encoding="utf-8"))


class TestContract:
    def test_every_cataloged_metric_is_documented(self):
        documented = set(_documented_names())
        missing = set(METRICS) - documented
        assert not missing, (
            f"metrics cataloged in repro/metrics/catalog.py but missing "
            f"a '### `name`' section in docs/metrics.md: {sorted(missing)}")

    def test_every_documented_metric_is_cataloged(self):
        documented = _documented_names()
        unknown = [name for name in sorted(documented) if name not in METRICS]
        assert not unknown, (
            f"docs/metrics.md documents metrics that "
            f"repro/metrics/catalog.py does not register: {unknown}")

    def test_no_duplicate_doc_sections(self):
        documented = _documented_names()
        assert len(documented) == len(set(documented))

    def test_every_entry_has_a_valid_kind_and_one_line_description(self):
        for name, (kind, unit, description) in METRICS.items():
            assert kind in KINDS, name
            assert unit and "\n" not in unit, name
            assert description and "\n" not in description, name

    def test_live_run_emits_only_documented_metrics(self):
        # Belt and braces on top of the registry's runtime check: a real
        # end-to-end run registers nothing outside the documented catalog.
        documented = set(_documented_names())
        with MetricsSession(label="docscheck") as session:
            measure_send(DcsCtrlScheme, "md5")
        emitted = {metric.name for metric_set in session.sets
                   for metric in metric_set.series()}
        assert emitted  # the run actually registered something
        assert emitted <= documented
