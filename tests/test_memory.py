"""Tests for memory regions, sparse backing, DRAM timing and the allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AddressError, AllocationError
from repro.memory import (ChunkAllocator, FPGA_DDR3, HOST_DDR4, MemoryRegion,
                          SparseBytes)
from repro.units import KIB, MIB


class TestSparseBytes:
    def test_reads_zero_before_write(self):
        store = SparseBytes(1 * MIB)
        assert store.read(1000, 16) == bytes(16)

    def test_roundtrip(self):
        store = SparseBytes(1 * MIB)
        store.write(5000, b"hello world")
        assert store.read(5000, 11) == b"hello world"

    def test_write_across_page_boundary(self):
        store = SparseBytes(1 * MIB)
        data = bytes(range(200)) * 50  # 10000 bytes, spans pages
        store.write(4096 - 123, data)
        assert store.read(4096 - 123, len(data)) == data

    def test_out_of_bounds_rejected(self):
        store = SparseBytes(4096)
        with pytest.raises(AddressError):
            store.read(4090, 10)
        with pytest.raises(AddressError):
            store.write(4095, b"ab")

    def test_lazy_allocation(self):
        store = SparseBytes(1024 * MIB)
        assert store.resident_bytes == 0
        store.write(512 * MIB, b"x")
        assert store.resident_bytes == SparseBytes.PAGE

    @settings(max_examples=50, deadline=None)
    @given(offset=st.integers(min_value=0, max_value=60000),
           data=st.binary(min_size=1, max_size=5000))
    def test_roundtrip_property(self, offset, data):
        store = SparseBytes(64 * KIB + 5000)
        store.write(offset, data)
        assert store.read(offset, len(data)) == data


class TestMemoryRegion:
    def test_functional_roundtrip(self):
        region = MemoryRegion("dram", base=0x1000, size=4096, port="host")
        region.write(0x1100, b"abc")
        assert region.read(0x1100, 3) == b"abc"

    def test_absolute_addressing(self):
        region = MemoryRegion("dram", base=0x1000, size=4096, port="host")
        with pytest.raises(AddressError):
            region.read(0x0, 4)  # below base

    def test_contains(self):
        region = MemoryRegion("r", base=100, size=50, port="p")
        assert region.contains(100)
        assert region.contains(149)
        assert not region.contains(150)
        assert region.contains(100, 50)
        assert not region.contains(100, 51)

    def test_mmio_write_hook_replaces_storage(self):
        region = MemoryRegion("regs", base=0, size=4096, port="dev")
        seen = []
        region.on_mmio_write = lambda off, data: seen.append((off, data))
        region.write(0x10, b"\x01\x00\x00\x00")
        assert seen == [(0x10, b"\x01\x00\x00\x00")]
        # Data was consumed by the hook, not stored.
        assert region.read(0x10, 4) == bytes(4)

    def test_mmio_read_hook(self):
        region = MemoryRegion("regs", base=0, size=4096, port="dev")
        region.on_mmio_read = lambda off, length: bytes([off % 256] * length)
        assert region.read(8, 2) == b"\x08\x08"

    def test_sparse_region(self):
        region = MemoryRegion("flash", base=0, size=1024 * MIB, port="ssd",
                              sparse=True)
        region.write(100 * MIB, b"deep")
        assert region.read(100 * MIB, 4) == b"deep"

    def test_bad_geometry_rejected(self):
        with pytest.raises(AddressError):
            MemoryRegion("r", base=-1, size=10, port="p")
        with pytest.raises(AddressError):
            MemoryRegion("r", base=0, size=0, port="p")


class TestDramTiming:
    def test_duration_includes_latency(self):
        assert HOST_DDR4.duration(0) == HOST_DDR4.access_latency

    def test_duration_scales_with_size(self):
        one = HOST_DDR4.duration(1 * MIB)
        two = HOST_DDR4.duration(2 * MIB)
        assert two > one
        # doubling the payload roughly doubles the streaming part
        stream_one = one - HOST_DDR4.access_latency
        stream_two = two - HOST_DDR4.access_latency
        assert stream_two == pytest.approx(2 * stream_one, rel=0.01)

    def test_fpga_ddr3_slower_than_host(self):
        assert (FPGA_DDR3.bandwidth.bytes_per_sec
                < HOST_DDR4.bandwidth.bytes_per_sec)


class TestChunkAllocator:
    def test_alloc_free_cycle(self):
        alloc = ChunkAllocator(base=0x1000, size=64 * KIB * 8, chunk_size=64 * KIB)
        addr = alloc.alloc()
        assert addr == 0x1000
        assert alloc.allocated_chunks == 1
        alloc.free(addr)
        assert alloc.allocated_chunks == 0

    def test_exhaustion(self):
        alloc = ChunkAllocator(base=0, size=64 * KIB * 2, chunk_size=64 * KIB)
        alloc.alloc()
        alloc.alloc()
        with pytest.raises(AllocationError):
            alloc.alloc()

    def test_contiguous_allocation(self):
        alloc = ChunkAllocator(base=0, size=64 * KIB * 8, chunk_size=64 * KIB)
        addr = alloc.alloc_contiguous(4)
        assert addr == 0
        addr2 = alloc.alloc_contiguous(4)
        assert addr2 == 4 * 64 * KIB

    def test_contiguous_respects_fragmentation(self):
        alloc = ChunkAllocator(base=0, size=64 * KIB * 4, chunk_size=64 * KIB)
        a = alloc.alloc()   # chunk 0
        b = alloc.alloc()   # chunk 1
        alloc.alloc()       # chunk 2
        alloc.free(b)       # free chunk 1 -> free set {1, 3}
        with pytest.raises(AllocationError):
            alloc.alloc_contiguous(2)
        alloc.free(a)       # free set {0, 1, 3}
        assert alloc.alloc_contiguous(2) == 0

    def test_double_free_rejected(self):
        alloc = ChunkAllocator(base=0, size=64 * KIB * 2, chunk_size=64 * KIB)
        addr = alloc.alloc()
        alloc.free(addr)
        with pytest.raises(AllocationError):
            alloc.free(addr)

    def test_unaligned_free_rejected(self):
        alloc = ChunkAllocator(base=0, size=64 * KIB * 2, chunk_size=64 * KIB)
        alloc.alloc()
        with pytest.raises(AllocationError):
            alloc.free(17)

    def test_chunks_for(self):
        alloc = ChunkAllocator(base=0, size=64 * KIB * 8, chunk_size=64 * KIB)
        assert alloc.chunks_for(1) == 1
        assert alloc.chunks_for(64 * KIB) == 1
        assert alloc.chunks_for(64 * KIB + 1) == 2

    @settings(max_examples=30, deadline=None)
    @given(ops=st.lists(st.integers(min_value=1, max_value=4),
                        min_size=1, max_size=30))
    def test_alloc_free_never_leaks(self, ops):
        total = 32
        alloc = ChunkAllocator(base=0, size=64 * KIB * total, chunk_size=64 * KIB)
        held = []
        for count in ops:
            if alloc.free_chunks >= count:
                try:
                    held.append((alloc.alloc_contiguous(count), count))
                except AllocationError:
                    # Fragmented — legitimate; fall back to freeing.
                    if held:
                        addr, n = held.pop(0)
                        alloc.free(addr, n)
            elif held:
                addr, n = held.pop(0)
                alloc.free(addr, n)
        for addr, n in held:
            alloc.free(addr, n)
        assert alloc.free_chunks == total
        assert alloc.allocated_chunks == 0
