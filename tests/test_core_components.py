"""Unit tests for engine components: host interface, buffers, driver."""

import pytest

from repro.core.buffers import CHUNK_SIZE, EngineBuffers
from repro.core.command import (COMPLETION_SIZE, D2DCommand, D2DCompletion,
                                D2DKind, D2D_COMMAND_SIZE)
from repro.core.host_interface import (COMMAND_QUEUE_DEPTH, HostInterface)
from repro.errors import AllocationError, DeviceError, ProtocolError
from repro.memory import MemoryRegion
from repro.pcie import Fabric, LINK_GEN2_X8
from repro.schemes import Testbed
from repro.sim import Simulator
from repro.units import GIB, KIB, MIB


class TestEngineBuffers:
    def test_intermediate_alloc_free(self):
        buffers = EngineBuffers(ddr_base=0x1000_0000, size=64 * MIB,
                                recv_pool_chunks=16)
        addr = buffers.alloc_intermediate(100 * KIB)  # 2 chunks
        assert addr >= 0x1000_0000
        buffers.free_intermediate(addr, 100 * KIB)

    def test_recv_pool_is_carved_up_front(self):
        buffers = EngineBuffers(ddr_base=0, size=64 * MIB,
                                recv_pool_chunks=16)
        free_before = buffers.free_chunks
        chunk = buffers.take_recv_chunk()
        assert buffers.free_chunks == free_before  # pool, not allocator
        buffers.return_recv_chunk(chunk)

    def test_recv_pool_exhaustion(self):
        buffers = EngineBuffers(ddr_base=0, size=4 * MIB,
                                recv_pool_chunks=2)
        buffers.take_recv_chunk()
        buffers.take_recv_chunk()
        with pytest.raises(AllocationError):
            buffers.take_recv_chunk()

    def test_chunk_size_is_64k(self):
        assert CHUNK_SIZE == 64 * KIB

    def test_full_gigabyte_window(self):
        buffers = EngineBuffers(ddr_base=0xC000_0000)
        # 1 GiB / 64 KiB = 16384 chunks minus the 512-chunk recv pool.
        assert buffers.free_chunks == (1 * GIB // CHUNK_SIZE) - 512


class TestHostInterface:
    def _build(self, sim):
        fabric = Fabric(sim)
        fabric.add_port("host", LINK_GEN2_X8)
        fabric.add_port("engine", LINK_GEN2_X8)
        fabric.add_region(MemoryRegion("host-dram", base=0, size=16 * MIB,
                                       port="host"))
        bar = fabric.add_region(MemoryRegion("bar", base=0x8000_0000,
                                             size=64 * KIB, port="engine"))
        fabric.register_msi_handler("host", lambda src, vec: None)
        received = []
        iface = HostInterface(sim, bar, completion_ring_addr=0x1000,
                              engine_port="engine", fabric=fabric,
                              on_command=received.append)
        return fabric, iface, received

    def test_command_parses_after_doorbell(self):
        sim = Simulator()
        fabric, iface, received = self._build(sim)
        cmd = D2DCommand(d2d_id=5, kind=D2DKind.SSD_TO_NIC, src=1, dst=2,
                         length=4096)

        def submit(sim):
            yield from fabric.mmio_write("host", iface.command_slot_addr(0),
                                         cmd.pack())
            yield from fabric.mmio_write(
                "host", iface.doorbell_addr, (1).to_bytes(4, "little"))
            yield sim.timeout(10_000)

        sim.run(until=sim.process(submit(sim)))
        assert received == [cmd]
        assert iface.commands_received == 1

    def test_completion_reaches_host_ring_with_interrupt(self):
        sim = Simulator()
        fabric, iface, _ = self._build(sim)
        hits = []
        fabric._msi_handlers["host"] = lambda src, vec: hits.append(src)
        iface.post_completion(D2DCompletion(d2d_id=9, status=0))
        sim.run()
        raw = fabric.peek(0x1000, COMPLETION_SIZE)
        assert D2DCompletion.unpack(raw).d2d_id == 9
        assert hits == ["engine"]
        assert iface.interrupts_raised == 1

    def test_queue_overrun_detected(self):
        sim = Simulator()
        fabric, iface, _ = self._build(sim)

        def flood(sim):
            yield from fabric.mmio_write(
                "host", iface.doorbell_addr,
                (COMMAND_QUEUE_DEPTH + 1).to_bytes(4, "little"))

        proc = sim.process(flood(sim))
        sim.run()
        assert not proc.ok
        with pytest.raises(ProtocolError, match="overrun"):
            _ = proc.value

    def test_stale_doorbell_ignored(self):
        sim = Simulator()
        fabric, iface, received = self._build(sim)
        cmd = D2DCommand(d2d_id=1, kind=D2DKind.SSD_TO_NIC, src=0, dst=0,
                         length=1)

        def submit(sim):
            for i in range(3):
                yield from fabric.mmio_write(
                    "host", iface.command_slot_addr(i), cmd.pack())
            yield from fabric.mmio_write(
                "host", iface.doorbell_addr, (3).to_bytes(4, "little"))
            # A late/duplicate announcement of an older tail.
            yield from fabric.mmio_write(
                "host", iface.doorbell_addr, (2).to_bytes(4, "little"))
            yield sim.timeout(10_000)

        sim.run(until=sim.process(submit(sim)))
        assert len(received) == 3  # nothing replayed, nothing lost

    def test_slot_addresses_wrap(self):
        sim = Simulator()
        _, iface, _ = self._build(sim)
        assert (iface.command_slot_addr(0)
                == iface.command_slot_addr(COMMAND_QUEUE_DEPTH))
        assert (iface.command_slot_addr(1) - iface.command_slot_addr(0)
                == D2D_COMMAND_SIZE)


class TestDriverEdgeCases:
    def test_multi_extent_file_rejected(self):
        """HDC commands need contiguous extents (engine limitation)."""
        tb = Testbed(seed=61)
        # Create two files so the second one's extents are contiguous
        # but a manual two-extent file triggers the driver check.
        tb.node0.host.install_file("a.dat", bytes(8 * KIB))
        fs = tb.node0.host.fs
        # Forge a fragmented file by stitching two separate files
        # (inside volume 0's extent allocator).
        fs.create("frag.dat", 4 * KIB, volume=0)
        fs.create("spacer.dat", 4 * KIB, volume=0)
        vol0 = fs.volumes[0]
        vol0._files["frag.dat"].append(vol0._files["spacer.dat"][0])
        vol0._sizes["frag.dat"] = 8 * KIB
        buf = tb.node0.host.alloc_buffer(8 * KIB)
        fd = tb.node0.library.open_file("frag.dat")

        def body(sim):
            yield from tb.node0.library.hdc_readfile(fd, 0, 8 * KIB, buf)

        proc = tb.sim.process(body(tb.sim))
        tb.sim.run()
        assert not proc.ok
        with pytest.raises(DeviceError, match="contiguous"):
            _ = proc.value

    def test_concurrent_submissions_complete(self):
        """Many in-flight ioctls must not corrupt the command queue."""
        tb = Testbed(seed=62)
        lib = tb.node0.library
        n = 24
        for i in range(n):
            tb.node0.host.install_file(f"c{i}.dat", bytes(4 * KIB))
        fds = [lib.open_file(f"c{i}.dat") for i in range(n)]
        bufs = [tb.node0.host.alloc_buffer(4 * KIB) for _ in range(n)]
        procs = []
        for i in range(n):
            def body(sim, i=i):
                return (yield from lib.hdc_readfile(fds[i], 0, 4 * KIB,
                                                    bufs[i]))
            procs.append(tb.sim.process(body(tb.sim)))
        for proc in procs:
            completion = tb.sim.run(until=proc)
            assert completion.ok

    def test_engine_flow_ids_are_stable(self):
        tb = Testbed(seed=63)
        conn1 = tb.connect_offloaded()
        conn2 = tb.connect_offloaded()
        drv = tb.node0.driver
        assert drv.flow_id(conn1.flow0) != drv.flow_id(conn2.flow0)
        assert drv.flow_id(conn1.flow0) == drv.flow_id(conn1.flow0)
