"""Tests for the structured tracing subsystem (repro.trace)."""

import json

import pytest

from repro.errors import TraceError
from repro.experiments.common import measure_send
from repro.schemes import DcsCtrlScheme, SwOptScheme
from repro.sim import Simulator
from repro.trace import (EVENT_TYPES, TraceSession, Tracer, current_session,
                         jsonl_lines, last_breakdown, request_breakdowns,
                         to_chrome, trace_section, tracer_for_new_sim)


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def tracer(sim):
    return Tracer(sim, label="test")


class TestTracer:
    def test_span_records_interval(self, sim, tracer):
        def body(s):
            span = tracer.begin("proc.run", track="t", name="work", n=1)
            yield s.timeout(100)
            span.end(done=True)

        sim.process(body(sim))
        sim.run()
        (event,) = tracer.events
        assert event.type == "proc.run"
        assert event.start == 0
        assert event.duration == 100
        assert event.args == {"n": 1, "done": True}

    def test_instant_has_no_duration(self, sim, tracer):
        event = tracer.instant("mark", track="t", name="here", k="v")
        assert event.duration is None
        assert event.args == {"k": "v"}

    def test_complete_backdates(self, sim, tracer):
        def body(s):
            yield s.timeout(50)
            tracer.complete("phase", track="t", start=10, duration=30,
                            name="seg")

        sim.process(body(sim))
        sim.run()
        (event,) = tracer.events
        assert (event.start, event.duration) == (10, 30)

    def test_complete_rejects_negative_duration(self, tracer):
        with pytest.raises(TraceError):
            tracer.complete("phase", track="t", start=0, duration=-1)

    def test_unregistered_type_rejected(self, tracer):
        with pytest.raises(TraceError):
            tracer.begin("not.a.type", track="t")  # simlint: disable=PLANE002
        with pytest.raises(TraceError):
            tracer.instant("bogus", track="t")  # simlint: disable=PLANE002

    def test_parent_links(self, sim, tracer):
        root = tracer.begin("request", track="t")
        child = tracer.instant("mark", track="t", parent=root)
        assert child.parent_id == root.id
        root.end()

    def test_double_end_is_idempotent(self, sim, tracer):
        span = tracer.begin("proc.run", track="t")
        assert span.end() is not None
        assert span.end() is None
        assert len(tracer.events) == 1

    def test_finalize_marks_unterminated(self, sim, tracer):
        tracer.begin("proc.run", track="t", name="loop")
        tracer.finalize()
        (event,) = tracer.events
        assert event.args["unterminated"] is True


class TestSession:
    def test_simulators_get_tracers_only_while_installed(self):
        assert Simulator().tracer is None
        with TraceSession(label="s") as session:
            sim = Simulator()
            assert sim.tracer is not None
            assert sim.tracer in session.tracers
        assert Simulator().tracer is None
        assert current_session() is None

    def test_nested_install_rejected(self):
        with TraceSession():
            with pytest.raises(TraceError):
                TraceSession().install()

    def test_trace_section_labels(self):
        with TraceSession(label="outer") as session:
            with trace_section("inner"):
                sim = Simulator()
            sim2 = Simulator()
        assert sim.tracer.label.startswith("inner/")
        assert sim2.tracer.label.startswith("outer/")
        assert session is not current_session()

    def test_trace_section_noop_when_off(self):
        with trace_section("ignored"):
            assert Simulator().tracer is None
        assert tracer_for_new_sim(Simulator()) is None


class TestExport:
    @pytest.fixture
    def session(self):
        with TraceSession(label="exp") as session:
            measure_send(DcsCtrlScheme, "md5")
        return session

    def test_chrome_document_shape(self, session):
        doc = to_chrome(session)
        events = doc["traceEvents"]
        assert any(e["ph"] == "M" and e["name"] == "process_name"
                   for e in events)
        for e in events:
            if e["ph"] == "X":
                assert e["dur"] >= 0
                assert e["cat"] in EVENT_TYPES
            elif e["ph"] == "i":
                assert "dur" not in e
                assert e["cat"] in EVENT_TYPES
        # pid/tid resolve through metadata to stable names
        names = {(e["pid"], e["tid"]): e["args"]["name"]
                 for e in events if e["ph"] == "M"
                 and e["name"] == "thread_name"}
        assert "requests" in set(names.values())

    def test_jsonl_records(self, session):
        lines = list(jsonl_lines(session))
        assert lines
        for line in lines[:50]:
            rec = json.loads(line)
            assert set(rec) == {"id", "parent_id", "type", "name", "pid",
                                "sim", "track", "ts_ns", "dur_ns", "args"}
            assert rec["type"] in EVENT_TYPES

    def test_every_emitted_type_is_registered(self, session):
        for tracer in session.tracers:
            for event in tracer.events:
                assert event.type in EVENT_TYPES


class TestBreakdown:
    def _traced_measure(self, scheme_cls, processing):
        with TraceSession(label="bd") as session:
            result = measure_send(scheme_cls, processing)
        tracer = next(t for t in session.tracers
                      if any(e.type == "request" for e in t.events))
        return result, tracer

    @pytest.mark.parametrize("scheme_cls,processing", [
        (DcsCtrlScheme, None),
        (DcsCtrlScheme, "md5"),
        (SwOptScheme, "md5"),
    ])
    def test_span_breakdown_matches_latency_trace(self, scheme_cls,
                                                  processing):
        # The acceptance criterion: the span-derived decomposition must
        # agree with LatencyTrace.segments within 1 ns per category.
        result, tracer = self._traced_measure(scheme_cls, processing)
        breakdown = last_breakdown(tracer)
        assert breakdown is not None
        assert set(breakdown.categories) == set(result.trace.segments)
        for category, expected in result.trace.segments.items():
            assert abs(breakdown.category_ns(category) - expected) <= 1
        assert breakdown.total_ns == result.trace.total

    def test_one_breakdown_per_request(self):
        _, tracer = self._traced_measure(DcsCtrlScheme, None)
        breakdowns = request_breakdowns(tracer)
        roots = [e for e in tracer.events if e.type == "request"]
        assert len(breakdowns) == len(roots)  # warmup + measurement
        assert all(bd.attributed_ns > 0 for bd in breakdowns)

    def test_render_mentions_scheme_and_categories(self):
        result, tracer = self._traced_measure(DcsCtrlScheme, None)
        text = last_breakdown(tracer).render()
        assert "dcs-ctrl:send" in text
        top = max(result.trace.segments, key=result.trace.segments.get)
        assert top in text


class TestBusyTrackerCrossCheck:
    def test_phase_events_cover_cpu_categories(self):
        # Span-derived totals and BusyTracker agree on what the host
        # CPU did: every software category the tracker bills during the
        # measured request also appears as a phase event, with at least
        # the tracker's busy time attributed to it (phases also cover
        # waiting, so >=).  The engine-offloaded path ends the run with
        # the request itself, so no CPU is billed outside the trace.
        from repro.schemes import Testbed

        with TraceSession(label="xc"):
            from repro.experiments.common import _run_one
            tb = Testbed(seed=5)
            scheme = DcsCtrlScheme(tb)
            data = bytes(range(256)) * 16
            tb.node0.host.cpu.tracker.reset_window()
            result = _run_one(tb, scheme, data, "m.dat", None)
        busy = {k: v for k, v in
                tb.node0.host.cpu.tracker.by_category().items() if v > 0}
        assert busy, "measurement billed no CPU at all"
        segments = result.trace.segments
        for category, busy_ns in busy.items():
            assert segments.get(category, 0) >= busy_ns, category
