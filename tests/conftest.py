"""Shared fixtures: a minimal fabric with host memory for device tests."""

import pytest

from repro.memory import MemoryRegion
from repro.pcie import Fabric, LINK_GEN2_X8
from repro.sim import Simulator
from repro.units import MIB

HOST_DRAM_BASE = 0x0000_0000
HOST_DRAM_SIZE = 256 * MIB

SSD_BAR = 0x8000_0000
NIC_BAR = 0x8100_0000
NIC2_BAR = 0x8200_0000
GPU_BAR = 0x9000_0000
ENGINE_BAR = 0xA000_0000
ENGINE_DDR_BASE = 0xC000_0000


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def fabric(sim):
    """A fabric with a host port and host DRAM mapped at 0."""
    fab = Fabric(sim)
    fab.add_port("host", LINK_GEN2_X8)
    fab.add_region(MemoryRegion("host-dram", base=HOST_DRAM_BASE,
                                size=HOST_DRAM_SIZE, port="host",
                                sparse=True))
    fab.register_msi_handler("host", lambda src, vec: None)
    return fab
