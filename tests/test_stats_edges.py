"""Edge cases of the measurement helpers in ``repro.sim.stats``."""

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import Simulator
from repro.sim.stats import BusyTracker, Histogram, Meter


def _advance(sim: Simulator, ns: int) -> None:
    def body(s):
        yield s.timeout(ns)

    sim.process(body(sim))
    sim.run()


class TestBusyTrackerEdges:
    def test_reset_window_at_time_zero_is_safe(self):
        sim = Simulator()
        tracker = BusyTracker(sim)
        tracker.reset_window()  # now == window start == 0
        assert tracker.window() == 0
        assert tracker.utilization() == 0.0
        assert tracker.utilization_by_category() == {}

    def test_reset_window_keeps_categories_at_zero(self):
        sim = Simulator()
        tracker = BusyTracker(sim)
        tracker.add("filesystem", 100)
        _advance(sim, 1000)
        tracker.reset_window()
        assert tracker.total("filesystem") == 0
        assert "filesystem" in tracker.by_category()
        # A zero-width window reports 0.0 for the stable category set.
        assert tracker.utilization_by_category() == {"filesystem": 0.0}

    def test_utilization_with_parallelism(self):
        sim = Simulator()
        tracker = BusyTracker(sim)
        tracker.add("network", 400)
        _advance(sim, 1000)
        assert tracker.utilization("network") == pytest.approx(0.4)
        # Four cores: the same busy time is a quarter of the pool.
        assert tracker.utilization("network",
                                   parallelism=4) == pytest.approx(0.1)
        by_cat = tracker.utilization_by_category(parallelism=4)
        assert by_cat == {"network": pytest.approx(0.1)}

    def test_negative_duration_rejected(self):
        tracker = BusyTracker(Simulator())
        with pytest.raises(SimulationError, match="negative"):
            tracker.add("network", -1)


class TestHistogramEdges:
    def test_empty_histogram_rank_queries_raise(self):
        hist = Histogram()
        with pytest.raises(SimulationError, match="empty"):
            hist.percentile(50)
        with pytest.raises(SimulationError, match="empty"):
            hist.min()
        with pytest.raises(SimulationError, match="empty"):
            hist.max()
        # ...but the moment aggregates degrade gracefully.
        assert hist.mean() == 0.0
        assert hist.stdev() == 0.0
        assert hist.count == 0

    def test_percentile_bounds_checked(self):
        hist = Histogram()
        hist.add(1.0)
        with pytest.raises(ValueError, match="percentile"):
            hist.percentile(101)
        with pytest.raises(ValueError, match="percentile"):
            hist.percentile(-1)

    def test_sorted_cache_invalidated_by_add(self):
        hist = Histogram()
        hist.extend([5.0, 1.0, 3.0])
        assert hist.percentile(50) == 3.0  # populates the cache
        assert hist.min() == 1.0
        hist.add(0.5)                      # must invalidate it
        assert hist.min() == 0.5
        assert hist.percentile(100) == 5.0

    def test_sorted_cache_invalidated_by_extend(self):
        hist = Histogram()
        hist.add(10.0)
        assert hist.max() == 10.0
        hist.extend([20.0, 30.0])
        assert hist.max() == 30.0
        assert hist.percentile(0) == 10.0

    def test_percentile_nearest_rank_endpoints(self):
        hist = Histogram()
        hist.extend(float(v) for v in range(1, 11))
        assert hist.percentile(0) == 1.0
        assert hist.percentile(50) == 5.0
        assert hist.percentile(100) == 10.0


class TestMeterEdges:
    def test_gbps_rounding(self):
        sim = Simulator()
        meter = Meter(sim)
        meter.add(125_000)  # bytes over 1 ms = 1 Gbps exactly
        _advance(sim, 1_000_000)
        assert meter.rate_per_sec() == pytest.approx(125_000_000.0)
        assert meter.gbps() == pytest.approx(1.0)

    def test_zero_window_rates_are_zero(self):
        sim = Simulator()
        meter = Meter(sim)
        meter.add(4096)
        assert meter.rate_per_sec() == 0.0  # now == window start
        assert meter.gbps() == 0.0

    def test_reset_window_clears_count(self):
        sim = Simulator()
        meter = Meter(sim)
        meter.add(100)
        _advance(sim, 1000)
        meter.reset_window()
        assert meter.count == 0
        assert meter.rate_per_sec() == 0.0

    def test_negative_amount_rejected(self):
        meter = Meter(Simulator())
        with pytest.raises(SimulationError, match="negative"):
            meter.add(-5)
