"""Tests for the NVMe SSD model: command formats, PRPs, rings, the device."""

import pytest

from repro.devices.nvme import (Completion, CompletionPoller, FlashStore,
                                INTEL_750_400GB, NvmeCommand, NvmeSsd,
                                OP_FLUSH, OP_READ, OP_WRITE, QueuePair,
                                prp_pages)
from repro.devices.nvme.commands import (LBA_SIZE, prp_fields,
                                         unpack_prp_list)
from repro.errors import DeviceError, ProtocolError
from repro.units import KIB, MIB, PAGE, usec

from tests.conftest import SSD_BAR

SQ_ADDR = 0x10_0000      # rings live in host DRAM for these tests
CQ_ADDR = 0x11_0000
DATA_ADDR = 0x20_0000
PRP_LIST_ADDR = 0x12_0000
DEPTH = 64


class TestCommandFormats:
    def test_sqe_roundtrip(self):
        cmd = NvmeCommand(opcode=OP_READ, cid=7, nsid=1, prp1=0x1000,
                          prp2=0x2000, slba=123, nlb=15)
        raw = cmd.pack()
        assert len(raw) == 64
        assert NvmeCommand.unpack(raw) == cmd

    def test_cqe_roundtrip(self):
        cqe = Completion(cid=3, sq_head=10, status=0, phase=1, sq_id=1)
        raw = cqe.pack()
        assert len(raw) == 16
        parsed = Completion.unpack(raw)
        assert parsed.cid == 3
        assert parsed.phase == 1
        assert parsed.ok

    def test_cqe_status_and_phase_packing(self):
        cqe = Completion(cid=1, sq_head=0, status=2, phase=0)
        parsed = Completion.unpack(cqe.pack())
        assert parsed.status == 2
        assert parsed.phase == 0
        assert not parsed.ok

    def test_byte_length_is_one_based(self):
        cmd = NvmeCommand(opcode=OP_READ, cid=0, nsid=1, prp1=0, prp2=0,
                          slba=0, nlb=0)
        assert cmd.byte_length == LBA_SIZE

    def test_bad_sqe_size_rejected(self):
        with pytest.raises(ProtocolError):
            NvmeCommand.unpack(b"\x00" * 63)


class TestPrp:
    def test_single_page(self):
        assert prp_pages(0x1000, 4096) == [0x1000]

    def test_offset_first_page(self):
        pages = prp_pages(0x1800, 4096)
        assert pages == [0x1800, 0x2000]

    def test_multi_page(self):
        pages = prp_pages(0x1000, 16 * KIB)
        assert pages == [0x1000, 0x2000, 0x3000, 0x4000]

    def test_prp_fields_one_two_many(self):
        p1, p2, blob = prp_fields([0xA000])
        assert (p1, p2, blob) == (0xA000, 0, b"")
        p1, p2, blob = prp_fields([0xA000, 0xB000])
        assert (p1, p2, blob) == (0xA000, 0xB000, b"")
        p1, p2, blob = prp_fields([0xA000, 0xB000, 0xC000])
        assert p1 == 0xA000 and p2 == 0
        assert unpack_prp_list(blob) == [0xB000, 0xC000]

    def test_zero_length_rejected(self):
        with pytest.raises(ProtocolError):
            prp_pages(0x1000, 0)


@pytest.fixture
def ssd(sim, fabric):
    return NvmeSsd(sim, fabric, "ssd", bar_base=SSD_BAR)


def _submit(fabric, qp, command, initiator="host"):
    """Push one SQE and ring the doorbell (as a process)."""
    qp.push(command)
    return qp.ring_sq(initiator)


def _read_cmd(qp, slba, nbytes, buf_addr, fabric, prp_list_addr=PRP_LIST_ADDR):
    pages = prp_pages(buf_addr, nbytes)
    prp1, prp2, blob = prp_fields(pages)
    if blob:
        fabric.poke(prp_list_addr, blob)
        prp2 = prp_list_addr
    return NvmeCommand(opcode=OP_READ, cid=qp.allocate_cid(), nsid=1,
                       prp1=prp1, prp2=prp2, slba=slba,
                       nlb=nbytes // LBA_SIZE - 1)


class TestNvmeSsd:
    def test_read_4k(self, sim, fabric, ssd):
        ssd.flash.write_blocks(5, b"\xab" * LBA_SIZE)
        qp = ssd.create_io_queue(1, SQ_ADDR, CQ_ADDR, DEPTH)
        poller = CompletionPoller(sim, qp, "host")

        def body(sim):
            cmd = _read_cmd(qp, 5, LBA_SIZE, DATA_ADDR, fabric)
            yield from _submit(fabric, qp, cmd)
            cqe = yield from poller.wait(cmd.cid)
            return cqe

        cqe = sim.run(until=sim.process(body(sim)))
        assert cqe.ok
        assert fabric.peek(DATA_ADDR, LBA_SIZE) == b"\xab" * LBA_SIZE

    def test_read_latency_in_device_range(self, sim, fabric, ssd):
        """A 4 KiB read should land in the ~11-25 us envelope."""
        ssd.flash.write_blocks(0, bytes(LBA_SIZE))
        qp = ssd.create_io_queue(1, SQ_ADDR, CQ_ADDR, DEPTH)
        poller = CompletionPoller(sim, qp, "host")

        def body(sim):
            cmd = _read_cmd(qp, 0, LBA_SIZE, DATA_ADDR, fabric)
            yield from _submit(fabric, qp, cmd)
            yield from poller.wait(cmd.cid)

        sim.run(until=sim.process(body(sim)))
        assert usec(11) < sim.now < usec(25)

    def test_write_then_read_roundtrip(self, sim, fabric, ssd):
        qp = ssd.create_io_queue(1, SQ_ADDR, CQ_ADDR, DEPTH)
        poller = CompletionPoller(sim, qp, "host")
        payload = bytes(range(256)) * 16  # 4096 bytes
        fabric.poke(DATA_ADDR, payload)

        def body(sim):
            wcmd = NvmeCommand(opcode=OP_WRITE, cid=qp.allocate_cid(), nsid=1,
                               prp1=DATA_ADDR, prp2=0, slba=9, nlb=0)
            yield from _submit(fabric, qp, wcmd)
            yield from poller.wait(wcmd.cid)
            rcmd = _read_cmd(qp, 9, LBA_SIZE, DATA_ADDR + 64 * KIB, fabric)
            yield from _submit(fabric, qp, rcmd)
            yield from poller.wait(rcmd.cid)

        sim.run(until=sim.process(body(sim)))
        assert fabric.peek(DATA_ADDR + 64 * KIB, LBA_SIZE) == payload
        assert ssd.flash.read_blocks(9, 1) == payload

    def test_multi_page_read_uses_prp_list(self, sim, fabric, ssd):
        size = 32 * KIB
        pattern = bytes(range(256)) * (size // 256)
        ssd.flash.write_blocks(100, pattern)
        qp = ssd.create_io_queue(1, SQ_ADDR, CQ_ADDR, DEPTH)
        poller = CompletionPoller(sim, qp, "host")

        def body(sim):
            cmd = _read_cmd(qp, 100, size, DATA_ADDR, fabric)
            assert cmd.prp2 == PRP_LIST_ADDR  # really took the list path
            yield from _submit(fabric, qp, cmd)
            yield from poller.wait(cmd.cid)

        sim.run(until=sim.process(body(sim)))
        assert fabric.peek(DATA_ADDR, size) == pattern

    def test_flush_completes(self, sim, fabric, ssd):
        qp = ssd.create_io_queue(1, SQ_ADDR, CQ_ADDR, DEPTH)
        poller = CompletionPoller(sim, qp, "host")

        def body(sim):
            cmd = NvmeCommand(opcode=OP_FLUSH, cid=qp.allocate_cid(), nsid=1,
                              prp1=0, prp2=0, slba=0, nlb=0)
            yield from _submit(fabric, qp, cmd)
            cqe = yield from poller.wait(cmd.cid)
            return cqe

        cqe = sim.run(until=sim.process(body(sim)))
        assert cqe.ok

    def test_invalid_opcode_fails_status(self, sim, fabric, ssd):
        qp = ssd.create_io_queue(1, SQ_ADDR, CQ_ADDR, DEPTH)
        poller = CompletionPoller(sim, qp, "host")

        def body(sim):
            cmd = NvmeCommand(opcode=0x7F, cid=qp.allocate_cid(), nsid=1,
                              prp1=DATA_ADDR, prp2=0, slba=0, nlb=0)
            yield from _submit(fabric, qp, cmd)
            cqe = yield from poller.wait(cmd.cid)
            return cqe

        cqe = sim.run(until=sim.process(body(sim)))
        assert not cqe.ok

    def test_msi_on_interrupt_queue(self, sim, fabric, ssd):
        hits = []
        fabric.register_msi_handler("host", lambda src, vec: hits.append(vec))
        qp = ssd.create_io_queue(1, SQ_ADDR, CQ_ADDR, DEPTH, interrupt=True)
        poller = CompletionPoller(sim, qp, "host")
        ssd.flash.write_blocks(0, bytes(LBA_SIZE))

        def body(sim):
            cmd = _read_cmd(qp, 0, LBA_SIZE, DATA_ADDR, fabric)
            yield from _submit(fabric, qp, cmd)
            yield from poller.wait(cmd.cid)

        sim.run(until=sim.process(body(sim)))
        assert hits == [1]

    def test_queue_full_detected(self, sim, fabric, ssd):
        qp = ssd.create_io_queue(1, SQ_ADDR, CQ_ADDR, depth=4)
        for _ in range(3):
            qp.push(NvmeCommand(opcode=OP_FLUSH, cid=qp.allocate_cid(),
                                nsid=1, prp1=0, prp2=0, slba=0, nlb=0))
        with pytest.raises(ProtocolError, match="full"):
            qp.push(NvmeCommand(opcode=OP_FLUSH, cid=qp.allocate_cid(),
                                nsid=1, prp1=0, prp2=0, slba=0, nlb=0))

    def test_duplicate_queue_rejected(self, sim, fabric, ssd):
        ssd.create_io_queue(1, SQ_ADDR, CQ_ADDR, DEPTH)
        with pytest.raises(DeviceError):
            ssd.create_io_queue(1, SQ_ADDR, CQ_ADDR, DEPTH)

    def test_oversized_transfer_fails_status(self, sim, fabric, ssd):
        qp = ssd.create_io_queue(1, SQ_ADDR, CQ_ADDR, DEPTH)
        poller = CompletionPoller(sim, qp, "host")

        def body(sim):
            nlb = (INTEL_750_400GB.max_transfer // LBA_SIZE) + 1
            cmd = NvmeCommand(opcode=OP_READ, cid=qp.allocate_cid(), nsid=1,
                              prp1=DATA_ADDR, prp2=0, slba=0, nlb=nlb)
            yield from _submit(fabric, qp, cmd)
            cqe = yield from poller.wait(cmd.cid)
            return cqe

        cqe = sim.run(until=sim.process(body(sim)))
        assert not cqe.ok

    def test_pipelined_commands_overlap(self, sim, fabric, ssd):
        """Two queued reads should take less than 2x one read."""
        ssd.flash.write_blocks(0, bytes(2 * LBA_SIZE))
        qp = ssd.create_io_queue(1, SQ_ADDR, CQ_ADDR, DEPTH)

        def one(sim, fabric, ssd):
            q = ssd.create_io_queue(2, SQ_ADDR + 0x8000, CQ_ADDR + 0x8000,
                                    DEPTH)
            poller = CompletionPoller(sim, q, "host")
            cmd = _read_cmd(q, 0, LBA_SIZE, DATA_ADDR, fabric)
            yield from _submit(fabric, q, cmd)
            yield from poller.wait(cmd.cid)
            return sim.now

        single = sim.process(one(sim, fabric, ssd))
        single_time = sim.run(until=single)

        def two(sim, fabric, ssd, qp):
            poller = CompletionPoller(sim, qp, "host")
            c1 = _read_cmd(qp, 0, LBA_SIZE, DATA_ADDR, fabric)
            c2 = _read_cmd(qp, 1, LBA_SIZE, DATA_ADDR + PAGE, fabric,
                           prp_list_addr=PRP_LIST_ADDR + PAGE)
            start = sim.now
            qp.push(c1)
            qp.push(c2)
            yield from qp.ring_sq("host")
            yield from poller.wait(c1.cid)
            yield from poller.wait(c2.cid)
            return sim.now - start

        pair_time = sim.run(until=sim.process(two(sim, fabric, ssd, qp)))
        assert pair_time < 2 * single_time


class TestFlashStore:
    def test_out_of_range_rejected(self):
        store = FlashStore(capacity_bytes=16 * LBA_SIZE)
        with pytest.raises(DeviceError):
            store.read_blocks(15, 2)
        with pytest.raises(DeviceError):
            store.read_blocks(-1, 1)

    def test_unaligned_write_rejected(self):
        store = FlashStore(capacity_bytes=16 * LBA_SIZE)
        with pytest.raises(DeviceError):
            store.write_blocks(0, b"tiny")

    def test_sparse_capacity(self):
        store = FlashStore(capacity_bytes=1024 * MIB)
        store.write_blocks(1000, b"\x01" * LBA_SIZE)
        assert store.read_blocks(1000, 1) == b"\x01" * LBA_SIZE
        assert store.read_blocks(0, 1) == bytes(LBA_SIZE)
