"""Tests for headers, frames, LSO segmentation, flows and the wire."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError, SimulationError
from repro.net import (Frame, FlowTable, HEADER_LEN, MTU, TCP_MSS,
                       EthernetHeader, Ipv4Header, TcpEndpoint, TcpFlow,
                       TcpHeader, Wire, build_frame, checksum16, parse_frame,
                       segment_payload, wire_bytes)
from repro.sim import Simulator
from repro.units import SEC, gbps

ETH = EthernetHeader(dst_mac="02:00:00:00:00:02", src_mac="02:00:00:00:00:01")
A = TcpEndpoint(mac="02:00:00:00:00:01", ip="10.0.0.1", port=5000)
B = TcpEndpoint(mac="02:00:00:00:00:02", ip="10.0.0.2", port=6000)


def make_frame(payload=b"hello", seq=1):
    tcp = TcpHeader(src_port=A.port, dst_port=B.port, seq=seq)
    return build_frame(ETH, A.ip, B.ip, tcp, payload)


class TestChecksum:
    def test_known_vector(self):
        # RFC 1071 example: checksum of this sequence is 0xddf2.
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        assert checksum16(data) == 0xFFFF - ((0x0001 + 0xF203 + 0xF4F5 + 0xF6F7) % 0xFFFF)

    def test_checksum_of_data_plus_checksum_is_zero(self):
        data = b"some header bytes!"
        csum = checksum16(data)
        import struct
        assert checksum16(data + struct.pack("!H", csum)) == 0

    def test_odd_length_padded(self):
        assert checksum16(b"\xff") == checksum16(b"\xff\x00")


class TestHeaders:
    def test_eth_roundtrip(self):
        packed = ETH.pack()
        assert len(packed) == 14
        assert EthernetHeader.unpack(packed) == ETH

    def test_ipv4_roundtrip(self):
        header = Ipv4Header(src_ip="192.168.1.10", dst_ip="10.0.0.2",
                            total_length=1500, ident=7)
        packed = header.pack()
        assert len(packed) == 20
        parsed = Ipv4Header.unpack(packed)
        assert parsed.src_ip == "192.168.1.10"
        assert parsed.dst_ip == "10.0.0.2"
        assert parsed.total_length == 1500

    def test_ipv4_checksum_detected(self):
        packed = bytearray(Ipv4Header("1.2.3.4", "5.6.7.8", 100).pack())
        packed[8] ^= 0xFF  # corrupt TTL
        with pytest.raises(ProtocolError, match="checksum"):
            Ipv4Header.unpack(bytes(packed))

    def test_tcp_roundtrip(self):
        tcp = TcpHeader(src_port=80, dst_port=443, seq=12345, ack=999)
        packed = tcp.pack("1.1.1.1", "2.2.2.2", b"payload")
        parsed = TcpHeader.unpack(packed)
        assert (parsed.src_port, parsed.dst_port) == (80, 443)
        assert (parsed.seq, parsed.ack) == (12345, 999)

    def test_tcp_checksum_covers_payload(self):
        tcp = TcpHeader(src_port=80, dst_port=443, seq=1)
        packed = tcp.pack("1.1.1.1", "2.2.2.2", b"payload")
        assert TcpHeader.verify_checksum("1.1.1.1", "2.2.2.2",
                                         packed + b"payload")
        assert not TcpHeader.verify_checksum("1.1.1.1", "2.2.2.2",
                                             packed + b"tampered")

    def test_bad_mac_rejected(self):
        with pytest.raises(ProtocolError):
            EthernetHeader(dst_mac="nonsense", src_mac="02:00:00:00:00:01").pack()


class TestFrames:
    def test_build_parse_roundtrip(self):
        frame = parse_frame(make_frame(b"hello world"))
        assert frame.payload == b"hello world"
        assert frame.ip.src_ip == A.ip
        assert frame.tcp.dst_port == B.port

    def test_corrupt_payload_detected(self):
        raw = bytearray(make_frame(b"hello world"))
        raw[-1] ^= 0xFF
        with pytest.raises(ProtocolError, match="checksum"):
            parse_frame(bytes(raw))

    def test_header_len_is_54(self):
        assert HEADER_LEN == 54
        assert len(make_frame(b"")) == 54

    def test_wire_bytes_adds_overhead(self):
        assert wire_bytes(1514) == 1538
        assert wire_bytes(10) == 60 + 24  # runt padding

    @settings(max_examples=30, deadline=None)
    @given(payload=st.binary(min_size=0, max_size=3000))
    def test_roundtrip_property(self, payload):
        tcp = TcpHeader(src_port=A.port, dst_port=B.port, seq=77)
        if len(payload) > TCP_MSS:
            frames = segment_payload(ETH, A.ip, B.ip, tcp, payload)
            got = b"".join(parse_frame(f).payload for f in frames)
        else:
            got = parse_frame(build_frame(ETH, A.ip, B.ip, tcp, payload)).payload
        assert got == payload


class TestSegmentation:
    def test_small_payload_single_frame(self):
        tcp = TcpHeader(src_port=1, dst_port=2, seq=100)
        frames = segment_payload(ETH, A.ip, B.ip, tcp, b"x" * 100)
        assert len(frames) == 1

    def test_large_payload_splits_at_mss(self):
        tcp = TcpHeader(src_port=1, dst_port=2, seq=100)
        payload = bytes(64 * 1024)
        frames = segment_payload(ETH, A.ip, B.ip, tcp, payload)
        assert len(frames) == -(-len(payload) // TCP_MSS)
        assert all(len(f) <= MTU + 14 for f in frames)

    def test_sequence_numbers_advance(self):
        tcp = TcpHeader(src_port=1, dst_port=2, seq=100)
        frames = segment_payload(ETH, A.ip, B.ip, tcp, bytes(4000))
        seqs = [parse_frame(f).tcp.seq for f in frames]
        assert seqs == [100, 100 + TCP_MSS, 100 + 2 * TCP_MSS]

    def test_reassembly_preserves_content(self):
        tcp = TcpHeader(src_port=1, dst_port=2, seq=0)
        payload = bytes(range(256)) * 40
        frames = segment_payload(ETH, A.ip, B.ip, tcp, payload)
        assert b"".join(parse_frame(f).payload for f in frames) == payload

    def test_empty_payload_yields_bare_ack(self):
        tcp = TcpHeader(src_port=1, dst_port=2, seq=5)
        frames = segment_payload(ETH, A.ip, B.ip, tcp, b"")
        assert len(frames) == 1
        assert parse_frame(frames[0]).payload == b""

    def test_bad_mss_rejected(self):
        tcp = TcpHeader(src_port=1, dst_port=2, seq=5)
        with pytest.raises(ProtocolError):
            segment_payload(ETH, A.ip, B.ip, tcp, b"x", mss=0)


class TestTcpFlow:
    def test_send_receive_in_order(self):
        sender = TcpFlow(local=A, remote=B)
        receiver = sender.reverse()
        for chunk in (b"first", b"second", b"third"):
            tcp = sender.next_header(len(chunk))
            frame = parse_frame(build_frame(sender.eth_header(), A.ip, B.ip,
                                            tcp, chunk))
            assert receiver.accept(frame) == chunk

    def test_gap_detected(self):
        sender = TcpFlow(local=A, remote=B)
        receiver = sender.reverse()
        sender.next_header(10)  # segment lost
        tcp = sender.next_header(5)
        frame = parse_frame(build_frame(sender.eth_header(), A.ip, B.ip,
                                        tcp, b"xxxxx"))
        with pytest.raises(ProtocolError, match="out-of-order"):
            receiver.accept(frame)

    def test_wrong_flow_rejected(self):
        sender = TcpFlow(local=A, remote=B)
        other_local = TcpEndpoint(mac=B.mac, ip=B.ip, port=7777)
        receiver = TcpFlow(local=other_local, remote=A)
        tcp = sender.next_header(3)
        frame = parse_frame(build_frame(sender.eth_header(), A.ip, B.ip,
                                        tcp, b"abc"))
        with pytest.raises(ProtocolError):
            receiver.accept(frame)

    def test_flow_table_lookup(self):
        sender = TcpFlow(local=A, remote=B)
        receiver = sender.reverse()
        table = FlowTable()
        table.add(receiver)
        tcp = sender.next_header(2)
        frame = parse_frame(build_frame(sender.eth_header(), A.ip, B.ip,
                                        tcp, b"ok"))
        assert table.lookup(frame) is receiver
        table.remove(receiver)
        assert table.lookup(frame) is None


class TestWire:
    def test_delivery(self):
        sim = Simulator()
        wire = Wire(sim)
        wire.attach("left")
        right_in = wire.attach("right")
        frame = make_frame(b"over the wire")

        def sender(sim, wire):
            yield from wire.transmit("left", frame)

        def receiver(sim, queue):
            got = yield queue.get()
            return got

        sim.process(sender(sim, wire))
        proc = sim.process(receiver(sim, right_in))
        assert sim.run(until=proc) == frame

    def test_effective_rate_below_line_rate(self):
        """Full-MTU streaming lands near 9.4 Gbps on a 10 Gbps line."""
        sim = Simulator()
        wire = Wire(sim, rate=gbps(10))
        wire.attach("left")
        right_in = wire.attach("right")
        n_frames = 200
        payload = bytes(TCP_MSS)
        tcp = TcpHeader(src_port=1, dst_port=2, seq=0)
        frame = build_frame(ETH, A.ip, B.ip, tcp, payload)

        def sender(sim, wire):
            for _ in range(n_frames):
                yield from wire.transmit("left", frame)

        def receiver(sim, queue):
            for _ in range(n_frames):
                yield queue.get()

        sim.process(sender(sim, wire))
        proc = sim.process(receiver(sim, right_in))
        sim.run(until=proc)
        goodput = n_frames * TCP_MSS * 8 / (sim.now / SEC) / 1e9
        assert 9.0 < goodput < 9.6

    def test_in_order_delivery(self):
        sim = Simulator()
        wire = Wire(sim)
        wire.attach("left")
        right_in = wire.attach("right")
        got = []

        def sender(sim, wire):
            for i in range(10):
                yield from wire.transmit("left", make_frame(bytes([i]) * 10))

        def receiver(sim, queue):
            for _ in range(10):
                frame = yield queue.get()
                got.append(parse_frame(frame).payload[0])

        sim.process(sender(sim, wire))
        proc = sim.process(receiver(sim, right_in))
        sim.run(until=proc)
        assert got == list(range(10))

    def test_third_endpoint_rejected(self):
        sim = Simulator()
        wire = Wire(sim)
        wire.attach("a")
        wire.attach("b")
        with pytest.raises(SimulationError):
            wire.attach("c")

    def test_unattached_sender_rejected(self):
        sim = Simulator()
        wire = Wire(sim)
        wire.attach("a")
        wire.attach("b")

        def body(sim, wire):
            yield from wire.transmit("ghost", b"x" * 100)

        proc = sim.process(body(sim, wire))
        sim.run()
        assert not proc.ok
