"""Tests for stats trackers, histograms, meters and RNG streams."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim import BusyTracker, Histogram, Meter, RngHub, Simulator
from repro.sim.rng import (DROPBOX_SIZE_BUCKETS, dropbox_file_sizes, empirical,
                           exponential_interarrivals)
from repro.units import SEC, usec


@pytest.fixture
def sim():
    return Simulator()


class TestBusyTracker:
    def test_accumulates_per_category(self, sim):
        tracker = BusyTracker(sim)
        tracker.add("filesystem", 100)
        tracker.add("filesystem", 50)
        tracker.add("network", 30)
        assert tracker.total("filesystem") == 150
        assert tracker.total("network") == 30
        assert tracker.total() == 180

    def test_utilization_over_window(self, sim):
        tracker = BusyTracker(sim)

        def body(sim):
            yield sim.timeout(usec(10))

        tracker.add("work", usec(5))
        sim.process(body(sim))
        sim.run()
        assert tracker.utilization() == pytest.approx(0.5)
        assert tracker.utilization("work") == pytest.approx(0.5)

    def test_parallelism_divides_utilization(self, sim):
        tracker = BusyTracker(sim)

        def body(sim):
            yield sim.timeout(usec(10))

        tracker.add("work", usec(10))
        sim.process(body(sim))
        sim.run()
        assert tracker.utilization(parallelism=4) == pytest.approx(0.25)

    def test_reset_window(self, sim):
        tracker = BusyTracker(sim)
        tracker.add("work", 500)

        def body(sim):
            yield sim.timeout(1000)

        sim.process(body(sim))
        sim.run()
        tracker.reset_window()
        assert tracker.total() == 0
        assert tracker.window() == 0

    def test_reset_window_keeps_categories_at_zero(self, sim):
        # Regression: categories touched before the reset must read as
        # zero afterwards (present in by_category, not stale, no
        # KeyError) so window-differencing readers see stable keys.
        tracker = BusyTracker(sim)
        tracker.add("filesystem", 500)
        tracker.add("network", 300)
        tracker.reset_window()
        assert tracker.by_category() == {"filesystem": 0, "network": 0}
        assert tracker.total("filesystem") == 0
        assert tracker.utilization_by_category() == {"filesystem": 0.0,
                                                     "network": 0.0}
        tracker.add("filesystem", 100)
        assert tracker.by_category() == {"filesystem": 100, "network": 0}

    def test_negative_duration_rejected(self, sim):
        tracker = BusyTracker(sim)
        with pytest.raises(SimulationError):
            tracker.add("x", -1)

    def test_zero_window_utilization_is_zero(self, sim):
        tracker = BusyTracker(sim)
        tracker.add("x", 10)
        assert tracker.utilization() == 0.0


class TestHistogram:
    def test_mean_and_count(self):
        hist = Histogram()
        hist.extend([1.0, 2.0, 3.0])
        assert hist.count == 3
        assert hist.mean() == pytest.approx(2.0)

    def test_percentiles(self):
        hist = Histogram()
        hist.extend(float(i) for i in range(1, 101))
        assert hist.percentile(50) == 50.0
        assert hist.percentile(99) == 99.0
        assert hist.percentile(100) == 100.0
        assert hist.min() == 1.0
        assert hist.max() == 100.0

    def test_empty_histogram_guards(self):
        hist = Histogram()
        assert hist.mean() == 0.0
        assert hist.stdev() == 0.0
        with pytest.raises(SimulationError):
            hist.percentile(50)

    def test_bad_percentile_rejected(self):
        hist = Histogram()
        hist.add(1.0)
        with pytest.raises(ValueError):
            hist.percentile(101)

    @settings(max_examples=50, deadline=None)
    @given(samples=st.lists(st.floats(min_value=-1e6, max_value=1e6,
                                      allow_nan=False), min_size=1, max_size=100))
    def test_percentile_bounds(self, samples):
        hist = Histogram()
        hist.extend(samples)
        assert hist.min() <= hist.percentile(50) <= hist.max()
        assert hist.percentile(0) == hist.min()
        assert hist.percentile(100) == hist.max()


class TestMeter:
    def test_rate_over_window(self, sim):
        meter = Meter(sim)

        def body(sim, meter):
            yield sim.timeout(SEC)
            meter.add(10 ** 9)  # 1 GB over 1 s

        sim.process(body(sim, meter))
        sim.run()
        assert meter.rate_per_sec() == pytest.approx(1e9)
        assert meter.gbps() == pytest.approx(8.0)

    def test_negative_amount_rejected(self, sim):
        meter = Meter(sim)
        with pytest.raises(SimulationError):
            meter.add(-5)


class TestRng:
    def test_streams_are_reproducible(self):
        a = RngHub(seed=7).stream("arrivals")
        b = RngHub(seed=7).stream("arrivals")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_streams_are_independent(self):
        hub = RngHub(seed=7)
        a = hub.stream("arrivals")
        b = hub.stream("sizes")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        a = RngHub(seed=1).stream("x")
        b = RngHub(seed=2).stream("x")
        assert a.random() != b.random()

    def test_exponential_interarrivals_mean(self):
        rng = RngHub(seed=3).stream("arrivals")
        gaps = exponential_interarrivals(rng, rate_per_sec=1000.0)
        n = 5000
        mean_gap = sum(next(gaps) for _ in range(n)) / n
        # Expected gap = 1 ms = 1e6 ns; allow 10 % sampling noise.
        assert mean_gap == pytest.approx(1e6, rel=0.1)

    def test_exponential_requires_positive_rate(self):
        rng = RngHub(seed=3).stream("arrivals")
        with pytest.raises(ValueError):
            next(exponential_interarrivals(rng, 0.0))

    def test_empirical_respects_support(self):
        rng = RngHub(seed=4).stream("sizes")
        sizes = empirical(rng, [(1.0, 10), (1.0, 20)])
        drawn = {next(sizes) for _ in range(200)}
        assert drawn == {10, 20}

    def test_empirical_rejects_empty(self):
        rng = RngHub(seed=4).stream("sizes")
        with pytest.raises(ValueError):
            next(empirical(rng, []))

    def test_empirical_rejects_bad_weights(self):
        rng = RngHub(seed=4).stream("sizes")
        with pytest.raises(ValueError):
            next(empirical(rng, [(-1.0, 10)]))

    def test_dropbox_sizes_come_from_buckets(self):
        rng = RngHub(seed=5).stream("sizes")
        sizes = dropbox_file_sizes(rng)
        support = {size for _, size in DROPBOX_SIZE_BUCKETS}
        assert all(next(sizes) in support for _ in range(500))

    def test_dropbox_sizes_mostly_small(self):
        rng = RngHub(seed=6).stream("sizes")
        sizes = dropbox_file_sizes(rng)
        n = 2000
        small = sum(1 for _ in range(n) if next(sizes) <= 256 * 1024)
        assert small / n > 0.7  # the paper's workload skews small
