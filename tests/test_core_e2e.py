"""End-to-end tests of the DCS-ctrl stack on the two-node testbed.

These are the reproduction's most important tests: real bytes flow
SSD→engine DDR3→NIC→wire→NIC→engine DDR3→SSD with all control
performed by the engines, and every checksum matches hashlib.
"""

import hashlib
import zlib

import pytest

from repro.algos import lz77_decompress
from repro.analysis import LatencyTrace
from repro.errors import ConfigurationError
from repro.host.costs import CAT
from repro.schemes import Testbed
from repro.units import KIB, usec


@pytest.fixture(scope="module")
def tb():
    return Testbed(seed=1)


def _pattern(size, salt=0):
    return bytes((i * 7 + salt) % 256 for i in range(size))


class TestSsdToHost:
    def test_read_to_host_moves_bytes(self, tb):
        data = _pattern(16 * KIB, salt=1)
        tb.node0.host.install_file("r2h.dat", data)
        fd = tb.node0.library.open_file("r2h.dat")
        buf = tb.node0.host.alloc_buffer(16 * KIB)

        def body(sim):
            yield from tb.node0.library.hdc_readfile(fd, 0, 16 * KIB, buf)

        tb.sim.run(until=tb.sim.process(body(tb.sim)))
        assert tb.node0.host.fabric.peek(buf, 16 * KIB) == data

    def test_read_to_host_with_md5(self, tb):
        data = _pattern(8 * KIB, salt=2)
        tb.node0.host.install_file("r2h-md5.dat", data)
        fd = tb.node0.library.open_file("r2h-md5.dat")
        buf = tb.node0.host.alloc_buffer(8 * KIB)

        def body(sim):
            completion = yield from tb.node0.library.hdc_readfile(
                fd, 0, 8 * KIB, buf, func="md5")
            return completion

        completion = tb.sim.run(until=tb.sim.process(body(tb.sim)))
        assert completion.digest == hashlib.md5(data).digest()
        assert tb.node0.host.fabric.peek(buf, 8 * KIB) == data


class TestSendReceive:
    def _transfer(self, tb, data, func_send="none", func_recv="none",
                  src="xfer-src.dat", dst="xfer-dst.dat"):
        tb.node0.host.install_file(src, data)
        tb.node1.host.install_file(dst, bytes(len(data)))
        conn = tb.connect_offloaded()
        src_fd = tb.node0.library.open_file(src)
        sock0 = tb.node0.library.open_socket(conn.flow0)
        dst_fd = tb.node1.library.open_file(dst, writable=True)
        sock1 = tb.node1.library.open_socket(conn.flow1)

        def sender(sim):
            return (yield from tb.node0.library.hdc_sendfile(
                sock0, src_fd, 0, len(data), func=func_send))

        def receiver(sim):
            return (yield from tb.node1.library.hdc_recvfile(
                sock1, dst_fd, 0, len(data), func=func_recv))

        send_proc = tb.sim.process(sender(tb.sim))
        recv_proc = tb.sim.process(receiver(tb.sim))
        tb.sim.run(until=send_proc)
        tb.sim.run(until=recv_proc)
        return send_proc.value, recv_proc.value

    def test_ssd_to_ssd_across_nodes(self, tb):
        data = _pattern(100 * KIB, salt=3)
        self._transfer(tb, data, src="a1.dat", dst="b1.dat")
        extents = tb.node1.host.fs.extents_for("b1.dat", 0, len(data))
        stored = tb.node1.host.ssd.flash.read_blocks(
            extents[0].slba, extents[0].nblocks)[:len(data)]
        assert stored == data

    def test_sender_md5_matches_hashlib(self, tb):
        data = _pattern(24 * KIB, salt=4)
        sent, _ = self._transfer(tb, data, func_send="md5",
                                 src="a2.dat", dst="b2.dat")
        assert sent.digest == hashlib.md5(data).digest()

    def test_receiver_crc32_matches_zlib(self, tb):
        data = _pattern(24 * KIB, salt=5)
        _, received = self._transfer(tb, data, func_recv="crc32",
                                     src="a3.dat", dst="b3.dat")
        assert int.from_bytes(received.digest, "big") == zlib.crc32(data)

    def test_host_cpu_nearly_idle_during_transfer(self, tb):
        data = _pattern(64 * KIB, salt=6)
        tb.reset_cpu_windows()
        self._transfer(tb, data, src="a4.dat", dst="b4.dat")
        # The engines did the work: host CPUs only paid the thin
        # driver/ioctl path.
        for node in tb.nodes:
            assert node.host.cpu.utilization() < 0.05
            assert node.host.cpu.tracker.total(CAT.NETWORK) == 0

    def test_p2p_traffic_dominates_host_traffic(self, tb):
        data = _pattern(128 * KIB, salt=7)
        fabric0 = tb.node0.host.fabric
        before_p2p = fabric0.p2p_bytes
        before_host = fabric0.host_bytes
        self._transfer(tb, data, src="a5.dat", dst="b5.dat")
        p2p = fabric0.p2p_bytes - before_p2p
        host = fabric0.host_bytes - before_host
        assert p2p > len(data)      # SSD->engine + engine rings
        assert host < 4 * KIB       # only the 64 B command + completion


class TestAppendDigest:
    def test_digest_travels_with_payload(self, tb):
        data = _pattern(8 * KIB, salt=8)
        tb.node0.host.install_file("append.dat", data)
        conn = tb.connect_offloaded()
        fd = tb.node0.library.open_file("append.dat")
        sock0 = tb.node0.library.open_socket(conn.flow0)
        sock1 = tb.node1.library.open_socket(conn.flow1)
        buf = tb.node1.host.alloc_buffer(8 * KIB + 16)

        def sender(sim):
            return (yield from tb.node0.library.hdc_sendfile(
                sock0, fd, 0, len(data), func="md5", append_digest=True))

        def receiver(sim):
            return (yield from tb.node1.library.hdc_recv(
                sock1, len(data) + 16, buf))

        send_proc = tb.sim.process(sender(tb.sim))
        recv_proc = tb.sim.process(receiver(tb.sim))
        tb.sim.run(until=send_proc)
        tb.sim.run(until=recv_proc)
        got = tb.node1.host.fabric.peek(buf, len(data) + 16)
        assert got[:len(data)] == data
        assert got[len(data):] == hashlib.md5(data).digest()


class TestTransforms:
    def test_gzip_in_flight_shrinks_stream(self, tb):
        data = (b"highly repetitive payload " * 3000)[:64 * KIB]
        tb.node0.host.install_file("gz.dat", data)
        conn = tb.connect_offloaded()
        fd = tb.node0.library.open_file("gz.dat")
        sock0 = tb.node0.library.open_socket(conn.flow0)
        sock1 = tb.node1.library.open_socket(conn.flow1)

        def sender(sim):
            return (yield from tb.node0.library.hdc_sendfile(
                sock0, fd, 0, len(data), func="gzip"))

        send_proc = tb.sim.process(sender(tb.sim))
        completion = tb.sim.run(until=send_proc)
        assert completion.result_length < len(data) // 2

        buf = tb.node1.host.alloc_buffer(completion.result_length)

        def receiver(sim):
            yield from tb.node1.library.hdc_recv(
                sock1, completion.result_length, buf)

        tb.sim.run(until=tb.sim.process(receiver(tb.sim)))
        blob = tb.node1.host.fabric.peek(buf, completion.result_length)
        assert lz77_decompress(blob) == data


class TestTraceBreakdown:
    def test_dcs_trace_has_hardware_components(self, tb):
        data = _pattern(16 * KIB, salt=9)
        tb.node0.host.install_file("trace.dat", data)
        conn = tb.connect_offloaded()
        fd = tb.node0.library.open_file("trace.dat")
        sock0 = tb.node0.library.open_socket(conn.flow0)
        trace = LatencyTrace(tb.sim)

        def sender(sim):
            yield from tb.node0.library.hdc_sendfile(
                sock0, fd, 0, len(data), func="md5", trace=trace)

        tb.sim.run(until=tb.sim.process(sender(tb.sim)))
        trace.finish()
        assert trace.segments[CAT.READ] > 0
        assert trace.segments[CAT.NDP] > 0
        assert trace.segments[CAT.SCOREBOARD] >= 0
        assert trace.segments[CAT.HDC_DRIVER] > 0
        # Software components are tiny next to the device time.
        software = (trace.segments[CAT.HDC_DRIVER]
                    + trace.segments[CAT.KERNEL_OTHER]
                    + trace.segments[CAT.COMPLETION])
        assert software < trace.total * 0.4

    def test_dirty_page_flush_before_d2d(self, tb):
        data = _pattern(8 * KIB, salt=10)
        tb.node0.host.install_file("dirty.dat", data)
        # Simulate a buffered write that left page 0 dirty in the cache
        # with *different* content than flash.
        fresh = bytes(b ^ 0xFF for b in data[:4096])
        tb.node0.host.page_cache.insert("dirty.dat", 0, fresh, dirty=True)
        buf = tb.node0.host.alloc_buffer(8 * KIB)
        fd = tb.node0.library.open_file("dirty.dat")

        def body(sim):
            yield from tb.node0.library.hdc_readfile(fd, 0, 8 * KIB, buf)

        tb.sim.run(until=tb.sim.process(body(tb.sim)))
        got = tb.node0.host.fabric.peek(buf, 8 * KIB)
        # The engine must observe the flushed (latest) content.
        assert got[:4096] == fresh
        assert got[4096:] == data[4096:]


class TestLibraryPermissions:
    def test_missing_file_rejected(self, tb):
        with pytest.raises(ConfigurationError):
            tb.node0.library.open_file("no-such-file.dat")

    def test_write_through_readonly_fd_rejected(self, tb):
        tb.node0.host.install_file("ro.dat", bytes(4 * KIB))
        fd = tb.node0.library.open_file("ro.dat", writable=False)
        conn = tb.connect_offloaded()
        sock = tb.node0.library.open_socket(conn.flow0)

        def body(sim):
            yield from tb.node0.library.hdc_recvfile(sock, fd, 0, 4 * KIB)

        proc = tb.sim.process(body(tb.sim))
        tb.sim.run()
        assert not proc.ok

    def test_unoffloaded_socket_rejected(self, tb):
        conn = tb.connect_kernel()
        with pytest.raises(ConfigurationError):
            tb.node0.library.open_socket(conn.flow0)
