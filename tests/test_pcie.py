"""Tests for the PCIe address map, links and switched fabric."""

import pytest

from repro.errors import AddressError, SimulationError
from repro.memory import MemoryRegion
from repro.pcie import (AddressMap, Fabric, LINK_GEN2_X4, LINK_GEN2_X8,
                        tlp_efficiency)
from repro.pcie.transaction import DOORBELL_WRITE_NS
from repro.sim import Simulator
from repro.units import KIB, MIB


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def fabric(sim):
    fab = Fabric(sim)
    fab.add_port("host", LINK_GEN2_X8)
    fab.add_port("ssd", LINK_GEN2_X4)
    fab.add_port("nic", LINK_GEN2_X8)
    fab.add_port("engine", LINK_GEN2_X8)
    fab.add_region(MemoryRegion("host-dram", base=0x0000_0000,
                                size=64 * MIB, port="host"))
    fab.add_region(MemoryRegion("engine-ddr3", base=0x4000_0000,
                                size=16 * MIB, port="engine"))
    fab.add_region(MemoryRegion("ssd-regs", base=0x8000_0000,
                                size=64 * KIB, port="ssd"))
    return fab


class TestAddressMap:
    def test_resolve_finds_region(self):
        amap = AddressMap()
        amap.add(MemoryRegion("a", base=0, size=100, port="p"))
        amap.add(MemoryRegion("b", base=100, size=100, port="q"))
        assert amap.resolve(50).name == "a"
        assert amap.resolve(100).name == "b"
        assert amap.resolve(199).name == "b"

    def test_overlap_rejected(self):
        amap = AddressMap()
        amap.add(MemoryRegion("a", base=0, size=100, port="p"))
        with pytest.raises(AddressError):
            amap.add(MemoryRegion("b", base=50, size=100, port="q"))

    def test_unmapped_rejected(self):
        amap = AddressMap()
        amap.add(MemoryRegion("a", base=100, size=100, port="p"))
        with pytest.raises(AddressError):
            amap.resolve(50)
        with pytest.raises(AddressError):
            amap.resolve(200)

    def test_straddle_rejected(self):
        amap = AddressMap()
        amap.add(MemoryRegion("a", base=0, size=100, port="p"))
        amap.add(MemoryRegion("b", base=100, size=100, port="q"))
        with pytest.raises(AddressError):
            amap.resolve(90, 20)

    def test_find_by_name(self):
        amap = AddressMap()
        amap.add(MemoryRegion("a", base=0, size=100, port="p"))
        assert amap.find("a").base == 0
        assert amap.find("zzz") is None

    def test_functional_read_write(self):
        amap = AddressMap()
        amap.add(MemoryRegion("a", base=0x1000, size=4096, port="p"))
        amap.write(0x1234, b"data")
        assert amap.read(0x1234, 4) == b"data"


class TestLinkConfig:
    def test_tlp_efficiency_below_one(self):
        assert 0.85 < tlp_efficiency() < 1.0

    def test_x8_twice_x4(self):
        assert (LINK_GEN2_X8.effective_rate().bytes_per_sec ==
                pytest.approx(2 * LINK_GEN2_X4.effective_rate().bytes_per_sec))

    def test_gen2_x4_near_2gb(self):
        # 4 lanes * 500 MB/s raw = 2 GB/s, ~1.8 GB/s effective
        rate = LINK_GEN2_X4.effective_rate()
        assert 1.7e9 < rate.bytes_per_sec < 2.0e9


class TestFabric:
    def test_duplicate_port_rejected(self, sim):
        fab = Fabric(sim)
        fab.add_port("host", LINK_GEN2_X8)
        with pytest.raises(SimulationError):
            fab.add_port("host", LINK_GEN2_X8)

    def test_region_needs_known_port(self, sim):
        fab = Fabric(sim)
        with pytest.raises(SimulationError):
            fab.add_region(MemoryRegion("r", base=0, size=10, port="ghost"))

    def test_dma_write_moves_bytes(self, sim, fabric):
        def body(sim, fabric):
            yield from fabric.dma_write("ssd", 0x1000, b"payload")

        sim.run(until=sim.process(body(sim, fabric)))
        assert fabric.peek(0x1000, 7) == b"payload"

    def test_dma_write_takes_time(self, sim, fabric):
        def body(sim, fabric):
            yield from fabric.dma_write("ssd", 0x1000, bytes(64 * KIB))

        sim.run(until=sim.process(body(sim, fabric)))
        # 64 KiB over an effective ~1.8 GB/s x4 link, twice (tx then rx
        # holds), plus hops: tens of microseconds at most.
        assert 30_000 < sim.now < 120_000

    def test_local_access_is_free_and_functional(self, sim, fabric):
        def body(sim, fabric):
            yield from fabric.dma_write("host", 0x2000, b"local")
            data = yield from fabric.dma_read("host", 0x2000, 5)
            return data

        proc = sim.process(body(sim, fabric))
        assert sim.run(until=proc) == b"local"
        assert sim.now == 0

    def test_dma_read_returns_bytes(self, sim, fabric):
        fabric.poke(0x4000_0100, b"engine-data")

        def body(sim, fabric):
            data = yield from fabric.dma_read("nic", 0x4000_0100, 11)
            return data

        proc = sim.process(body(sim, fabric))
        assert sim.run(until=proc) == b"engine-data"
        assert sim.now > 0

    def test_p2p_bypasses_host_accounting(self, sim, fabric):
        def body(sim, fabric):
            # SSD writes into engine DDR3: pure peer-to-peer.
            yield from fabric.dma_write("ssd", 0x4000_0000, bytes(4096))
            # Engine writes to host DRAM: host traffic.
            yield from fabric.dma_write("engine", 0x0, bytes(512))

        sim.run(until=sim.process(body(sim, fabric)))
        assert fabric.p2p_bytes == 4096
        assert fabric.host_bytes == 512

    def test_port_stats_track_direction(self, sim, fabric):
        def body(sim, fabric):
            yield from fabric.dma_write("ssd", 0x4000_0000, bytes(1000))

        sim.run(until=sim.process(body(sim, fabric)))
        assert fabric.stats("ssd").tx_bytes == 1000
        assert fabric.stats("engine").rx_bytes == 1000
        assert fabric.stats("host").rx_bytes == 0

    def test_mmio_write_fires_hook_after_latency(self, sim, fabric):
        rung = []
        region = fabric.address_map.find("ssd-regs")
        region.on_mmio_write = lambda off, data: rung.append((sim.now, off, data))

        def body(sim, fabric):
            yield from fabric.mmio_write("engine", 0x8000_0010, b"\x05\x00\x00\x00")

        sim.run(until=sim.process(body(sim, fabric)))
        assert rung == [(DOORBELL_WRITE_NS, 0x10, b"\x05\x00\x00\x00")]
        assert fabric.stats("engine").doorbells == 1

    def test_mmio_read_round_trip(self, sim, fabric):
        fabric.poke(0x0000_0040, b"\xaa\xbb\xcc\xdd")

        def body(sim, fabric):
            data = yield from fabric.mmio_read("ssd", 0x0000_0040, 4)
            return data

        proc = sim.process(body(sim, fabric))
        assert sim.run(until=proc) == b"\xaa\xbb\xcc\xdd"
        assert sim.now > 0

    def test_msi_delivery(self, sim, fabric):
        hits = []
        fabric.register_msi_handler("host", lambda src, vec: hits.append((src, vec)))

        def body(sim, fabric):
            yield from fabric.msi("ssd", vector=3)

        sim.run(until=sim.process(body(sim, fabric)))
        assert hits == [("ssd", 3)]
        assert fabric.stats("ssd").interrupts == 1

    def test_msi_without_handler_raises(self, sim, fabric):
        def body(sim, fabric):
            yield from fabric.msi("ssd")

        proc = sim.process(body(sim, fabric))
        sim.run()
        assert not proc.ok

    def test_concurrent_writes_to_one_target_serialize(self, sim, fabric):
        """Two devices DMAing into the same region contend its RX link."""
        finish = {}

        def writer(sim, fabric, port, addr):
            yield from fabric.dma_write(port, addr, bytes(256 * KIB))
            finish[port] = sim.now

        sim.process(writer(sim, fabric, "ssd", 0x4000_0000))
        sim.process(writer(sim, fabric, "nic", 0x4010_0000))
        sim.run()
        # The engine's RX link is shared: the last completion cannot
        # beat the RX serialization of both payloads back to back.
        engine_rx_time = 2 * LINK_GEN2_X8.effective_rate().duration(
            256 * KIB)
        assert max(finish.values()) >= engine_rx_time

    def test_unmapped_dma_fails_process(self, sim, fabric):
        def body(sim, fabric):
            yield from fabric.dma_write("ssd", 0xdead_beef_0000, b"x")

        proc = sim.process(body(sim, fabric))
        sim.run()
        assert not proc.ok
        with pytest.raises(AddressError):
            _ = proc.value
