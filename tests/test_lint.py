"""The simlint engine: rules, suppressions, baseline, CLI, self-check.

The deliberate-violation fixtures live in ``tests/lint_fixtures`` (one
file per rule, excluded from the default walk); violating snippets used
inline here are kept in string literals so that the meta-test — this
repo lints clean — keeps passing over this very file.
"""

from __future__ import annotations

import json
import os
import subprocess  # simlint: disable=SIM003
import sys
import textwrap
from pathlib import Path

import pytest

from repro.lint import (Baseline, BaselineEntry, lint_paths, lint_source,
                        module_name, rule_classes, rule_ids)

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"


def _lint(snippet: str, path: str = "src/repro/somewhere.py"):
    return lint_source(textwrap.dedent(snippet), path)


def _rules_of(findings):
    return [finding.rule for finding in findings]


# ---------------------------------------------------------------------------
# one fixture per rule
# ---------------------------------------------------------------------------

class TestFixtures:
    @pytest.mark.parametrize("rule_id", rule_ids())
    def test_each_rule_has_a_fixture_that_fires_exactly_it(self, rule_id):
        matches = list(FIXTURES.glob(f"{rule_id.lower()}_*.py"))
        assert len(matches) == 1, \
            f"expected exactly one fixture named {rule_id.lower()}_*.py"
        findings = lint_source(matches[0].read_text(encoding="utf-8"),
                               matches[0].as_posix())
        assert _rules_of(findings) == [rule_id], (
            f"fixture {matches[0].name} should trip {rule_id} exactly "
            f"once, got {[(f.rule, f.line, f.message) for f in findings]}")

    def test_no_stray_fixture_files(self):
        known = {rule_id.lower() for rule_id in rule_ids()}
        for path in FIXTURES.glob("*.py"):
            prefix = path.name.split("_")[0]
            assert prefix in known, f"fixture {path.name} matches no rule"


# ---------------------------------------------------------------------------
# rule behavior details
# ---------------------------------------------------------------------------

class TestRuleScoping:
    def test_rng_hub_module_is_exempt_from_det001(self):
        findings = _lint("import random\nx = random.random()\n",
                         "src/repro/sim/rng.py")
        assert "DET001" not in _rules_of(findings)

    def test_experiments_may_read_wall_clock_and_spawn(self):
        snippet = ("import time\nimport subprocess\n"
                   "t = time.perf_counter()\n"
                   "subprocess.run(['true'])\n")
        assert _lint(snippet, "src/repro/experiments/host.py") == []
        findings = _lint(snippet, "src/repro/devices/nvme.py")
        assert set(_rules_of(findings)) == {"DET002", "SIM003"}

    def test_sim_package_owns_heapq(self):
        assert _lint("import heapq\n", "src/repro/sim/kernel.py") == []
        assert _rules_of(_lint("import heapq\n",
                               "src/repro/devices/nvme.py")) == ["SIM001"]

    def test_module_name_anchors_at_repro(self):
        assert module_name("src/repro/sim/rng.py") == "repro.sim.rng"
        assert module_name("tests/test_lint.py") == "tests.test_lint"


class TestCleanConstructs:
    """Idioms the rules must NOT flag (false-positive guards)."""

    CLEAN = [
        "x = rng.stream('nic').randint(1, 10)",           # hub stream
        "r = random.Random(42)",                          # seeded
        "streams[flow.uid] = stream",                     # uid key
        "order = sorted(links, key=lambda l: l.name)",    # stable sort
        "for name in sorted(self._names): use(name)",     # sorted set
        "s = set(xs)\nn = len(s)",                        # set, no loop
        "if now == deadline: fire()",                     # int eq
        "ratio = now / 1.5",                              # float arithmetic
        "tracer.begin('request', track='t')",             # cataloged type
        "trace.span('read')",                             # LatencyTrace API
        "irq.register(port, handler)",                    # not a metric call
        "engine.register('md5', fn)",                     # NDP fn, not metric
    ]

    @pytest.mark.parametrize("snippet", CLEAN)
    def test_not_flagged(self, snippet):
        assert _lint(snippet + "\n") == []

    def test_known_metric_trace_fault_names_pass(self):
        snippet = ("ms.counter('faults.injected', node='n')\n"
                   "plan.fires('nic.wire_drop')\n")
        assert _lint(snippet) == []


class TestSuppressions:
    def test_inline_disable_silences_that_rule(self):
        src = "streams[id(flow)] = s  # simlint: disable=DET003\n"
        assert lint_source(src, "x.py") == []

    def test_inline_disable_wrong_rule_does_not_silence(self):
        src = "streams[id(flow)] = s  # simlint: disable=DET004\n"
        assert _rules_of(lint_source(src, "x.py")) == ["DET003"]

    def test_disable_all_silences_everything_on_the_line(self):
        src = ("import time\n"
               "t = time.time() or time.sleep(1)  # simlint: disable=all\n")
        assert lint_source(src, "x.py") == []

    def test_disable_is_per_line(self):
        src = ("a[id(x)] = 1  # simlint: disable=DET003\n"
               "b[id(y)] = 2\n")
        findings = lint_source(src, "x.py")
        assert [(f.rule, f.line) for f in findings] == [("DET003", 2)]

    def test_skip_file_in_first_five_lines(self):
        src = "# simlint: skip-file\nimport heapq\nx = hex(id(object()))\n"
        assert lint_source(src, "x.py") == []

    def test_skip_file_too_late_is_ignored(self):
        src = "\n" * 5 + "# simlint: skip-file\nimport heapq\n"
        assert _rules_of(lint_source(src, "x.py")) == ["SIM001"]


class TestFingerprints:
    def test_stable_across_line_shifts(self):
        before = lint_source("streams[id(f)] = s\n", "x.py")
        after = lint_source("\n\n\nstreams[id(f)] = s\n", "x.py")
        assert before[0].fingerprint == after[0].fingerprint
        assert before[0].line != after[0].line

    def test_identical_lines_get_distinct_fingerprints(self):
        src = "streams[id(f)] = s\nstreams[id(f)] = s\n"
        first, second = lint_source(src, "x.py")
        assert first.fingerprint != second.fingerprint

    def test_path_is_part_of_identity(self):
        one = lint_source("streams[id(f)] = s\n", "a.py")[0]
        two = lint_source("streams[id(f)] = s\n", "b.py")[0]
        assert one.fingerprint != two.fingerprint


# ---------------------------------------------------------------------------
# baseline
# ---------------------------------------------------------------------------

class TestBaseline:
    def _finding(self):
        return lint_source("streams[id(f)] = s\n", "x.py")[0]

    def test_round_trip_preserves_entries_and_comments(self, tmp_path):
        finding = self._finding()
        path = tmp_path / "baseline.txt"
        baseline = Baseline([], path)
        baseline.write([finding])
        loaded = Baseline.load(path)
        assert len(loaded.entries) == 1
        entry = loaded.entries[0]
        assert entry.rule == "DET003"
        assert entry.fingerprint == finding.fingerprint
        assert entry.location == finding.location()
        assert entry.comment  # the placeholder justification

    def test_split_partitions_new_baselined_stale(self, tmp_path):
        finding = self._finding()
        baseline = Baseline([
            BaselineEntry("DET003", finding.fingerprint),
            BaselineEntry("SIM001", "deadbeef0000"),
        ])
        new, baselined, stale = baseline.split([finding])
        assert new == []
        assert baselined == [finding]
        assert [entry.fingerprint for entry in stale] == ["deadbeef0000"]

    def test_duplicate_findings_need_duplicate_entries(self):
        src = "streams[id(f)] = s\nstreams[id(f)] = s\n"
        first, second = lint_source(src, "x.py")
        baseline = Baseline([BaselineEntry("DET003", first.fingerprint)])
        new, baselined, stale = baseline.split([first, second])
        assert baselined == [first]
        assert new == [second]
        assert stale == []

    def test_regeneration_keeps_justification_comments(self, tmp_path):
        finding = self._finding()
        path = tmp_path / "baseline.txt"
        path.write_text(f"DET003 {finding.fingerprint} x.py:1:0"
                        "  # grandfathered: migration tracked in #42\n",
                        encoding="utf-8")
        baseline = Baseline.load(path)
        baseline.write([finding])
        assert "migration tracked in #42" in path.read_text(encoding="utf-8")

    def test_missing_file_is_empty_baseline(self, tmp_path):
        baseline = Baseline.load(tmp_path / "absent.txt")
        assert baseline.entries == []

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "baseline.txt"
        path.write_text("justonefield\n", encoding="utf-8")
        with pytest.raises(ValueError, match="malformed"):
            Baseline.load(path)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def _run_cli(*args, cwd):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(  # simlint: disable=SIM003
        [sys.executable, "-m", "repro.lint", *args],
        cwd=cwd, env=env, capture_output=True, text=True)


class TestCli:
    def test_clean_file_exits_zero(self, tmp_path):
        (tmp_path / "clean.py").write_text("x = 1\n", encoding="utf-8")
        proc = _run_cli("clean.py", cwd=tmp_path)
        assert proc.returncode == 0
        assert "0 findings" in proc.stdout

    def test_violation_exits_one_naming_rule_and_line(self, tmp_path):
        (tmp_path / "bad.py").write_text("\nstreams[id(f)] = s\n",
                                         encoding="utf-8")
        proc = _run_cli("bad.py", cwd=tmp_path)
        assert proc.returncode == 1
        assert "bad.py:2" in proc.stdout
        assert "DET003" in proc.stdout

    def test_baselined_violation_exits_zero(self, tmp_path):
        (tmp_path / "bad.py").write_text("streams[id(f)] = s\n",
                                         encoding="utf-8")
        assert _run_cli("bad.py", "--update-baseline",
                        cwd=tmp_path).returncode == 0
        proc = _run_cli("bad.py", cwd=tmp_path)
        assert proc.returncode == 0
        assert "1 baselined" in proc.stdout

    def test_stale_baseline_reported_but_not_fatal(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n", encoding="utf-8")
        (tmp_path / "lint-baseline.txt").write_text(
            "DET003 abcdefabcdef gone.py:1:0  # was fixed\n",
            encoding="utf-8")
        proc = _run_cli("ok.py", cwd=tmp_path)
        assert proc.returncode == 0
        assert "stale" in proc.stdout

    def test_json_report(self, tmp_path):
        (tmp_path / "bad.py").write_text("import heapq\n", encoding="utf-8")
        proc = _run_cli("bad.py", "--json", cwd=tmp_path)
        assert proc.returncode == 1
        document = json.loads(proc.stdout)
        assert document["summary"]["new"] == 1
        assert document["findings"][0]["rule"] == "SIM001"

    def test_unknown_path_exits_two(self, tmp_path):
        proc = _run_cli("no/such/dir", cwd=tmp_path)
        assert proc.returncode == 2

    def test_unknown_rule_exits_two(self, tmp_path):
        (tmp_path / "x.py").write_text("x = 1\n", encoding="utf-8")
        proc = _run_cli("x.py", "--rules", "NOPE999", cwd=tmp_path)
        assert proc.returncode == 2

    def test_rules_filter_limits_findings(self, tmp_path):
        (tmp_path / "bad.py").write_text(
            "import heapq\nstreams[id(f)] = s\n", encoding="utf-8")
        proc = _run_cli("bad.py", "--rules", "sim001", cwd=tmp_path)
        assert proc.returncode == 1
        assert "SIM001" in proc.stdout
        assert "DET003" not in proc.stdout

    def test_list_rules_names_every_rule(self, tmp_path):
        proc = _run_cli("--list-rules", cwd=tmp_path)
        assert proc.returncode == 0
        for rule_id in rule_ids():
            assert rule_id in proc.stdout


# ---------------------------------------------------------------------------
# registry + self-check
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_metadata_complete_and_unique(self):
        classes = rule_classes()
        ids = [cls.id for cls in classes]
        names = [cls.name for cls in classes]
        assert len(set(ids)) == len(ids)
        assert len(set(names)) == len(names)
        for cls in classes:
            assert cls.rationale, f"{cls.id} has no rationale"
            assert cls.example, f"{cls.id} has no example"

    def test_families(self):
        for rule_id in rule_ids():
            assert rule_id[:-3] in ("E", "DET", "SIM", "PLANE")


class TestRepositoryIsClean:
    def test_src_and_tests_lint_clean_modulo_baseline(self):
        findings = lint_paths([REPO_ROOT / "src", REPO_ROOT / "tests"],
                              relative_to=REPO_ROOT)
        baseline = Baseline.load(REPO_ROOT / "lint-baseline.txt")
        new, _, stale = baseline.split(findings)
        assert not new, (
            "simlint findings not covered by lint-baseline.txt:\n" +
            "\n".join(f"  {f.location()}: {f.rule} {f.message}"
                      for f in new))
        assert not stale, (
            "stale lint-baseline.txt entries (fixed findings):\n" +
            "\n".join(f"  {e.rule} {e.fingerprint}" for e in stale))
