"""Cross-scheme tests: functional equivalence and the paper's orderings.

Every scheme must move the same bytes and compute the same checksums;
their *performance* must satisfy the qualitative relations of Table I
and Figs 3/11 (hardware control beats software control; P2P helps when
processing is involved; the integrated device matches DCS-ctrl).
"""

import hashlib

import pytest

from repro.errors import ConfigurationError
from repro.host.costs import CAT
from repro.schemes import (DcsCtrlScheme, IntegratedScheme, SwOptScheme,
                           SwP2pScheme, Testbed)
from repro.units import KIB


def _pattern(size, salt=0):
    return bytes((i * 13 + salt) % 256 for i in range(size))


def run_send(tb, scheme, data, name, processing=None):
    """Drive one send_file on node0 with a live receiver context."""
    tb.node0.host.install_file(name, data)
    conn = scheme.connect()

    def sender(sim):
        return (yield from scheme.send_file(tb.node0, conn, name, 0,
                                            len(data),
                                            processing=processing))

    if conn.offloaded:
        # Engine-terminated: the far engine banks the stream; no
        # receiver process needed for the send to complete.
        proc = tb.sim.process(sender(tb.sim))
        tb.sim.run(until=proc)
        return proc.value
    # Kernel-terminated: drain on the receiver so the stream flows.
    dst = tb.node1.host.alloc_buffer(len(data))

    def receiver(sim):
        yield from tb.node1.host.kernel.socket_recv(conn.flow1, len(data),
                                                    dst)

    send_proc = tb.sim.process(sender(tb.sim))
    recv_proc = tb.sim.process(receiver(tb.sim))
    tb.sim.run(until=send_proc)
    tb.sim.run(until=recv_proc)
    received = tb.node1.host.fabric.peek(dst, len(data))
    tb.node1.host.free_buffer(dst, len(data))
    result = send_proc.value
    result.received = received
    return result


class TestFunctionalEquivalence:
    @pytest.mark.parametrize("scheme_cls", [SwOptScheme, SwP2pScheme,
                                            DcsCtrlScheme])
    def test_md5_digest_identical_across_schemes(self, scheme_cls):
        tb = Testbed(seed=2)
        scheme = scheme_cls(tb)
        data = _pattern(32 * KIB, salt=1)
        result = run_send(tb, scheme, data, f"eq-{scheme.name}.dat",
                          processing="md5")
        assert result.digest == hashlib.md5(data).digest()

    def test_sw_opt_delivers_exact_bytes(self):
        tb = Testbed(seed=3)
        scheme = SwOptScheme(tb)
        data = _pattern(48 * KIB, salt=2)
        result = run_send(tb, scheme, data, "bytes.dat")
        assert result.received == data

    def test_receive_paths_store_identical_bytes(self):
        for scheme_cls in (SwOptScheme, DcsCtrlScheme):
            tb = Testbed(seed=4)
            scheme = scheme_cls(tb)
            data = _pattern(20 * KIB, salt=3)
            tb.node0.host.install_file("src.dat", data)
            tb.node1.host.install_file("dst.dat", bytes(len(data)))
            conn = scheme.connect()

            def sender(sim):
                yield from scheme.send_file(tb.node0, conn, "src.dat", 0,
                                            len(data))

            def receiver(sim):
                return (yield from scheme.receive_to_file(
                    tb.node1, conn, "dst.dat", 0, len(data),
                    processing="crc32"))

            sp = tb.sim.process(sender(tb.sim))
            rp = tb.sim.process(receiver(tb.sim))
            tb.sim.run(until=sp)
            tb.sim.run(until=rp)
            extents = tb.node1.host.fs.extents_for("dst.dat", 0, len(data))
            stored = tb.node1.host.ssd.flash.read_blocks(
                extents[0].slba, extents[0].nblocks)[:len(data)]
            assert stored == data, scheme_cls.name


class TestPerformanceOrdering:
    """The relations behind Figs 3 and 11."""

    SIZE = 4 * KIB  # the paper's per-command transfer unit

    @staticmethod
    def software_us(result):
        """The software-attributable latency of one request.

        The paper's reduction claims are about the *software* latency:
        total minus time when only devices are working (flash access,
        hash/NDP execution, NIC command execution).
        """
        segs = result.trace.breakdown_us()
        device = (segs.get(CAT.READ, 0.0) + segs.get(CAT.WRITE, 0.0)
                  + segs.get(CAT.HASH, 0.0) + segs.get(CAT.NDP, 0.0)
                  + segs.get(CAT.WIRE, 0.0))
        return result.latency_us - device

    def _measure(self, scheme_cls, processing):
        tb = Testbed(seed=5)
        scheme = scheme_cls(tb)
        data = _pattern(self.SIZE)
        # Warm one request first (descriptor setup, rings), measure the
        # second, as the paper measures steady state.
        run_send(tb, scheme, data, "warm.dat", processing=processing)
        result = run_send(tb, scheme, data, "meas.dat",
                          processing=processing)
        return result.latency_us, self.software_us(result)

    def test_fig11a_dcs_beats_software_without_ndp(self):
        sw, sw_soft = self._measure(SwOptScheme, None)
        p2p, p2p_soft = self._measure(SwP2pScheme, None)
        dcs, dcs_soft = self._measure(DcsCtrlScheme, None)
        assert dcs < p2p
        assert dcs < sw
        # Headline: ~42 % software-latency reduction vs software control.
        assert 0.35 < (p2p_soft - dcs_soft) / p2p_soft < 0.70

    def test_fig11b_dcs_beats_software_with_ndp(self):
        sw, sw_soft = self._measure(SwOptScheme, "md5")
        p2p, p2p_soft = self._measure(SwP2pScheme, "md5")
        dcs, dcs_soft = self._measure(DcsCtrlScheme, "md5")
        assert dcs < p2p < sw
        # Headline: ~72 % software-latency reduction vs SW-controlled P2P.
        assert 0.55 < (p2p_soft - dcs_soft) / p2p_soft < 0.85

    def test_fig11b_total_latency_also_drops(self):
        p2p, _ = self._measure(SwP2pScheme, "md5")
        dcs, _ = self._measure(DcsCtrlScheme, "md5")
        assert 0.30 < (p2p - dcs) / p2p < 0.60

    def test_fig3_integrated_matches_dcs(self):
        dcs, _ = self._measure(DcsCtrlScheme, None)
        integ, _ = self._measure(IntegratedScheme, None)
        assert integ == pytest.approx(dcs, rel=0.1)

    def test_dcs_cpu_utilization_far_below_software(self):
        data = _pattern(self.SIZE)
        cpu_cost = {}
        for scheme_cls in (SwOptScheme, DcsCtrlScheme):
            tb = Testbed(seed=6)
            scheme = scheme_cls(tb)
            run_send(tb, scheme, data, "warm.dat", processing="md5")
            tb.node0.host.cpu.tracker.reset_window()
            run_send(tb, scheme, data, "meas.dat", processing="md5")
            cpu_cost[scheme.name] = tb.node0.host.cpu.tracker.total()
        assert cpu_cost["dcs-ctrl"] < cpu_cost["sw-opt"] / 2


class TestFlexibility:
    """Table I's flexibility column, made executable."""

    def test_integrated_device_rejects_new_function(self):
        tb = Testbed(seed=7)
        scheme = IntegratedScheme(tb)
        tb.node0.host.install_file("flex.dat", bytes(4 * KIB))
        conn = scheme.connect()

        def body(sim):
            yield from scheme.send_file(tb.node0, conn, "flex.dat", 0,
                                        4 * KIB, processing="md5")

        proc = tb.sim.process(body(tb.sim))
        tb.sim.run()
        assert not proc.ok
        with pytest.raises(ConfigurationError, match="respinning"):
            _ = proc.value

    def test_dcs_supports_every_ndp_function_on_one_engine(self):
        assert set(DcsCtrlScheme.supported_processing) >= {
            "md5", "crc32", "sha1", "sha256", "aes256", "gzip"}

    def test_integrated_cannot_add_devices(self):
        assert not IntegratedScheme.supports_device("gpu")
        assert IntegratedScheme.supports_device("ssd")
