"""Deterministic fault injection and end-to-end recovery.

Every scenario here installs a :class:`FaultPlan` on a fresh testbed,
breaks something mid-chain, and asserts the stack recovers the way a
real driver would: transient errors retried to success, permanent
errors surfaced after a bounded budget, lost completions caught by
watchdogs, failed chains aborted without leaking engine resources —
and all of it byte-reproducible for a given seed.
"""

import pytest

from repro.core.command import D2DKind, D2DStatus
from repro.errors import ConfigurationError, DeviceError
from repro.faults import (FaultPlan, FaultRule, RetryPolicy, active_faults,
                          watchdog)
from repro.schemes import Testbed
from repro.trace import TraceSession, jsonl_lines
from repro.units import KIB, usec


def _plan(*rules):
    return FaultPlan(rules)


def _run_d2d(tb, kind, src, dst, length):
    driver = tb.node0.driver

    def body(sim):
        yield from driver.submit(kind, src=src, dst=dst, length=length)

    proc = tb.sim.process(body(tb.sim))
    tb.sim.run()
    return proc


class TestFaultPlan:
    def test_unknown_site_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault site"):
            FaultRule("flash.write", probability=0.5)  # simlint: disable=PLANE003

    def test_bad_probability_rejected(self):
        with pytest.raises(ConfigurationError, match="probability"):
            FaultRule("flash.read", probability=1.5)

    def test_zero_rate_plan_is_not_armed(self):
        tb = Testbed(seed=11, faults=_plan(
            FaultRule("flash.read", probability=0.0)))
        assert tb.sim.faults is not None
        assert not tb.sim.faults.armed
        assert active_faults(tb.sim) is None

    def test_no_plan_means_no_faults(self):
        tb = Testbed(seed=11)
        assert tb.sim.faults is None
        assert active_faults(tb.sim) is None

    def test_occurrence_rule_fires_exactly_there(self):
        tb = Testbed(seed=11, faults=_plan(
            FaultRule("flash.read", occurrences={2})))
        faults = tb.sim.faults
        hits = [faults.fires("flash.read", key=i) for i in range(1, 5)]
        assert hits == [False, True, False, False]

    def test_permanent_rule_sticks_to_its_key(self):
        tb = Testbed(seed=11, faults=_plan(
            FaultRule("flash.read", occurrences={1}, permanent=True)))
        faults = tb.sim.faults
        assert faults.fires("flash.read", key="lba7")
        assert faults.fires("flash.read", key="lba7")      # sticky
        assert not faults.fires("flash.read", key="lba9")  # other key fine

    def test_max_fires_caps_a_probability_rule(self):
        tb = Testbed(seed=11, faults=_plan(
            FaultRule("flash.read", probability=1.0, max_fires=2)))
        faults = tb.sim.faults
        hits = [faults.fires("flash.read") for _ in range(5)]
        assert hits == [True, True, False, False, False]


class TestWatchdog:
    def test_watchdog_fails_a_pending_event(self):
        tb = Testbed(seed=12)
        event = tb.sim.event()
        watchdog(tb.sim, event, usec(5), "unit test")

        def waiter(sim):
            yield event

        proc = tb.sim.process(waiter(tb.sim))
        tb.sim.run()
        assert not proc.ok
        with pytest.raises(DeviceError, match="no completion within"):
            _ = proc.value

    def test_watchdog_is_harmless_once_event_succeeds(self):
        tb = Testbed(seed=12)
        event = tb.sim.event()
        watchdog(tb.sim, event, usec(5), "unit test")
        event.succeed("fine")

        def waiter(sim):
            value = yield event
            return value

        proc = tb.sim.process(waiter(tb.sim))
        tb.sim.run()
        assert proc.ok and proc.value == "fine"

    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(deadline_ns=usec(100), retries=3,
                             backoff_ns=usec(10), backoff_factor=2)
        assert [policy.backoff(n) for n in (1, 2, 3)] == [
            usec(10), usec(20), usec(40)]
        assert policy.deadline_for(0) == usec(100)


class TestTransientRecovery:
    def test_transient_flash_error_retried_to_success(self):
        """One media error on the engine path: the engine's NVMe
        controller re-issues the command and the D2D completes."""
        clean = Testbed(seed=21)
        buf = clean.node0.host.alloc_buffer(4 * KIB)
        start = clean.sim.now
        assert _run_d2d(clean, D2DKind.SSD_TO_HOST, 0, buf, 4 * KIB).ok
        clean_span = clean.sim.now - start

        tb = Testbed(seed=21, faults=_plan(
            FaultRule("flash.read", occurrences={1})))
        buf = tb.node0.host.alloc_buffer(4 * KIB)
        ctrl = tb.node0.engine.nvme_ctrl
        start = tb.sim.now
        proc = _run_d2d(tb, D2DKind.SSD_TO_HOST, 0, buf, 4 * KIB)
        faulty_span = tb.sim.now - start
        assert proc.ok
        assert ctrl.retries == 1
        # The recovered request pays at least the first backoff on top
        # of a full extra device round trip.
        assert faulty_span >= clean_span + ctrl.policy.backoff(1)
        tb.assert_no_leaks()

    def test_permanent_flash_error_exhausts_retries(self):
        tb = Testbed(seed=22, faults=_plan(
            FaultRule("flash.read", occurrences={1}, permanent=True)))
        buf = tb.node0.host.alloc_buffer(4 * KIB)
        ctrl = tb.node0.engine.nvme_ctrl
        proc = _run_d2d(tb, D2DKind.SSD_TO_HOST, 0, buf, 4 * KIB)
        assert not proc.ok
        with pytest.raises(DeviceError,
                           match="failed with status DEVICE_ERROR"):
            _ = proc.value
        assert ctrl.retries == ctrl.policy.retries
        assert tb.node0.engine.tasks_failed == 1
        tb.assert_no_leaks()

    def test_transient_error_recovers_on_host_path_too(self):
        tb = Testbed(seed=23, faults=_plan(
            FaultRule("flash.read", occurrences={1})))
        host = tb.node0.host
        buf = host.alloc_buffer(4 * KIB)

        def body(sim):
            yield from host.nvme_driver.read(0, 4 * KIB, buf)

        proc = tb.sim.process(body(tb.sim))
        tb.sim.run()
        assert proc.ok
        assert host.nvme_driver.retries == 1


class TestLostCompletions:
    def test_dropped_cqe_hits_engine_watchdog(self):
        """The SSD executes the command but the CQE never lands: the
        engine controller's deadline expires and the re-issued command
        completes the D2D."""
        tb = Testbed(seed=24, faults=_plan(
            FaultRule("nvme.cqe_drop", occurrences={1})))
        buf = tb.node0.host.alloc_buffer(4 * KIB)
        ctrl = tb.node0.engine.nvme_ctrl
        proc = _run_d2d(tb, D2DKind.SSD_TO_HOST, 0, buf, 4 * KIB)
        assert proc.ok
        assert tb.node0.host.ssd.cqes_dropped == 1
        assert ctrl.retries == 1
        tb.assert_no_leaks()

    def test_dropped_cqe_hits_host_watchdog(self):
        tb = Testbed(seed=25, faults=_plan(
            FaultRule("nvme.cqe_drop", occurrences={1})))
        host = tb.node0.host
        buf = host.alloc_buffer(4 * KIB)

        def body(sim):
            yield from host.nvme_driver.read(0, 4 * KIB, buf)

        proc = tb.sim.process(body(tb.sim))
        tb.sim.run()
        assert proc.ok
        assert host.ssd.cqes_dropped == 1
        assert host.nvme_driver.retries == 1

    def test_no_injected_scenario_hangs_the_run(self):
        """A run whose every flash read dies still drains: deadlines,
        not deadlock."""
        tb = Testbed(seed=26, faults=_plan(
            FaultRule("flash.read", probability=1.0)))
        buf = tb.node0.host.alloc_buffer(4 * KIB)
        proc = _run_d2d(tb, D2DKind.SSD_TO_HOST, 0, buf, 4 * KIB)
        assert proc.triggered and not proc.ok
        tb.assert_no_leaks()


class TestAbortAndCleanup:
    def test_wire_loss_aborts_receive_chain_cleanly(self):
        """A frame lost mid-stream on an offloaded SSD->NIC->SSD pipe:
        the receiver's gather deadline expires, its chain aborts with
        TIMEOUT, and every engine resource comes back."""
        tb = Testbed(seed=27, faults=_plan(
            FaultRule("nic.wire_drop", occurrences={3})))
        conn = tb.connect_offloaded()
        length = 16 * KIB

        def send(sim):
            yield from tb.node0.driver.submit(
                D2DKind.SSD_TO_NIC, src=0,
                dst=tb.node0.driver.flow_id(conn.flow0), length=length)

        def recv(sim):
            yield from tb.node1.driver.submit(
                D2DKind.NIC_TO_SSD,
                src=tb.node1.driver.flow_id(conn.flow1), dst=4096,
                length=length)

        send_proc = tb.sim.process(send(tb.sim))
        recv_proc = tb.sim.process(recv(tb.sim))
        tb.sim.run()
        assert tb.node0.host.nic.frames_lost == 1
        assert send_proc.ok          # the sender never learns of the loss
        assert not recv_proc.ok
        with pytest.raises(DeviceError, match="TIMEOUT"):
            _ = recv_proc.value
        # Frames after the gap were discarded, not mis-assembled.
        assert tb.node1.engine.nic_ctrl.frames_discarded >= 1
        assert tb.node1.engine.tasks_failed == 1
        tb.assert_no_leaks()

    def test_bad_command_frees_nothing_and_reports_bad_command(self):
        """A command naming a volume the engine doesn't have is
        rejected before any buffer allocation."""
        tb = Testbed(seed=28)
        buf = tb.node0.host.alloc_buffer(4 * KIB)
        driver = tb.node0.driver

        def body(sim):
            yield from driver.submit(D2DKind.SSD_TO_HOST, src=0, dst=buf,
                                     length=4 * KIB, aux=7)

        proc = tb.sim.process(body(tb.sim))
        tb.sim.run()
        assert not proc.ok
        with pytest.raises(DeviceError, match="BAD_COMMAND"):
            _ = proc.value
        tb.assert_no_leaks()

    def test_scoreboard_abort_cancels_unissued_entries(self):
        tb = Testbed(seed=29)
        engine = tb.node0.engine
        buf = tb.node0.host.alloc_buffer(64 * KIB)
        driver = tb.node0.driver

        def body(sim):
            yield from driver.submit(D2DKind.SSD_TO_HOST, src=0, dst=buf,
                                     length=64 * KIB)

        proc = tb.sim.process(body(tb.sim))
        # Abort as soon as the task is admitted.

        def aborter(sim):
            while not engine.scoreboard.abort(1, "test abort"):
                yield sim.timeout(100)

        tb.sim.process(aborter(tb.sim))
        tb.sim.run()
        assert not proc.ok
        with pytest.raises(DeviceError, match="ABORTED"):
            _ = proc.value
        assert engine.tasks_failed == 1
        tb.assert_no_leaks()


class TestStatusNames:
    def test_describe_known_and_unknown(self):
        assert D2DStatus.describe(0) == "OK(0)"
        assert D2DStatus.describe(4) == "TIMEOUT(4)"
        assert D2DStatus.describe(99) == "status 99"


class TestGoldenDeterminism:
    @staticmethod
    def _faulty_traced_run():
        with TraceSession(label="faulty") as session:
            tb = Testbed(seed=31, faults=_plan(
                FaultRule("flash.read", occurrences={1}),
                FaultRule("nvme.cqe_drop", occurrences={2})))
            buf = tb.node0.host.alloc_buffer(4 * KIB)
            _run_d2d(tb, D2DKind.SSD_TO_HOST, 0, buf, 4 * KIB)
        return "\n".join(jsonl_lines(session))

    def test_same_seed_faulty_runs_are_byte_identical(self):
        assert self._faulty_traced_run() == self._faulty_traced_run()

    def test_fault_events_present_in_trace(self):
        trace = self._faulty_traced_run()
        assert '"type":"fault.inject"' in trace
        assert '"type":"recover.retry"' in trace
        assert '"track":"faults"' in trace
