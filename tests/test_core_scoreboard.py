"""Tests for D2D command formats and the scoreboard scheduler."""

import pytest

from repro.core.command import (D2DCommand, D2DCompletion, D2DKind,
                                DeviceCommand, EntryState)
from repro.core.scoreboard import Executor, Scoreboard
from repro.errors import ConfigurationError, DeviceError, ProtocolError
from repro.sim import Simulator
from repro.units import usec


@pytest.fixture
def sim():
    return Simulator()


class TestCommandFormats:
    def test_d2d_command_roundtrip(self):
        cmd = D2DCommand(d2d_id=7, kind=D2DKind.SSD_TO_NIC, src=1000,
                         dst=3, length=65536, func=1, flags=1, aux=42)
        raw = cmd.pack()
        assert len(raw) == 64
        assert D2DCommand.unpack(raw) == cmd

    def test_zero_length_rejected(self):
        cmd = D2DCommand(d2d_id=1, kind=D2DKind.SSD_TO_NIC, src=0, dst=0,
                         length=0)
        with pytest.raises(ProtocolError):
            cmd.pack()

    def test_completion_roundtrip(self):
        cpl = D2DCompletion(d2d_id=9, status=0, digest=b"0123456789abcdef",
                            result_length=4096)
        raw = cpl.pack()
        assert len(raw) == 64
        parsed = D2DCompletion.unpack(raw)
        assert parsed == cpl
        assert parsed.ok

    def test_completion_holds_sha256_digest(self):
        cpl = D2DCompletion(d2d_id=1, status=0, digest=bytes(range(32)))
        assert D2DCompletion.unpack(cpl.pack()).digest == bytes(range(32))

    def test_completion_short_digest(self):
        cpl = D2DCompletion(d2d_id=1, status=0, digest=b"\x01\x02\x03\x04")
        assert D2DCompletion.unpack(cpl.pack()).digest == b"\x01\x02\x03\x04"

    def test_oversized_digest_rejected(self):
        with pytest.raises(ProtocolError):
            D2DCompletion(d2d_id=1, status=0, digest=b"x" * 33).pack()


class FakeExecutor(Executor):
    """Runs entries for a fixed duration, recording the order."""

    def __init__(self, sim, duration, log, slots=1):
        self.sim = sim
        self.duration = duration
        self.log = log
        self.slots = slots

    def execute(self, entry):
        self.log.append(("start", entry.dev, entry.src, self.sim.now))
        yield self.sim.timeout(self.duration)
        self.log.append(("end", entry.dev, entry.src, self.sim.now))
        return b"result-%d" % entry.src


def _noop_finalize(d2d_id):
    def finalize(task):
        return D2DCompletion(d2d_id=d2d_id, status=0)
    return finalize


class TestScoreboard:
    def test_single_entry_completes(self, sim):
        log = []
        board = Scoreboard(sim)
        board.register_executor("dev", FakeExecutor(sim, usec(1), log))
        entry = DeviceCommand(dev="dev", rw="r", src=1, dst=2, length=10)

        def body(sim):
            yield from board.admit(1, [entry], _noop_finalize(1))
            cpl = yield board.completions.get()
            return cpl

        cpl = sim.run(until=sim.process(body(sim)))
        assert cpl.d2d_id == 1
        assert entry.state == EntryState.DONE
        assert entry.result == b"result-1"

    def test_dependency_chain_serializes(self, sim):
        log = []
        board = Scoreboard(sim)
        board.register_executor("a", FakeExecutor(sim, usec(2), log))
        board.register_executor("b", FakeExecutor(sim, usec(2), log))
        first = DeviceCommand(dev="a", rw="r", src=1, dst=0, length=1)
        second = DeviceCommand(dev="b", rw="w", src=2, dst=0, length=1,
                               depends_on=first)

        def body(sim):
            yield from board.admit(1, [first, second], _noop_finalize(1))
            yield board.completions.get()

        sim.run(until=sim.process(body(sim)))
        starts = {src: t for kind, dev, src, t in log if kind == "start"}
        ends = {src: t for kind, dev, src, t in log if kind == "end"}
        assert starts[2] >= ends[1]

    def test_independent_entries_overlap(self, sim):
        log = []
        board = Scoreboard(sim)
        board.register_executor("a", FakeExecutor(sim, usec(5), log))
        board.register_executor("b", FakeExecutor(sim, usec(5), log))
        e1 = DeviceCommand(dev="a", rw="r", src=1, dst=0, length=1)
        e2 = DeviceCommand(dev="b", rw="r", src=2, dst=0, length=1)

        def body(sim):
            yield from board.admit(1, [e1, e2], _noop_finalize(1))
            yield board.completions.get()

        sim.run(until=sim.process(body(sim)))
        starts = [t for kind, _, _, t in log if kind == "start"]
        # Both start well before either finishes.
        assert max(starts) < usec(5)

    def test_controller_slots_limit_concurrency(self, sim):
        log = []
        board = Scoreboard(sim)
        board.register_executor("a", FakeExecutor(sim, usec(4), log, slots=1))
        entries = [DeviceCommand(dev="a", rw="r", src=i, dst=0, length=1)
                   for i in range(3)]

        def body(sim):
            for i, entry in enumerate(entries):
                yield from board.admit(i + 1, [entry], _noop_finalize(i + 1))
            for _ in entries:
                yield board.completions.get()

        sim.run(until=sim.process(body(sim)))
        # With one slot, executions are back to back: total >= 12 us.
        assert sim.now >= usec(12)

    def test_in_order_completion_holds_later_tasks(self, sim):
        log = []
        board = Scoreboard(sim, in_order_completion=True)
        board.register_executor("slow", FakeExecutor(sim, usec(10), log))
        board.register_executor("fast", FakeExecutor(sim, usec(1), log))
        order = []

        def body(sim):
            yield from board.admit(
                1, [DeviceCommand(dev="slow", rw="r", src=1, dst=0, length=1)],
                _noop_finalize(1))
            yield from board.admit(
                2, [DeviceCommand(dev="fast", rw="r", src=2, dst=0, length=1)],
                _noop_finalize(2))
            for _ in range(2):
                cpl = yield board.completions.get()
                order.append(cpl.d2d_id)

        sim.run(until=sim.process(body(sim)))
        assert order == [1, 2]

    def test_out_of_order_completion_releases_fast_first(self, sim):
        log = []
        board = Scoreboard(sim, in_order_completion=False)
        board.register_executor("slow", FakeExecutor(sim, usec(10), log))
        board.register_executor("fast", FakeExecutor(sim, usec(1), log))
        order = []

        def body(sim):
            yield from board.admit(
                1, [DeviceCommand(dev="slow", rw="r", src=1, dst=0, length=1)],
                _noop_finalize(1))
            yield from board.admit(
                2, [DeviceCommand(dev="fast", rw="r", src=2, dst=0, length=1)],
                _noop_finalize(2))
            for _ in range(2):
                cpl = yield board.completions.get()
                order.append(cpl.d2d_id)

        sim.run(until=sim.process(body(sim)))
        assert order == [2, 1]

    def test_unregistered_device_rejected(self, sim):
        board = Scoreboard(sim)
        entry = DeviceCommand(dev="ghost", rw="r", src=1, dst=0, length=1)

        def body(sim):
            yield from board.admit(1, [entry], _noop_finalize(1))

        proc = sim.process(body(sim))
        sim.run()
        assert not proc.ok
        with pytest.raises(ConfigurationError):
            _ = proc.value

    def test_empty_entry_list_rejected(self, sim):
        board = Scoreboard(sim)

        def body(sim):
            yield from board.admit(1, [], _noop_finalize(1))

        proc = sim.process(body(sim))
        sim.run()
        assert not proc.ok

    def test_failed_entry_reports_failed_completion(self, sim):
        class Exploder(Executor):
            slots = 1

            def __init__(self, sim):
                self.sim = sim

            def execute(self, entry):
                yield self.sim.timeout(10)
                raise DeviceError("device on fire")

        board = Scoreboard(sim)
        board.register_executor("bad", Exploder(sim))
        entry = DeviceCommand(dev="bad", rw="r", src=1, dst=0, length=1)

        def body(sim):
            yield from board.admit(1, [entry], _noop_finalize(1))
            cpl = yield board.completions.get()
            return cpl

        cpl = sim.run(until=sim.process(body(sim)))
        assert not cpl.ok

    def test_after_hook_runs_before_dependent(self, sim):
        log = []
        board = Scoreboard(sim)
        board.register_executor("a", FakeExecutor(sim, usec(1), log))
        board.register_executor("b", FakeExecutor(sim, usec(1), log))
        first = DeviceCommand(dev="a", rw="r", src=1, dst=0, length=100)
        second = DeviceCommand(dev="b", rw="w", src=2, dst=0, length=100,
                               depends_on=first)
        first.after = lambda: setattr(second, "length", 55)
        seen = []

        class Checker(Executor):
            slots = 1

            def __init__(self, sim):
                self.sim = sim

            def execute(self, entry):
                seen.append(entry.length)
                yield self.sim.timeout(1)

        board._executors["b"] = Checker(sim)

        def body(sim):
            yield from board.admit(1, [first, second], _noop_finalize(1))
            yield board.completions.get()

        sim.run(until=sim.process(body(sim)))
        assert seen == [55]

    def test_entry_windows_recorded(self, sim):
        log = []
        board = Scoreboard(sim)
        board.register_executor("a", FakeExecutor(sim, usec(3), log))
        entry = DeviceCommand(dev="a", rw="r", src=1, dst=0, length=1)

        def body(sim):
            yield from board.admit(1, [entry], _noop_finalize(1))
            yield board.completions.get()

        sim.run(until=sim.process(body(sim)))
        assert entry.done_at - entry.issued_at == usec(3)
