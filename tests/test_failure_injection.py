"""Failure injection: errors must propagate, never pass silently."""

import pytest

from repro.core.command import D2DKind
from repro.devices.nvme.commands import NvmeCommand, OP_READ
from repro.errors import DeviceError, ProtocolError
from repro.schemes import Testbed
from repro.units import KIB


class TestSsdErrorPropagation:
    def test_failed_nvme_io_raises_in_host_driver(self):
        """An out-of-range read must surface as DeviceError, not data."""
        tb = Testbed(seed=81)
        host = tb.node0.host
        buf = host.alloc_buffer(4 * KIB)
        beyond = host.ssd.flash.capacity_blocks + 100

        def body(sim):
            yield from host.nvme_driver.read(beyond, 4 * KIB, buf)

        proc = tb.sim.process(body(tb.sim))
        tb.sim.run()
        assert not proc.ok
        with pytest.raises(DeviceError, match="status"):
            _ = proc.value

    def test_failed_device_command_fails_d2d_completion(self):
        """An engine-side device failure becomes a failed D2D completion
        and the HDC Driver raises on it."""
        tb = Testbed(seed=82)
        driver = tb.node0.driver
        beyond = tb.node0.host.ssd.flash.capacity_blocks + 100
        buf = tb.node0.host.alloc_buffer(4 * KIB)

        def body(sim):
            yield from driver.submit(D2DKind.SSD_TO_HOST, src=beyond,
                                     dst=buf, length=4 * KIB)

        proc = tb.sim.process(body(tb.sim))
        tb.sim.run()
        assert not proc.ok
        with pytest.raises(DeviceError, match="failed with status"):
            _ = proc.value
        tb.assert_no_leaks()

    def test_engine_survives_a_failed_command(self):
        """After a failed D2D command the engine still serves new ones."""
        tb = Testbed(seed=83)
        driver = tb.node0.driver
        host = tb.node0.host
        beyond = host.ssd.flash.capacity_blocks + 100
        buf = host.alloc_buffer(4 * KIB)

        def bad(sim):
            yield from driver.submit(D2DKind.SSD_TO_HOST, src=beyond,
                                     dst=buf, length=4 * KIB)

        bad_proc = tb.sim.process(bad(tb.sim))
        tb.sim.run()
        assert not bad_proc.ok

        host.install_file("after.dat", b"\x42" * (4 * KIB))
        fd = tb.node0.library.open_file("after.dat")

        def good(sim):
            yield from tb.node0.library.hdc_readfile(fd, 0, 4 * KIB, buf)

        tb.sim.run(until=tb.sim.process(good(tb.sim)))
        assert host.fabric.peek(buf, 4 * KIB) == b"\x42" * (4 * KIB)
        tb.sim.run()
        tb.assert_no_leaks()

    def test_failed_intermediate_stage_skips_downstream(self):
        """If the producing stage fails, the consuming stage must not
        transmit garbage: the task completes with a failure status and
        no frames leave the NIC."""
        tb = Testbed(seed=84)
        driver = tb.node0.driver
        conn = tb.connect_offloaded()
        beyond = tb.node0.host.ssd.flash.capacity_blocks + 100
        frames_before = tb.node0.host.nic.frames_sent

        def body(sim):
            yield from driver.submit(
                D2DKind.SSD_TO_NIC, src=beyond,
                dst=driver.flow_id(conn.flow0), length=4 * KIB)

        proc = tb.sim.process(body(tb.sim))
        tb.sim.run()
        assert not proc.ok
        assert tb.node0.host.nic.frames_sent == frames_before
        tb.assert_no_leaks()


class TestNvmeProtocolViolations:
    def test_doorbell_out_of_range_rejected(self):
        tb = Testbed(seed=85)
        ssd = tb.node0.host.ssd
        qp = tb.node0.host.nvme_driver.qp

        def body(sim):
            yield from tb.node0.host.fabric.mmio_write(
                "host", qp.sq_doorbell, (9999).to_bytes(4, "little"))

        proc = tb.sim.process(body(tb.sim))
        tb.sim.run()
        assert not proc.ok
        with pytest.raises(ProtocolError, match="doorbell"):
            _ = proc.value

    def test_malformed_sqe_rejected(self):
        with pytest.raises(ProtocolError):
            NvmeCommand.unpack(b"\x00" * 32)

    def test_invalid_nlb_rejected(self):
        cmd = NvmeCommand(opcode=OP_READ, cid=0, nsid=1, prp1=0, prp2=0,
                          slba=0, nlb=1 << 20)
        with pytest.raises(ProtocolError):
            cmd.pack()


class TestCorruptionDetection:
    def test_corrupted_frame_kills_receive_path_loudly(self):
        """Flipping payload bytes on the wire must trip the TCP checksum
        in the NIC, not deliver bad data."""
        tb = Testbed(seed=86)
        conn = tb.connect_kernel()
        host0 = tb.node0.host
        payload = b"\x11" * (4 * KIB)
        src = host0.alloc_buffer(len(payload))
        host0.fabric.poke(src, payload)

        # Corrupt every frame in flight.
        original_transmit = tb.wire.transmit

        def corrupting_transmit(sender, frame):
            tampered = frame[:-1] + bytes([frame[-1] ^ 0xFF])
            return original_transmit(sender, tampered)

        tb.wire.transmit = corrupting_transmit

        def sender(sim):
            yield from host0.kernel.socket_send(conn.flow0, src,
                                                len(payload))

        send = tb.sim.process(sender(tb.sim))
        tb.sim.run(until=send)
        tb.sim.run()
        # The receiving NIC dropped every tampered frame and delivered
        # nothing to the socket layer.
        nic1 = tb.node1.host.nic
        assert nic1.frames_dropped >= 3  # 4 KiB = 3 MSS segments
        assert nic1.frames_received == 0
        stream = tb.node1.host.kernel._streams[conn.flow1.uid]
        assert len(stream.buffer) == 0
