"""Unit and property tests for Resource / Store / PriorityStore."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim import PriorityStore, Resource, Simulator, Store


@pytest.fixture
def sim():
    return Simulator()


class TestResource:
    def test_grant_immediately_when_free(self, sim):
        res = Resource(sim, capacity=1)

        def body(sim, res):
            req = res.request()
            yield req
            res.release(req)
            return sim.now

        proc = sim.process(body(sim, res))
        sim.run()
        assert proc.value == 0

    def test_mutual_exclusion(self, sim):
        res = Resource(sim, capacity=1)
        active = []
        max_active = []

        def body(sim, res):
            with res.request() as req:
                yield req
                active.append(1)
                max_active.append(len(active))
                yield sim.timeout(10)
                active.pop()

        for _ in range(5):
            sim.process(body(sim, res))
        sim.run()
        assert max(max_active) == 1
        assert sim.now == 50

    def test_capacity_allows_parallelism(self, sim):
        res = Resource(sim, capacity=3)

        def body(sim, res):
            with res.request() as req:
                yield req
                yield sim.timeout(10)

        for _ in range(6):
            sim.process(body(sim, res))
        sim.run()
        assert sim.now == 20  # two waves of three

    def test_fifo_grant_order(self, sim):
        res = Resource(sim, capacity=1)
        order = []

        def body(sim, res, name):
            with res.request() as req:
                yield req
                order.append(name)
                yield sim.timeout(1)

        for name in "abcd":
            sim.process(body(sim, res, name))
        sim.run()
        assert order == list("abcd")

    def test_release_unheld_raises(self, sim):
        res = Resource(sim)
        other = Resource(sim)
        req = other.request()
        with pytest.raises(SimulationError):
            res.release(req)

    def test_cancel_waiting_request(self, sim):
        res = Resource(sim, capacity=1)
        held = res.request()          # granted
        waiting = res.request()       # queued
        res.release(waiting)          # cancel from the queue
        res.release(held)
        assert res.count == 0
        assert res.queue_length == 0

    def test_bad_capacity_rejected(self, sim):
        with pytest.raises(SimulationError):
            Resource(sim, capacity=0)

    def test_count_and_queue_length(self, sim):
        res = Resource(sim, capacity=2)
        r1, r2, r3 = res.request(), res.request(), res.request()
        assert res.count == 2
        assert res.queue_length == 1
        res.release(r1)
        assert res.count == 2  # r3 was promoted
        assert res.queue_length == 0
        res.release(r2)
        res.release(r3)


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)

        def consumer(sim, store):
            item = yield store.get()
            return item

        store.put("hello")
        proc = sim.process(consumer(sim, store))
        sim.run()
        assert proc.value == "hello"

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)

        def consumer(sim, store):
            item = yield store.get()
            return (item, sim.now)

        def producer(sim, store):
            yield sim.timeout(40)
            yield store.put("late")

        proc = sim.process(consumer(sim, store))
        sim.process(producer(sim, store))
        sim.run()
        assert proc.value == ("late", 40)

    def test_fifo_ordering(self, sim):
        store = Store(sim)
        got = []

        def consumer(sim, store):
            for _ in range(4):
                item = yield store.get()
                got.append(item)

        for i in range(4):
            store.put(i)
        sim.process(consumer(sim, store))
        sim.run()
        assert got == [0, 1, 2, 3]

    def test_bounded_put_blocks(self, sim):
        store = Store(sim, capacity=1)
        timeline = []

        def producer(sim, store):
            yield store.put("a")
            timeline.append(("a-in", sim.now))
            yield store.put("b")
            timeline.append(("b-in", sim.now))

        def consumer(sim, store):
            yield sim.timeout(100)
            yield store.get()

        sim.process(producer(sim, store))
        sim.process(consumer(sim, store))
        sim.run()
        assert timeline == [("a-in", 0), ("b-in", 100)]

    def test_len_reflects_contents(self, sim):
        store = Store(sim)
        assert len(store) == 0
        store.put(1)
        store.put(2)
        assert len(store) == 2

    def test_bad_capacity_rejected(self, sim):
        with pytest.raises(SimulationError):
            Store(sim, capacity=0)

    def test_priority_store_orders_items(self, sim):
        store = PriorityStore(sim)
        got = []

        def consumer(sim, store):
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        for item in (5, 1, 3):
            store.put(item)
        sim.process(consumer(sim, store))
        sim.run()
        assert got == [1, 3, 5]


class TestStoreProperties:
    @settings(max_examples=50, deadline=None)
    @given(items=st.lists(st.integers(), min_size=1, max_size=40),
           capacity=st.one_of(st.none(), st.integers(min_value=1, max_value=8)))
    def test_store_delivers_everything_in_order(self, items, capacity):
        sim = Simulator()
        store = Store(sim, capacity=capacity)
        received = []

        def producer(sim, store):
            for item in items:
                yield store.put(item)
                yield sim.timeout(1)

        def consumer(sim, store):
            for _ in items:
                got = yield store.get()
                received.append(got)
                yield sim.timeout(2)

        sim.process(producer(sim, store))
        sim.process(consumer(sim, store))
        sim.run()
        assert received == items

    @settings(max_examples=50, deadline=None)
    @given(durations=st.lists(st.integers(min_value=1, max_value=50),
                              min_size=1, max_size=20),
           capacity=st.integers(min_value=1, max_value=4))
    def test_resource_never_oversubscribed(self, durations, capacity):
        sim = Simulator()
        res = Resource(sim, capacity=capacity)
        active = [0]
        peak = [0]

        def body(sim, res, dur):
            with res.request() as req:
                yield req
                active[0] += 1
                peak[0] = max(peak[0], active[0])
                yield sim.timeout(dur)
                active[0] -= 1

        for dur in durations:
            sim.process(body(sim, res, dur))
        sim.run()
        assert peak[0] <= capacity
        assert active[0] == 0
