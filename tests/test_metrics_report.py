"""Golden-output test for the "sim-top" terminal report."""

import pytest

from repro.metrics import MetricsSession, aggregate, render_top
from repro.schemes import DcsCtrlScheme
from repro.sim.kernel import Simulator

GOLDEN = """\
sim-top — 1 sim, 4 series, 0.001 ms simulated
resource                                         kind        mean  peak  last  total
------------------------------------------  ---------  ----------  ----  ----  -----
engine.d2d_latency_ns{engine=n0:engine}     histogram         600  1023     -      2
engine.ddr3_bytes_in_use{engine=n0:engine}      gauge           -  4096  1024      -
nvme.commands{dev=ssd;node=n0}                counter  10000000/s     -     -     10
nvme.sq_depth{dev=ssd;node=n0;qid=1}        timegauge           2     4     0      -"""


def _scenario():
    """One of each kind, driven over a fixed 1 us timeline."""
    session = MetricsSession(label="golden", interval_ns=100).install()
    sim = Simulator()
    ms = sim.metrics
    counter = ms.counter("nvme.commands", node="n0", dev="ssd")
    gauge = ms.gauge("engine.ddr3_bytes_in_use", engine="n0:engine")
    tg = ms.timegauge("nvme.sq_depth", node="n0", dev="ssd", qid=1)
    hist = ms.histogram("engine.d2d_latency_ns", engine="n0:engine")

    def body(s):
        tg.set(4)             # depth 4 for the first half...
        gauge.set(4096)
        counter.inc(10)
        yield s.timeout(500)
        tg.set(0)             # ...0 for the second: mean exactly 2
        gauge.set(1024)
        hist.observe(300)     # bucket 9
        hist.observe(900)     # bucket 10 (peak edge 1023)
        yield s.timeout(500)

    sim.process(body(sim))
    sim.run()
    session.uninstall()
    session.finalize()
    return session


class TestSimTop:
    def test_golden_table(self):
        assert render_top(_scenario()) == GOLDEN

    def test_kind_specific_cells(self):
        rows = {agg.name: agg.cells() for agg in aggregate(_scenario())}
        # counter: rate + total, no peak/last
        assert rows["nvme.commands"][2:] == ("10000000/s", "-", "-", "10")
        # gauge: peak/last only
        assert rows["engine.ddr3_bytes_in_use"][2:] == (
            "-", "4096", "1024", "-")
        # timegauge: time-weighted mean (4 for half the run = 2)
        assert rows["nvme.sq_depth"][2] == "2"
        # histogram: mean observation, top bucket edge, count
        assert rows["engine.d2d_latency_ns"][2:] == ("600", "1023", "-", "2")

    def test_max_rows_truncates_with_note(self):
        out = render_top(_scenario(), max_rows=2)
        assert "... 2 more series" in out
        assert "nvme.sq_depth" not in out

    def test_empty_session_renders_placeholder(self):
        session = MetricsSession(label="empty")
        assert "(no metrics registered)" in render_top(session)

    def test_live_run_renders_without_error_and_sorted(self):
        with MetricsSession(label="live") as session:
            from repro.experiments.common import measure_send
            measure_send(DcsCtrlScheme, None)
        out = render_top(session)
        lines = out.splitlines()
        assert lines[0].startswith("sim-top — ")
        resources = [line.split()[0] for line in lines[3:]
                     if not line.startswith("...")]
        assert resources == sorted(resources)

    def test_multi_sim_series_merge(self):
        # Two simulators with the same series must merge into one row
        # whose counter total is the sum.
        session = MetricsSession(label="merge", interval_ns=100).install()
        try:
            totals = []
            for amount in (3, 4):
                sim = Simulator()
                counter = sim.metrics.counter("nvme.commands",
                                              node="n0", dev="ssd")

                def body(s, counter=counter, amount=amount):
                    counter.inc(amount)
                    yield s.timeout(200)

                sim.process(body(sim))
                sim.run()
                totals.append(amount)
        finally:
            session.uninstall()
            session.finalize()
        rows = aggregate(session)
        assert len(rows) == 1
        assert rows[0].total == pytest.approx(sum(totals))
