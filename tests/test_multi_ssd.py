"""Tests for multi-SSD hosts and engines (Fig 13's six-SSD setup)."""

import hashlib

import pytest

from repro.errors import ConfigurationError
from repro.host.kernel import MultiVolumeFs
from repro.schemes import DcsCtrlScheme, Testbed
from repro.units import KIB


class TestMultiVolumeFs:
    def test_round_robin_placement(self):
        tb = Testbed(seed=101, n_ssds=3)
        fs = tb.node0.host.fs
        for i in range(6):
            tb.node0.host.install_file(f"rr-{i}.dat", bytes(4 * KIB))
        volumes = [fs.volume_of(f"rr-{i}.dat") for i in range(6)]
        assert volumes == [0, 1, 2, 0, 1, 2]

    def test_explicit_placement(self):
        tb = Testbed(seed=102, n_ssds=3)
        tb.node0.host.install_file("pin.dat", bytes(4 * KIB), volume=2)
        assert tb.node0.host.fs.volume_of("pin.dat") == 2

    def test_duplicate_name_rejected_across_volumes(self):
        tb = Testbed(seed=103, n_ssds=2)
        tb.node0.host.install_file("dup.dat", bytes(4 * KIB), volume=0)
        with pytest.raises(ConfigurationError):
            tb.node0.host.install_file("dup.dat", bytes(4 * KIB), volume=1)

    def test_needs_at_least_one_volume(self):
        with pytest.raises(ConfigurationError):
            MultiVolumeFs([])

    def test_data_lands_on_the_right_flash(self):
        tb = Testbed(seed=104, n_ssds=2)
        host = tb.node0.host
        host.install_file("v1.dat", b"\xaa" * (4 * KIB), volume=1)
        ext = host.fs.extents_for("v1.dat", 0, 4 * KIB)
        assert host.ssds[1].flash.read_blocks(
            ext[0].slba, 1) == b"\xaa" * (4 * KIB)
        # Volume 0's flash at the same LBA is untouched.
        assert host.ssds[0].flash.read_blocks(
            ext[0].slba, 1) == bytes(4 * KIB)


class TestMultiSsdDataPaths:
    def test_kernel_read_routes_to_the_right_driver(self):
        tb = Testbed(seed=105, n_ssds=2)
        host = tb.node0.host
        data = bytes((i * 5) % 256 for i in range(8 * KIB))
        host.install_file("k1.dat", data, volume=1)
        buf = host.alloc_buffer(8 * KIB)

        def body(sim):
            yield from host.kernel.file_read_direct("k1.dat", 0, 8 * KIB,
                                                    buf)

        tb.sim.run(until=tb.sim.process(body(tb.sim)))
        assert host.fabric.peek(buf, 8 * KIB) == data

    def test_engine_reads_from_any_volume(self):
        tb = Testbed(seed=106, n_ssds=3)
        lib = tb.node0.library
        for vol in range(3):
            data = bytes((i + vol) % 256 for i in range(8 * KIB))
            tb.node0.host.install_file(f"e{vol}.dat", data, volume=vol)
            fd = lib.open_file(f"e{vol}.dat")
            buf = tb.node0.host.alloc_buffer(8 * KIB)

            def body(sim, fd=fd, buf=buf):
                return (yield from lib.hdc_readfile(fd, 0, 8 * KIB, buf,
                                                    func="md5"))

            completion = tb.sim.run(until=tb.sim.process(body(tb.sim)))
            assert completion.digest == hashlib.md5(data).digest(), vol
            assert tb.node0.host.fabric.peek(buf, 8 * KIB) == data, vol

    def test_cross_volume_engine_copy(self):
        tb = Testbed(seed=107, n_ssds=2)
        host = tb.node0.host
        lib = tb.node0.library
        data = bytes((i * 9) % 256 for i in range(16 * KIB))
        host.install_file("xv-src.dat", data, volume=0)
        host.install_file("xv-dst.dat", bytes(len(data)), volume=1)
        src_fd = lib.open_file("xv-src.dat")
        dst_fd = lib.open_file("xv-dst.dat", writable=True)

        def body(sim):
            yield from lib.hdc_copyfile(dst_fd, src_fd, 0, 0, len(data))

        tb.sim.run(until=tb.sim.process(body(tb.sim)))
        ext = host.fs.extents_for("xv-dst.dat", 0, len(data))
        assert host.ssds[1].flash.read_blocks(
            ext[0].slba, ext[0].nblocks)[:len(data)] == data

    def test_volume_out_of_range_fails_cleanly(self):
        tb = Testbed(seed=108, n_ssds=1)
        from repro.core.command import D2DKind

        def body(sim):
            yield from tb.node0.driver.submit(
                D2DKind.SSD_TO_HOST, src=64, dst=0x1000_0000,
                length=4 * KIB, aux=5)  # volume 5 does not exist

        proc = tb.sim.process(body(tb.sim))
        tb.sim.run()
        assert not proc.ok

    def test_parallel_reads_across_volumes_overlap(self):
        """Two volumes double the aggregate media bandwidth."""
        from repro.units import MIB, to_usec

        def read_two(n_ssds):
            tb = Testbed(seed=109, n_ssds=n_ssds)
            host = tb.node0.host
            lib = tb.node0.library
            size = 1 * MIB
            for i in range(2):
                host.install_file(f"p{i}.dat", bytes(size),
                                  volume=i % n_ssds)
            start = tb.sim.now
            procs = []
            for i in range(2):
                fd = lib.open_file(f"p{i}.dat")
                buf = host.alloc_buffer(size)

                def body(sim, fd=fd, buf=buf):
                    yield from lib.hdc_readfile(fd, 0, size, buf)

                procs.append(tb.sim.process(body(tb.sim)))
            for proc in procs:
                tb.sim.run(until=proc)
            return to_usec(tb.sim.now - start)

        one_volume = read_two(1)
        two_volumes = read_two(2)
        # Media time parallelizes across volumes; the shared
        # engine->host link bounds the remaining gain.
        assert two_volumes < one_volume * 0.80
