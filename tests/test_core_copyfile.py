"""Tests for the SSD→SSD local D2D extension (hdc_copyfile)."""

import hashlib

import pytest

from repro.algos import aes256_ctr, lz77_decompress
from repro.core.ndp.unit import _AES_KEY, _AES_NONCE
from repro.host.costs import CAT
from repro.schemes import Testbed
from repro.units import KIB


@pytest.fixture(scope="module")
def tb():
    return Testbed(seed=71)


def _read_file(host, name, nbytes):
    ext = host.fs.extents_for(name, 0, nbytes)
    return host.ssd.flash.read_blocks(ext[0].slba, ext[0].nblocks)[:nbytes]


def _copy(tb, src, dst, size, func="none"):
    lib = tb.node0.library
    src_fd = lib.open_file(src)
    dst_fd = lib.open_file(dst, writable=True)

    def body(sim):
        return (yield from lib.hdc_copyfile(dst_fd, src_fd, 0, 0, size,
                                            func=func))

    return tb.sim.run(until=tb.sim.process(body(tb.sim)))


class TestCopyfile:
    def test_plain_copy_moves_bytes(self, tb):
        data = bytes((i * 3) % 256 for i in range(32 * KIB))
        tb.node0.host.install_file("cp-src.dat", data)
        tb.node0.host.install_file("cp-dst.dat", bytes(len(data)))
        _copy(tb, "cp-src.dat", "cp-dst.dat", len(data))
        assert _read_file(tb.node0.host, "cp-dst.dat", len(data)) == data

    def test_copy_with_md5_reports_digest(self, tb):
        data = b"copy integrity" * 1000
        tb.node0.host.install_file("cp2-src.dat", data)
        tb.node0.host.install_file("cp2-dst.dat", bytes(len(data)))
        completion = _copy(tb, "cp2-src.dat", "cp2-dst.dat", len(data),
                           func="md5")
        assert completion.digest == hashlib.md5(data).digest()

    def test_encrypt_at_rest(self, tb):
        data = b"encrypt me at rest " * 500
        tb.node0.host.install_file("enc-src.dat", data)
        tb.node0.host.install_file("enc-dst.dat", bytes(len(data)))
        _copy(tb, "enc-src.dat", "enc-dst.dat", len(data), func="aes256")
        stored = _read_file(tb.node0.host, "enc-dst.dat", len(data))
        assert stored != data
        assert aes256_ctr(stored, _AES_KEY, _AES_NONCE) == data

    def test_compress_at_rest(self, tb):
        data = b"compressible block content " * 2000
        tb.node0.host.install_file("gz-src.dat", data)
        tb.node0.host.install_file("gz-dst.dat", bytes(len(data)))
        completion = _copy(tb, "gz-src.dat", "gz-dst.dat", len(data),
                           func="gzip")
        assert completion.result_length < len(data)
        blob = _read_file(tb.node0.host, "gz-dst.dat",
                          completion.result_length)
        assert lz77_decompress(blob) == data

    def test_copy_never_touches_host_memory(self, tb):
        data = bytes(64 * KIB)
        tb.node0.host.install_file("p2p-src.dat", data)
        tb.node0.host.install_file("p2p-dst.dat", bytes(len(data)))
        fabric = tb.node0.host.fabric
        before_host = fabric.host_bytes
        before_p2p = fabric.p2p_bytes
        _copy(tb, "p2p-src.dat", "p2p-dst.dat", len(data))
        assert fabric.p2p_bytes - before_p2p >= 2 * len(data)  # in + out
        assert fabric.host_bytes - before_host < 4 * KIB  # cmd + completion

    def test_copy_cpu_is_driver_only(self, tb):
        data = bytes(64 * KIB)
        tb.node0.host.install_file("cpu-src.dat", data)
        tb.node0.host.install_file("cpu-dst.dat", bytes(len(data)))
        tb.node0.host.cpu.tracker.reset_window()
        _copy(tb, "cpu-src.dat", "cpu-dst.dat", len(data))
        tracker = tb.node0.host.cpu.tracker
        assert tracker.total(CAT.DATA_COPY) == 0
        assert tracker.total(CAT.NETWORK) == 0
        assert tracker.total(CAT.HDC_DRIVER) > 0
        # The whole host cost of a 64 KiB device-local copy is a few us.
        assert tracker.total() < 12_000
