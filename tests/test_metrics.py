"""The metrics plane: instruments, the registry contract, sampling."""

import pytest

from repro.errors import MetricsError
from repro.experiments.common import measure_send
from repro.metrics import (DEFAULT_INTERVAL_NS, MetricsSession, csv_lines,
                           current_metrics_session, format_labels)
from repro.schemes import (DcsCtrlScheme, IntegratedScheme, SwOptScheme,
                           SwP2pScheme)
from repro.sim.kernel import Simulator
from repro.units import usec


def _fresh(interval_ns: int = usec(1)):
    """An installed session plus one simulator registered with it."""
    session = MetricsSession(label="t", interval_ns=interval_ns).install()
    sim = Simulator()
    return session, sim, sim.metrics


class TestInstruments:
    def teardown_method(self):
        session = current_metrics_session()
        if session is not None:
            session.uninstall()

    def test_counter_accumulates_and_rejects_decrease(self):
        _, _, ms = _fresh()
        c = ms.counter("nvme.commands", node="n", dev="ssd")
        c.inc()
        c.inc(41)
        assert c.value == 42
        with pytest.raises(MetricsError, match="cannot decrease"):
            c.inc(-1)

    def test_gauge_tracks_peak(self):
        _, _, ms = _fresh()
        g = ms.gauge("engine.ddr3_bytes_in_use", engine="e")
        g.set(10)
        g.inc(5)
        g.dec(12)
        assert g.value == 3
        assert g.peak == 15

    def test_timegauge_mean_is_time_weighted(self):
        _, sim, ms = _fresh()
        tg = ms.timegauge("nvme.sq_depth", node="n", dev="ssd", qid=1)

        def body(s):
            tg.set(4)              # 4 for the first 100 ns
            yield s.timeout(100)
            tg.set(0)              # 0 for the next 300 ns
            yield s.timeout(300)

        sim.process(body(sim))
        sim.run()
        assert tg.mean() == pytest.approx(4 * 100 / 400)
        assert tg.peak == 4

    def test_histogram_log2_buckets_and_quantile(self):
        _, _, ms = _fresh()
        h = ms.histogram("engine.d2d_latency_ns", engine="e")
        for value in (0, 1, 5, 5, 1000):
            h.observe(value)
        assert h.count == 5
        assert h.buckets[0] == 1     # exactly zero
        assert h.buckets[1] == 1     # 1
        assert h.buckets[3] == 2     # 4..7
        assert h.buckets[10] == 1    # 512..1023
        assert h.quantile(0.5) == 7          # upper edge of bucket 3
        assert h.quantile(1.0) == 1023
        with pytest.raises(MetricsError, match="negative"):
            h.observe(-1)

    def test_same_name_and_labels_dedups_to_one_series(self):
        _, _, ms = _fresh()
        a = ms.counter("nvme.commands", node="n", dev="ssd")
        b = ms.counter("nvme.commands", dev="ssd", node="n")
        assert a is b
        assert len(ms.series()) == 1

    def test_label_rendering_is_sorted(self):
        _, _, ms = _fresh()
        c = ms.counter("nvme.commands", node="n0", dev="ssd")
        assert format_labels(c.labels) == "dev=ssd;node=n0"


class TestCatalogContract:
    def teardown_method(self):
        session = current_metrics_session()
        if session is not None:
            session.uninstall()

    def test_unknown_name_rejected(self):
        _, _, ms = _fresh()
        with pytest.raises(MetricsError, match="not in the documented"):
            ms.counter("nvme.bogus")  # simlint: disable=PLANE001

    def test_wrong_kind_rejected(self):
        _, _, ms = _fresh()
        with pytest.raises(MetricsError, match="cataloged as"):
            ms.counter("nvme.sq_depth", node="n", dev="ssd", qid=1)

    def test_polled_must_be_counter_or_gauge(self):
        _, _, ms = _fresh()
        with pytest.raises(MetricsError, match="polled"):
            ms.polled("engine.d2d_latency_ns", lambda: 1, engine="e")
        with pytest.raises(MetricsError, match="polled"):
            ms.polled_map("nvme.sq_depth", "qid", lambda: {},
                          node="n", dev="ssd")

    def test_polled_map_unknown_name_rejected(self):
        _, _, ms = _fresh()
        with pytest.raises(MetricsError, match="not in the documented"):
            ms.polled_map("cpu.bogus", "category", lambda: {})  # simlint: disable=PLANE001

    def test_second_session_install_rejected(self):
        first = MetricsSession().install()
        try:
            with pytest.raises(MetricsError, match="already installed"):
                MetricsSession().install()
        finally:
            first.uninstall()


class TestSampling:
    def teardown_method(self):
        session = current_metrics_session()
        if session is not None:
            session.uninstall()

    def test_samples_land_on_interval_boundaries(self):
        session, sim, ms = _fresh(interval_ns=100)
        c = ms.counter("nvme.commands", node="n", dev="ssd")

        def body(s):
            for _ in range(5):
                c.inc()
                yield s.timeout(130)

        sim.process(body(sim))
        sim.run()
        session.uninstall()
        session.finalize()
        ticks = sorted({t for t, _, _ in ms.rows})
        # All but the forced finalize tick are multiples of the interval.
        assert all(t % 100 == 0 for t in ticks[:-1])
        assert ticks[-1] == sim.now == ms.finalized_at

    def test_change_compression_drops_idle_rows(self):
        session, sim, ms = _fresh(interval_ns=100)
        g = ms.gauge("engine.ddr3_bytes_in_use", engine="e")
        g.set(7)

        def body(s):
            yield s.timeout(1000)  # ten idle sampling intervals

        sim.process(body(sim))
        sim.run()
        session.uninstall()
        session.finalize()
        # First sample + forced final sample only: the value never moved.
        assert [(t, v) for t, _, v in ms.rows] == [(100, 7), (1000, 7)]

    def test_sampling_schedules_no_events(self):
        session, sim, ms = _fresh(interval_ns=10)
        ms.counter("nvme.commands", node="n", dev="ssd")

        def body(s):
            yield s.timeout(1000)

        sim.process(body(sim))
        sim.run()  # drain mode: would hang/terminate-late if samplers
        assert sim.now == 1000  # scheduled anything beyond the process
        session.uninstall()

    def test_finalize_is_idempotent(self):
        session, sim, ms = _fresh()
        ms.counter("nvme.commands", node="n", dev="ssd")
        session.uninstall()
        session.finalize()
        rows = list(ms.rows)
        session.finalize()
        assert ms.rows == rows

    def test_sub_interval_run_still_exports_one_row_per_series(self):
        # A microbenchmark shorter than one sampling interval must not
        # export an empty series: finalize forces the last sample.
        session = MetricsSession(label="t",
                                 interval_ns=DEFAULT_INTERVAL_NS).install()
        sim = Simulator()
        c = sim.metrics.counter("nvme.commands", node="n", dev="ssd")

        def body(s):
            c.inc(3)
            yield s.timeout(10)  # far below 100 us

        sim.process(body(sim))
        sim.run()
        session.uninstall()
        session.finalize()
        assert [(t, v) for t, _, v in sim.metrics.rows] == [(10, 3)]


class TestZeroOverheadOff:
    def test_no_session_means_no_metrics_object(self):
        assert current_metrics_session() is None
        assert Simulator().metrics is None

    def test_uninstall_restores_off_state(self):
        with MetricsSession():
            assert Simulator().metrics is not None
        assert Simulator().metrics is None


# The acceptance list: one series of each of these must exist for every
# scheme's simulator (the testbed models the full machine, so even the
# host-centric schemes expose the engine's resources).
REQUIRED = ("pcie.link.inflight_bytes", "nvme.sq_depth",
            "nic.tx_ring_occupancy", "engine.scoreboard_entries",
            "engine.ddr3_bytes_in_use", "host.cpu.util")


class TestLiveRuns:
    @pytest.mark.parametrize("scheme_cls,processing", [
        (SwOptScheme, None), (SwP2pScheme, None),
        (IntegratedScheme, None), (DcsCtrlScheme, "md5")])
    def test_every_scheme_emits_the_required_series(self, scheme_cls,
                                                    processing):
        with MetricsSession(label="live") as session:
            measure_send(scheme_cls, processing)
        assert session.sets
        for metric_set in session.sets:
            names = {metric.name for metric in metric_set.series()}
            missing = set(REQUIRED) - names
            assert not missing, (scheme_cls.name, sorted(missing))

    def test_csv_rows_emitted_for_a_live_run(self):
        with MetricsSession(label="live") as session:
            measure_send(DcsCtrlScheme, None)
        lines = list(csv_lines(session))
        assert lines[0] == "sim,time_ns,metric,labels,value"
        assert len(lines) > 50
        assert all(line.count(",") == 4 for line in lines)
