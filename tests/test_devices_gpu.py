"""Tests for the GPU model: copy engines, kernels, peer DMA into GPU memory."""

import hashlib
import zlib

import pytest

from repro.devices.gpu import Gpu, TESLA_K20M
from repro.errors import DeviceError
from repro.units import KIB, usec

from tests.conftest import GPU_BAR

SRC = 0x60_0000
DST = 0x61_0000


@pytest.fixture
def gpu(sim, fabric):
    return Gpu(sim, fabric, "gpu", bar_base=GPU_BAR)


class TestCopyEngine:
    def test_copy_in_out_roundtrip(self, sim, fabric, gpu):
        data = bytes(range(256)) * 16
        fabric.poke(SRC, data)

        def body(sim):
            yield from gpu.copy_in(SRC, 0, len(data))
            yield from gpu.copy_out(0, DST, len(data))

        sim.run(until=sim.process(body(sim)))
        assert fabric.peek(DST, len(data)) == data

    def test_copies_take_time(self, sim, fabric, gpu):
        fabric.poke(SRC, bytes(64 * KIB))

        def body(sim):
            yield from gpu.copy_in(SRC, 0, 64 * KIB)

        sim.run(until=sim.process(body(sim)))
        assert sim.now > usec(5)

    def test_peer_can_dma_into_gpu_memory(self, sim, fabric, gpu):
        """GPUDirect-style: another port writes straight into GPU DRAM."""
        def body(sim):
            yield from fabric.dma_write("host", gpu.mem_addr(0x100),
                                        b"direct write")

        sim.run(until=sim.process(body(sim)))
        assert gpu.dram.read(gpu.mem_addr(0x100), 12) == b"direct write"

    def test_bad_offset_rejected(self, gpu):
        with pytest.raises(DeviceError):
            gpu.mem_addr(TESLA_K20M.memory_bytes)


class TestKernels:
    def _run_kernel(self, sim, fabric, gpu, kernel, data):
        fabric.poke(SRC, data)

        def body(sim):
            yield from gpu.copy_in(SRC, 0, len(data))
            digest = yield from gpu.launch(kernel, 0, len(data),
                                           out_offset=1 * KIB * KIB)
            return digest

        return sim.run(until=sim.process(body(sim)))

    def test_md5_matches_hashlib(self, sim, fabric, gpu):
        data = b"gpu checksum input" * 100
        digest = self._run_kernel(sim, fabric, gpu, "md5", data)
        assert digest == hashlib.md5(data).digest()

    def test_crc32_matches_zlib(self, sim, fabric, gpu):
        data = b"hdfs block" * 500
        digest = self._run_kernel(sim, fabric, gpu, "crc32", data)
        assert int.from_bytes(digest, "big") == zlib.crc32(data)

    def test_digest_lands_in_gpu_memory(self, sim, fabric, gpu):
        data = b"x" * 4096
        fabric.poke(SRC, data)

        def body(sim):
            yield from gpu.copy_in(SRC, 0, len(data))
            yield from gpu.launch("md5", 0, len(data), out_offset=8192)
            yield from gpu.copy_out(8192, DST, 16)

        sim.run(until=sim.process(body(sim)))
        assert fabric.peek(DST, 16) == hashlib.md5(data).digest()

    def test_launch_overhead_dominates_small_input(self, sim, fabric, gpu):
        data = b"ab"
        fabric.poke(SRC, data)

        def body(sim):
            start = sim.now
            yield from gpu.launch("md5", 0, len(data), out_offset=4096)
            return sim.now - start

        elapsed = sim.run(until=sim.process(body(sim)))
        assert elapsed >= TESLA_K20M.launch_overhead

    def test_unknown_kernel_rejected(self, sim, fabric, gpu):
        def body(sim):
            yield from gpu.launch("bitcoin", 0, 16, out_offset=4096)

        proc = sim.process(body(sim))
        sim.run()
        assert not proc.ok

    def test_kernel_names_listed(self, gpu):
        assert "md5" in Gpu.kernel_names()
        assert "crc32" in Gpu.kernel_names()

    def test_kernels_serialize_on_exec_engine(self, sim, fabric, gpu):
        data = bytes(256 * KIB)
        fabric.poke(SRC, data)
        finish = []

        def one(sim, gpu):
            yield from gpu.launch("md5", 0, len(data), out_offset=0)
            finish.append(sim.now)

        def body(sim):
            yield from gpu.copy_in(SRC, 0, len(data))
            sim.process(one(sim, gpu))
            sim.process(one(sim, gpu))
            yield sim.timeout(0)

        sim.process(body(sim))
        sim.run()
        assert len(finish) == 2
        assert finish[1] >= 2 * (finish[0] - usec(50))  # second waited
