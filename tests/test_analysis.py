"""Tests for traces, CPU breakdowns, projections and table rendering."""

import pytest

from repro.analysis import (CpuBreakdown, LatencyTrace, NULL_TRACE,
                            ScalabilityProjection, format_table,
                            project_cores)
from repro.sim import Simulator
from repro.units import usec


@pytest.fixture
def sim():
    return Simulator()


class TestLatencyTrace:
    def test_span_attributes_wall_time(self, sim):
        trace = LatencyTrace(sim)

        def body(sim):
            with trace.span("read"):
                yield sim.timeout(usec(5))
            with trace.span("send"):
                yield sim.timeout(usec(3))

        sim.run(until=sim.process(body(sim)))
        trace.finish()
        assert trace.segments["read"] == usec(5)
        assert trace.segments["send"] == usec(3)
        assert trace.total == usec(8)
        assert trace.total_us == pytest.approx(8.0)

    def test_nested_spans_both_count(self, sim):
        trace = LatencyTrace(sim)

        def body(sim):
            with trace.span("outer"):
                with trace.span("inner"):
                    yield sim.timeout(100)

        sim.run(until=sim.process(body(sim)))
        assert trace.segments["outer"] == 100
        assert trace.segments["inner"] == 100

    def test_span_survives_exceptions(self, sim):
        trace = LatencyTrace(sim)

        def body(sim):
            try:
                with trace.span("work"):
                    yield sim.timeout(50)
                    raise ValueError("boom")
            except ValueError:
                pass

        sim.run(until=sim.process(body(sim)))
        assert trace.segments["work"] == 50

    def test_breakdown_sorted_by_share(self, sim):
        trace = LatencyTrace(sim)
        trace.add("small", 10)
        trace.add("big", 1000)
        keys = list(trace.breakdown_us())
        assert keys == ["big", "small"]

    def test_unattributed(self, sim):
        trace = LatencyTrace(sim)

        def body(sim):
            with trace.span("covered"):
                yield sim.timeout(30)
            yield sim.timeout(70)  # not covered by any span

        sim.run(until=sim.process(body(sim)))
        trace.finish()
        assert trace.unattributed() == 70

    def test_null_trace_is_inert(self, sim):
        with NULL_TRACE.span("anything"):
            pass
        NULL_TRACE.add("x", 5)
        NULL_TRACE.finish()  # no state, no errors


class TestCpuBreakdown:
    def test_total_and_normalization(self):
        breakdown = CpuBreakdown({"a": 0.2, "b": 0.3}, cores=6)
        assert breakdown.total == pytest.approx(0.5)
        normalized = breakdown.normalized_to(0.5)
        assert normalized["a"] == pytest.approx(0.4)
        assert breakdown.core_equivalents() == pytest.approx(3.0)

    def test_bad_reference_rejected(self):
        with pytest.raises(ValueError):
            CpuBreakdown({"a": 0.1}).normalized_to(0.0)


class TestProjection:
    def test_linear_scaling(self):
        p = ScalabilityProjection(scheme="x", measured_gbps=10.0,
                                  measured_core_equivalents=1.0,
                                  target_gbps=40.0, cpu_core_budget=6)
        assert p.cores_per_gbps == pytest.approx(0.1)
        assert p.cores_needed_at_target == pytest.approx(4.0)
        assert p.achievable_gbps == pytest.approx(40.0)  # under budget
        assert p.cores_at(20.0) == pytest.approx(2.0)

    def test_core_budget_caps_throughput(self):
        p = ScalabilityProjection(scheme="x", measured_gbps=10.0,
                                  measured_core_equivalents=3.0,
                                  target_gbps=40.0, cpu_core_budget=6)
        assert p.cores_needed_at_target == pytest.approx(12.0)
        assert p.achievable_gbps == pytest.approx(20.0)

    def test_project_cores_builds_all(self):
        projections = project_cores({"a": (10.0, 1.0), "b": (10.0, 3.0)})
        assert {p.scheme for p in projections} == {"a", "b"}

    def test_zero_throughput_rejected(self):
        p = ScalabilityProjection(scheme="x", measured_gbps=0.0,
                                  measured_core_equivalents=1.0,
                                  target_gbps=40.0, cpu_core_budget=6)
        with pytest.raises(ValueError):
            _ = p.cores_per_gbps


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(["name", "value"],
                            [["short", 1], ["a-longer-name", 22.5]],
                            title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a-longer-name" in text
        assert "22.50" in text  # floats get two decimals
        # All rows align to the same width.
        assert len(set(len(line) for line in lines[1:])) <= 2

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])
