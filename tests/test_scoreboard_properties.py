"""Property-based tests of the scoreboard scheduler.

Random task DAGs (chains of random lengths across random executors)
must always drain with dependencies respected, controller slot limits
never exceeded, and completions delivered according to the configured
ordering policy.
"""

from itertools import count

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.command import D2DCompletion, DeviceCommand, EntryState
from repro.core.scoreboard import Executor, Scoreboard
from repro.sim import Simulator

DEVICES = ("a", "b", "c")


class RecordingExecutor(Executor):
    def __init__(self, sim, duration, slots, log):
        self.sim = sim
        self.duration = duration
        self.slots = slots
        self.log = log
        self.active = 0
        self.peak = 0

    def execute(self, entry):
        self.active += 1
        self.peak = max(self.peak, self.active)
        self.log.append(("start", entry.aux, self.sim.now))
        yield self.sim.timeout(self.duration)
        self.log.append(("end", entry.aux, self.sim.now))
        self.active -= 1
        return None


task_strategy = st.lists(
    st.lists(st.tuples(st.sampled_from(DEVICES),
                       st.integers(min_value=1, max_value=500)),
             min_size=1, max_size=4),
    min_size=1, max_size=8)


@settings(max_examples=40, deadline=None)
@given(tasks=task_strategy,
       slots=st.integers(min_value=1, max_value=3),
       in_order=st.booleans())
def test_scoreboard_properties(tasks, slots, in_order):
    sim = Simulator()
    board = Scoreboard(sim, in_order_completion=in_order)
    log = []
    executors = {dev: RecordingExecutor(sim, 100, slots, log)
                 for dev in DEVICES}
    for dev, executor in executors.items():
        board.register_executor(dev, executor)

    all_tasks = []
    completions = []

    entry_uid = count(1)

    def admit_all(sim):
        for task_id, chain in enumerate(tasks, start=1):
            entries = []
            prev = None
            for dev, _weight in chain:
                # aux doubles as a stable per-entry key for the log
                # (entries are unhashable dataclasses, and id() keys
                # are exactly what repro.lint rule DET003 forbids).
                entry = DeviceCommand(dev=dev, rw="r", src=0, dst=0,
                                      length=1, aux=next(entry_uid),
                                      depends_on=prev)
                entries.append(entry)
                prev = entry
            all_tasks.append((task_id, entries))

            def finalize(task, task_id=task_id):
                return D2DCompletion(d2d_id=task_id, status=0)

            yield from board.admit(task_id, entries, finalize)

    def drain(sim):
        for _ in tasks:
            cpl = yield board.completions.get()
            completions.append(cpl.d2d_id)

    sim.process(admit_all(sim))
    drain_proc = sim.process(drain(sim))
    sim.run(until=drain_proc)

    # 1. Everything completed.
    assert len(completions) == len(tasks)
    # 2. Dependencies respected: within each task, entry i started only
    #    after entry i-1 ended.
    times = {}
    for kind, eid, t in log:
        times.setdefault(eid, {})[kind] = t
    for _tid, entries in all_tasks:
        for first, second in zip(entries, entries[1:]):
            assert (times[second.aux]["start"]
                    >= times[first.aux]["end"])
    # 3. Slot limits never exceeded.
    for executor in executors.values():
        assert executor.peak <= executor.slots
    # 4. Completion ordering policy.
    if in_order:
        assert completions == sorted(completions)
    # 5. All entries reached DONE.
    for _tid, entries in all_tasks:
        assert all(e.state == EntryState.DONE for e in entries)
