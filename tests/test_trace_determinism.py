"""Golden-trace determinism: same seed => byte-identical JSONL."""

from repro.experiments.common import measure_send
from repro.schemes import DcsCtrlScheme, SwOptScheme
from repro.trace import TraceSession, jsonl_lines, to_chrome


def _traced_run(scheme_cls, processing):
    with TraceSession(label="golden") as session:
        measure_send(scheme_cls, processing, seed=7)
    return session


class TestDeterminism:
    def test_jsonl_byte_identical_across_runs(self):
        first = "\n".join(jsonl_lines(_traced_run(DcsCtrlScheme, "md5")))
        second = "\n".join(jsonl_lines(_traced_run(DcsCtrlScheme, "md5")))
        assert first == second

    def test_jsonl_byte_identical_for_host_path_too(self):
        # The software-staged path exercises kernel/NIC/IRQ machinery
        # the offloaded path does not; it must be just as reproducible.
        first = "\n".join(jsonl_lines(_traced_run(SwOptScheme, None)))
        second = "\n".join(jsonl_lines(_traced_run(SwOptScheme, None)))
        assert first == second

    def test_chrome_document_identical_across_runs(self):
        import json
        first = json.dumps(to_chrome(_traced_run(DcsCtrlScheme, None)),
                           sort_keys=True)
        second = json.dumps(to_chrome(_traced_run(DcsCtrlScheme, None)),
                            sort_keys=True)
        assert first == second

    def test_no_wall_clock_or_object_ids_leak(self):
        # Event ids are small per-tracer ordinals, timestamps simulated:
        # nothing in a record should look like id() or time.time().
        import json
        for line in jsonl_lines(_traced_run(DcsCtrlScheme, None)):
            rec = json.loads(line)
            assert rec["id"] < 10**6
            assert rec["parent_id"] is None or rec["parent_id"] < 10**6
            assert rec["ts_ns"] < 10**12  # a simulated run lasts << 1000 s
