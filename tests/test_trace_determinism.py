"""Golden-trace determinism: same seed => byte-identical JSONL."""

from repro.experiments.common import measure_send
from repro.schemes import DcsCtrlScheme, SwOptScheme, Testbed
from repro.trace import TraceSession, jsonl_lines, to_chrome
from repro.units import KIB


def _traced_run(scheme_cls, processing):
    with TraceSession(label="golden") as session:
        measure_send(scheme_cls, processing, seed=7)
    return session


def _interleaved_run(scheme_cls, seed=11):
    """Three concurrent transfers on distinct flows under one trace."""
    with TraceSession(label="interleaved") as session:
        tb = Testbed(seed=seed)
        scheme = scheme_cls(tb)
        procs = []
        buffers = []
        for index, size in enumerate((2 * KIB, 4 * KIB, 3 * KIB)):
            name = f"file-{index}.dat"
            data = bytes((i * 11 + index) % 256 for i in range(size))
            tb.node0.host.install_file(name, data)
            conn = scheme.connect()

            def sender(sim, conn=conn, name=name, size=size):
                return (yield from scheme.send_file(
                    tb.node0, conn, name, 0, size, processing=None))

            procs.append(tb.sim.process(sender(tb.sim)))
            if not conn.offloaded:
                dst = tb.node1.host.alloc_buffer(size)

                def receiver(sim, conn=conn, size=size, dst=dst):
                    yield from tb.node1.host.kernel.socket_recv(
                        conn.flow1, size, dst)

                procs.append(tb.sim.process(receiver(tb.sim)))
                buffers.append((dst, size))
        for proc in procs:
            tb.sim.run(until=proc)
        for dst, size in buffers:
            tb.node1.host.free_buffer(dst, size)
    return "\n".join(jsonl_lines(session))


class TestDeterminism:
    def test_jsonl_byte_identical_across_runs(self):
        first = "\n".join(jsonl_lines(_traced_run(DcsCtrlScheme, "md5")))
        second = "\n".join(jsonl_lines(_traced_run(DcsCtrlScheme, "md5")))
        assert first == second

    def test_jsonl_byte_identical_for_host_path_too(self):
        # The software-staged path exercises kernel/NIC/IRQ machinery
        # the offloaded path does not; it must be just as reproducible.
        first = "\n".join(jsonl_lines(_traced_run(SwOptScheme, None)))
        second = "\n".join(jsonl_lines(_traced_run(SwOptScheme, None)))
        assert first == second

    def test_chrome_document_identical_across_runs(self):
        import json
        first = json.dumps(to_chrome(_traced_run(DcsCtrlScheme, None)),
                           sort_keys=True)
        second = json.dumps(to_chrome(_traced_run(DcsCtrlScheme, None)),
                            sort_keys=True)
        assert first == second

    def test_interleaved_offloaded_flows_byte_identical(self):
        # Flow uids come from a process-global counter, so the second
        # run's flows carry different uids than the first's.  Byte
        # identity therefore proves both that uid never leaks into a
        # trace record and that all flow-keyed engine/kernel state
        # iterates in creation order, not memory-address order.
        first = _interleaved_run(DcsCtrlScheme)
        second = _interleaved_run(DcsCtrlScheme)
        assert first == second

    def test_interleaved_kernel_flows_byte_identical(self):
        # Same property on the host path, which keys per-flow receive
        # streams and header slots inside the kernel model.
        first = _interleaved_run(SwOptScheme)
        second = _interleaved_run(SwOptScheme)
        assert first == second

    def test_no_wall_clock_or_object_ids_leak(self):
        # Event ids are small per-tracer ordinals, timestamps simulated:
        # nothing in a record should look like id() or time.time().
        import json
        for line in jsonl_lines(_traced_run(DcsCtrlScheme, None)):
            rec = json.loads(line)
            assert rec["id"] < 10**6
            assert rec["parent_id"] is None or rec["parent_id"] < 10**6
            assert rec["ts_ns"] < 10**12  # a simulated run lasts << 1000 s
