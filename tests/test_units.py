"""Tests for the unit helpers (time, size, rates)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.units import (GIB, KIB, MIB, Rate, gbps, gibps, mbps, msec, nsec,
                         sec, to_msec, to_sec, to_usec, usec)


class TestTime:
    def test_conversions(self):
        assert usec(1) == 1000
        assert msec(1) == 1_000_000
        assert sec(1) == 1_000_000_000
        assert nsec(2.6) == 3  # rounds

    def test_render_roundtrip(self):
        assert to_usec(usec(12.5)) == pytest.approx(12.5)
        assert to_msec(msec(3)) == pytest.approx(3.0)
        assert to_sec(sec(2)) == pytest.approx(2.0)


class TestSizes:
    def test_powers_of_two(self):
        assert KIB == 1024
        assert MIB == 1024 * KIB
        assert GIB == 1024 * MIB


class TestRate:
    def test_gbps_duration(self):
        rate = gbps(8)  # 1 GB/s
        assert rate.duration(1_000_000_000) == sec(1)
        assert rate.duration(0) == 0

    def test_gbps_render(self):
        assert gbps(10).gbps() == pytest.approx(10.0)
        assert mbps(500).gbps() == pytest.approx(0.5)

    def test_gibps(self):
        rate = gibps(1)
        assert rate.duration(GIB) == sec(1)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            gbps(1).duration(-1)

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            Rate(0)
        with pytest.raises(ValueError):
            Rate(-5)

    def test_equality_and_hash(self):
        assert gbps(10) == gbps(10)
        assert gbps(10) != gbps(11)
        assert hash(gbps(10)) == hash(gbps(10))

    @settings(max_examples=50, deadline=None)
    @given(size=st.integers(min_value=0, max_value=10 ** 12),
           g=st.floats(min_value=0.1, max_value=100, allow_nan=False))
    def test_duration_monotone_in_size(self, size, g):
        rate = gbps(g)
        assert rate.duration(size) <= rate.duration(size + 1024)
