"""docs-check: the trace taxonomy and docs/tracing.md stay in lock-step.

Run via ``make docs-check`` (or as part of the normal suite).
"""

import re
from pathlib import Path

from repro.experiments.common import measure_send
from repro.schemes import DcsCtrlScheme
from repro.trace import EVENT_TYPES, TraceSession, is_registered

REPO_ROOT = Path(__file__).resolve().parent.parent
TRACING_MD = REPO_ROOT / "docs" / "tracing.md"

_HEADING = re.compile(r"^###\s+`([a-z0-9_.-]+)`", re.MULTILINE)


def _documented_types() -> list[str]:
    return _HEADING.findall(TRACING_MD.read_text(encoding="utf-8"))


class TestContract:
    def test_every_registered_type_is_documented(self):
        documented = set(_documented_types())
        missing = set(EVENT_TYPES) - documented
        assert not missing, (
            f"event types registered in repro/trace/events.py but missing "
            f"a '### `type`' section in docs/tracing.md: {sorted(missing)}")

    def test_every_documented_type_is_registered(self):
        documented = _documented_types()
        unknown = [t for t in sorted(documented) if not is_registered(t)]
        assert not unknown, (
            f"docs/tracing.md documents types that repro/trace/events.py "
            f"does not register: {unknown}")

    def test_no_duplicate_doc_sections(self):
        documented = _documented_types()
        assert len(documented) == len(set(documented))

    def test_live_run_emits_only_documented_types(self):
        # Belt and braces on top of the Tracer's runtime check: a real
        # end-to-end run emits nothing outside the documented taxonomy.
        documented = set(_documented_types())
        with TraceSession(label="docscheck") as session:
            measure_send(DcsCtrlScheme, "md5")
        emitted = {event.type for tracer in session.tracers
                   for event in tracer.events}
        assert emitted  # the run actually traced something
        assert emitted <= documented

    def test_registry_descriptions_are_one_liners(self):
        for event_type, description in EVENT_TYPES.items():
            assert description and "\n" not in description, event_type
