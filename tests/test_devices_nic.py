"""Tests for the NIC model: descriptors, rings, LSO, header-split receive."""

import pytest

from repro.devices.nic import (Nic, RecvCompletion, RecvDescriptor,
                               SendDescriptor)
from repro.errors import DeviceError, ProtocolError
from repro.net import (HEADER_LEN, Ipv4Header, TCP_MSS, TcpEndpoint, TcpFlow,
                       Wire, parse_frame)
from repro.units import KIB, SEC, gbps

from tests.conftest import NIC_BAR, NIC2_BAR

TX_RING = 0x30_0000
TX_STATUS = 0x31_0000
RX_DESC = 0x32_0000
RX_CMPL = 0x33_0000
RX_STATUS = 0x34_0000
HDR_BUF = 0x40_0000
PAYLOAD_BUF = 0x41_0000
RX_HDR_BUF = 0x50_0000
RX_PAYLOAD_BUF = 0x51_0000
DEPTH = 128

LEFT = TcpEndpoint(mac="02:00:00:00:00:01", ip="10.0.0.1", port=5000)
RIGHT = TcpEndpoint(mac="02:00:00:00:00:02", ip="10.0.0.2", port=6000)


class TestDescriptorFormats:
    def test_send_roundtrip(self):
        desc = SendDescriptor(hdr_addr=0x1000, hdr_len=54,
                              payload_addr=0x2000, payload_len=4096,
                              lso=True, mss=1460)
        assert SendDescriptor.unpack(desc.pack()) == desc

    def test_recv_roundtrip(self):
        desc = RecvDescriptor(payload_addr=0x3000, buf_len=65536,
                              hdr_addr=0x4000)
        assert RecvDescriptor.unpack(desc.pack()) == desc

    def test_cmpl_roundtrip(self):
        cmpl = RecvCompletion(hdr_len=54, payload_len=1460, desc_index=7)
        assert RecvCompletion.unpack(cmpl.pack()) == cmpl

    def test_bad_sizes_rejected(self):
        with pytest.raises(ProtocolError):
            SendDescriptor.unpack(b"\x00" * 31)
        with pytest.raises(ProtocolError):
            RecvDescriptor.unpack(b"\x00" * 31)
        with pytest.raises(ProtocolError):
            RecvCompletion.unpack(b"\x00" * 31)


@pytest.fixture
def pair(sim, fabric):
    """Two NICs on one fabric connected by a wire, rings in host DRAM."""
    left = Nic(sim, fabric, "nic-left", bar_base=NIC_BAR)
    right = Nic(sim, fabric, "nic-right", bar_base=NIC2_BAR)
    wire = Wire(sim)
    left.connect(wire)
    right.connect(wire)
    tx = left.configure_tx(TX_RING, DEPTH, TX_STATUS)
    rx = right.configure_rx(RX_DESC, RX_CMPL, DEPTH, RX_STATUS)
    return left, right, tx, rx


def _post_recv_buffers(rx, count, split=True, buf_len=64 * KIB):
    for i in range(count):
        rx.post(RecvDescriptor(
            payload_addr=RX_PAYLOAD_BUF + i * buf_len,
            buf_len=buf_len,
            hdr_addr=(RX_HDR_BUF + i * 64) if split else 0))


def _send(fabric, tx, flow, payload, lso=True):
    """Stage header+payload in memory and push one send descriptor."""
    # LSO header template: the length/checksum fields are recomputed per
    # segment by the NIC, so the template carries a dummy 40-byte length.
    header = (flow.eth_header().pack()
              + Ipv4Header(src_ip=flow.local.ip, dst_ip=flow.remote.ip,
                           total_length=40).pack()
              + flow.next_header(len(payload)).pack(
                  flow.local.ip, flow.remote.ip, b""))
    fabric.poke(HDR_BUF, header)
    if payload:
        fabric.poke(PAYLOAD_BUF, payload)
    tx.push(SendDescriptor(hdr_addr=HDR_BUF, hdr_len=HEADER_LEN,
                           payload_addr=PAYLOAD_BUF,
                           payload_len=len(payload), lso=lso))


class TestTransmitReceive:
    def _run_transfer(self, sim, fabric, pair, payload, split=True):
        left, right, tx, rx = pair
        flow = TcpFlow(local=LEFT, remote=RIGHT)
        _post_recv_buffers(rx, 64, split=split)

        def body(sim):
            yield from rx.ring("host")
            _send(fabric, tx, flow, payload)
            yield from tx.ring("host")
            # Wait until all payload bytes have been received.
            expected = -(-len(payload) // TCP_MSS) if payload else 1
            while rx.producer_index() < expected:
                yield sim.timeout(1000)

        sim.run(until=sim.process(body(sim)))
        return rx

    def test_single_frame_end_to_end(self, sim, fabric, pair):
        payload = b"hello, remote node!"
        rx = self._run_transfer(sim, fabric, pair, payload)
        cmpl = rx.poll_completion()
        assert cmpl.payload_len == len(payload)
        assert cmpl.hdr_len == HEADER_LEN
        assert fabric.peek(RX_PAYLOAD_BUF, len(payload)) == payload

    def test_lso_segments_large_payload(self, sim, fabric, pair):
        left, right, tx, rx = pair
        payload = bytes(range(256)) * 64  # 16 KiB
        self._run_transfer(sim, fabric, pair, payload)
        n_frames = -(-len(payload) // TCP_MSS)
        assert left.frames_sent == n_frames
        assert right.frames_received == n_frames
        # Reassemble from per-frame completions.
        got = bytearray()
        while (cmpl := rx.poll_completion()) is not None:
            index = cmpl.desc_index
            got += fabric.peek(RX_PAYLOAD_BUF + index * 64 * KIB,
                               cmpl.payload_len)
        assert bytes(got) == payload

    def test_header_split_separates_headers(self, sim, fabric, pair):
        payload = b"split me"
        rx = self._run_transfer(sim, fabric, pair, payload, split=True)
        cmpl = rx.poll_completion()
        header = fabric.peek(RX_HDR_BUF + cmpl.desc_index * 64, HEADER_LEN)
        # The header bytes parse as a real frame header for this flow.
        frame = parse_frame(header + fabric.peek(
            RX_PAYLOAD_BUF + cmpl.desc_index * 64 * KIB, cmpl.payload_len))
        assert frame.ip.src_ip == LEFT.ip
        assert frame.payload == payload

    def test_no_split_stores_whole_frame(self, sim, fabric, pair):
        payload = b"whole frame please"
        rx = self._run_transfer(sim, fabric, pair, payload, split=False)
        cmpl = rx.poll_completion()
        assert cmpl.hdr_len == 0
        raw = fabric.peek(RX_PAYLOAD_BUF + cmpl.desc_index * 64 * KIB,
                          cmpl.payload_len)
        assert parse_frame(raw).payload == payload

    def test_full_mtu_stream_hits_9gbps(self, sim, fabric, pair):
        left, right, tx, rx = pair
        flow = TcpFlow(local=LEFT, remote=RIGHT)
        _post_recv_buffers(rx, 120, split=True, buf_len=2 * KIB)
        total = 64 * KIB

        def body(sim):
            yield from rx.ring("host")
            start = sim.now
            _send(fabric, tx, flow, bytes(total))
            yield from tx.ring("host")
            frames = -(-total // TCP_MSS)
            while rx.producer_index() < frames:
                yield sim.timeout(1000)
            return sim.now - start

        elapsed = sim.run(until=sim.process(body(sim)))
        goodput_gbps = total * 8 / (elapsed / SEC) / 1e9
        assert 7.0 < goodput_gbps < 9.6

    def test_tx_status_block_advances(self, sim, fabric, pair):
        left, right, tx, rx = pair
        flow = TcpFlow(local=LEFT, remote=RIGHT)
        _post_recv_buffers(rx, 8)
        assert tx.consumer_index() == 0

        def body(sim):
            yield from rx.ring("host")
            _send(fabric, tx, flow, b"abc")
            yield from tx.ring("host")
            while tx.consumer_index() < 1:
                yield sim.timeout(1000)

        sim.run(until=sim.process(body(sim)))
        assert tx.consumer_index() == 1

    def test_oversized_non_lso_fails(self, sim, fabric, pair):
        left, right, tx, rx = pair
        flow = TcpFlow(local=LEFT, remote=RIGHT)
        _post_recv_buffers(rx, 8)

        def body(sim):
            yield from rx.ring("host")
            _send(fabric, tx, flow, bytes(8 * KIB), lso=False)
            yield from tx.ring("host")
            yield sim.timeout(1_000_000)

        sim.process(body(sim))
        sim.run()
        # The TX engine dies on the protocol violation; nothing was sent.
        assert not left.tx_processes[0].ok
        assert left.frames_sent == 0
        with pytest.raises(ProtocolError, match="MTU"):
            _ = left.tx_processes[0].value

    def test_double_connect_rejected(self, sim, fabric):
        nic = Nic(sim, fabric, "nic-x", bar_base=0x8300_0000)
        wire = Wire(sim)
        nic.connect(wire)
        with pytest.raises(DeviceError):
            nic.connect(Wire(sim))

    def test_channel_exhaustion_rejected(self, sim, fabric, pair):
        left, right, tx, rx = pair
        for _ in range(left.config.max_channels - 1):
            left.configure_tx(TX_RING, DEPTH, TX_STATUS)
        with pytest.raises(DeviceError):
            left.configure_tx(TX_RING, DEPTH, TX_STATUS)

    def test_second_channel_gets_distinct_doorbell(self, sim, fabric, pair):
        left, right, tx, rx = pair
        tx2 = left.configure_tx(TX_RING + 0x8000, DEPTH, TX_STATUS + 0x40)
        assert tx2.channel == 1
        assert tx2.doorbell != tx.doorbell

    def test_steering_requires_existing_channel(self, sim, fabric, pair):
        left, right, tx, rx = pair
        with pytest.raises(DeviceError):
            right.steer_flow("10.0.0.1", 5000, 6000, rx_channel=3)

    def test_send_ring_full_detected(self, sim, fabric, pair):
        left, right, tx, rx = pair
        desc = SendDescriptor(hdr_addr=HDR_BUF, hdr_len=HEADER_LEN,
                              payload_addr=PAYLOAD_BUF, payload_len=0)
        for _ in range(DEPTH):
            tx.push(desc)
        with pytest.raises(ProtocolError, match="full"):
            tx.push(desc)
