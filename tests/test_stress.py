"""Stress: many concurrent mixed operations across both nodes.

Interleaves sends, receives, host reads and local copies on many
connections simultaneously — shaking out ordering and resource bugs
that single-operation tests cannot reach — and verifies every byte and
every digest at the end.
"""

import hashlib

import pytest

from repro.schemes import DcsCtrlScheme, SwOptScheme, Testbed
from repro.units import KIB


def _pattern(size, salt):
    return bytes((i * 13 + salt * 101) % 256 for i in range(size))


class TestDcsStress:
    def test_mixed_concurrent_operations(self):
        tb = Testbed(seed=91)
        scheme = DcsCtrlScheme(tb)
        lib0 = tb.node0.library
        sizes = [4 * KIB, 12 * KIB, 64 * KIB, 32 * KIB, 8 * KIB, 96 * KIB]
        n = len(sizes)
        payloads = [_pattern(size, i) for i, size in enumerate(sizes)]

        conns = [scheme.connect() for _ in range(n)]
        for i, payload in enumerate(payloads):
            tb.node0.host.install_file(f"st-{i}.dat", payload)
            tb.node1.host.install_file(f"st-dst-{i}.dat",
                                       bytes(len(payload)))
        tb.node0.host.install_file("st-local-dst.dat", bytes(96 * KIB))

        procs = []
        # n transfers node0 -> node1 with sender-side MD5.
        for i in range(n):
            def send(sim, i=i):
                return (yield from scheme.send_file(
                    tb.node0, conns[i], f"st-{i}.dat", 0, len(payloads[i]),
                    processing="md5"))

            def recv(sim, i=i):
                return (yield from scheme.receive_to_file(
                    tb.node1, conns[i], f"st-dst-{i}.dat", 0,
                    len(payloads[i]), processing="crc32"))

            procs.append(("send", i, tb.sim.process(send(tb.sim))))
            procs.append(("recv", i, tb.sim.process(recv(tb.sim))))
        # Plus concurrent host reads and a local copy on node0.
        bufs = [tb.node0.host.alloc_buffer(len(p)) for p in payloads[:3]]
        fds = [lib0.open_file(f"st-{i}.dat") for i in range(3)]
        for i in range(3):
            def readback(sim, i=i):
                return (yield from lib0.hdc_readfile(
                    fds[i], 0, len(payloads[i]), bufs[i]))

            procs.append(("read", i, tb.sim.process(readback(tb.sim))))
        copy_src = lib0.open_file("st-5.dat")
        copy_dst = lib0.open_file("st-local-dst.dat", writable=True)

        def copy(sim):
            return (yield from lib0.hdc_copyfile(
                copy_dst, copy_src, 0, 0, len(payloads[5]), func="md5"))

        procs.append(("copy", 5, tb.sim.process(copy(tb.sim))))

        results = {}
        for kind, i, proc in procs:
            results[(kind, i)] = tb.sim.run(until=proc)

        # Every sender digest matches hashlib.
        for i, payload in enumerate(payloads):
            assert results[("send", i)].digest == hashlib.md5(
                payload).digest(), i
        # Every destination file holds the exact source bytes.
        for i, payload in enumerate(payloads):
            ext = tb.node1.host.fs.extents_for(f"st-dst-{i}.dat", 0,
                                               len(payload))
            stored = tb.node1.host.ssd.flash.read_blocks(
                ext[0].slba, ext[0].nblocks)[:len(payload)]
            assert stored == payload, i
        # Host readbacks are intact.
        for i in range(3):
            got = tb.node0.host.fabric.peek(bufs[i], len(payloads[i]))
            assert got == payloads[i], i
        # The local copy both moved bytes and hashed them.
        assert results[("copy", 5)].digest == hashlib.md5(
            payloads[5]).digest()
        ext = tb.node0.host.fs.extents_for("st-local-dst.dat", 0,
                                           len(payloads[5]))
        stored = tb.node0.host.ssd.flash.read_blocks(
            ext[0].slba, ext[0].nblocks)[:len(payloads[5])]
        assert stored == payloads[5]

    def test_bidirectional_traffic(self):
        """Both nodes send to each other simultaneously."""
        tb = Testbed(seed=92)
        scheme = DcsCtrlScheme(tb)
        data0 = _pattern(48 * KIB, 1)
        data1 = _pattern(40 * KIB, 2)
        tb.node0.host.install_file("bi-0.dat", data0)
        tb.node1.host.install_file("bi-1.dat", data1)
        tb.node0.host.install_file("bi-in-0.dat", bytes(len(data1)))
        tb.node1.host.install_file("bi-in-1.dat", bytes(len(data0)))
        conn_a = scheme.connect()
        conn_b = scheme.connect()

        procs = [
            tb.sim.process(scheme.send_file(tb.node0, conn_a, "bi-0.dat",
                                            0, len(data0))),
            tb.sim.process(scheme.receive_to_file(
                tb.node1, conn_a, "bi-in-1.dat", 0, len(data0))),
            tb.sim.process(scheme.send_file(tb.node1, conn_b, "bi-1.dat",
                                            0, len(data1))),
            tb.sim.process(scheme.receive_to_file(
                tb.node0, conn_b, "bi-in-0.dat", 0, len(data1))),
        ]
        for proc in procs:
            tb.sim.run(until=proc)
        ext = tb.node1.host.fs.extents_for("bi-in-1.dat", 0, len(data0))
        assert tb.node1.host.ssd.flash.read_blocks(
            ext[0].slba, ext[0].nblocks)[:len(data0)] == data0
        ext = tb.node0.host.fs.extents_for("bi-in-0.dat", 0, len(data1))
        assert tb.node0.host.ssd.flash.read_blocks(
            ext[0].slba, ext[0].nblocks)[:len(data1)] == data1


class TestSwStress:
    def test_many_concurrent_kernel_transfers(self):
        tb = Testbed(seed=93)
        scheme = SwOptScheme(tb)
        n = 5
        payloads = [_pattern(24 * KIB, i) for i in range(n)]
        conns = [scheme.connect() for _ in range(n)]
        for i, payload in enumerate(payloads):
            tb.node0.host.install_file(f"sw-{i}.dat", payload)
        dsts = [tb.node1.host.alloc_buffer(len(p)) for p in payloads]

        procs = []
        for i in range(n):
            def send(sim, i=i):
                yield from scheme.send_file(tb.node0, conns[i],
                                            f"sw-{i}.dat", 0,
                                            len(payloads[i]))

            def recv(sim, i=i):
                yield from tb.node1.host.kernel.socket_recv(
                    conns[i].flow1, len(payloads[i]), dsts[i])

            procs.append(tb.sim.process(send(tb.sim)))
            procs.append(tb.sim.process(recv(tb.sim)))
        for proc in procs:
            tb.sim.run(until=proc)
        for i, payload in enumerate(payloads):
            assert tb.node1.host.fabric.peek(dsts[i],
                                             len(payload)) == payload, i
