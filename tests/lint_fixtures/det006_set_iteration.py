def wake_all(waiters):
    ready = set(waiters)
    for waiter in ready:
        waiter.succeed()
