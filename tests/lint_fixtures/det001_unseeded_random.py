import random


def jitter():
    return random.randint(1, 10)
