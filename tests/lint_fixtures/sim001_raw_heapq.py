import heapq


def soonest(queue):
    return heapq.heappop(queue)
