def meter(metrics, name):
    return metrics.counter("nvme.tyop_bytes", dev=name)
