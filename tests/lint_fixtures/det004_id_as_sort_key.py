def stable_order(links):
    return sorted(links, key=id)
