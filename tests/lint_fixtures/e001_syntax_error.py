def broken(:
    pass
