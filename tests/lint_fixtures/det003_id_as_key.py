def remember(streams, flow, stream):
    streams[id(flow)] = stream
