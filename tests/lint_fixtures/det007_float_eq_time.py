def at_checkpoint(now):
    return now == 1.5e6
