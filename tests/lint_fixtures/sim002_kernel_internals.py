def peek_next(sim):
    return sim._heap[0]
