def describe(event):
    return "<Event at " + hex(id(event)) + ">"
