def mark(tracer):
    tracer.instant("nvme.oops", track="ssd")
