def build_rule(FaultRule):
    return FaultRule(site="nvme.cqe_dorp", probability=0.01)
